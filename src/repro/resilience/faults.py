"""Deterministic fault injection for any RPC transport.

:class:`FaultInjectingTransport` wraps a :class:`~repro.oncrpc.transport.Transport`
and perturbs traffic according to a :class:`FaultPlan`.  All randomness
comes from one ``random.Random`` seeded by the plan, and decisions are
drawn in a fixed order per operation, so a given (plan, workload) pair
always injects the same fault sequence -- failures are replayable, which
is what makes resilience *testable*.

Fault taxonomy (the names used in counters and docs):

``drop_request``
    The outbound record is silently discarded; the server never sees the
    call.  On a loopback transport the next ``recv_record`` then fails
    immediately ("no reply pending"); on TCP it times out.
``drop_reply``
    The call executes but its reply is discarded on receive -- the case
    that makes retried non-idempotent calls dangerous without the server's
    at-most-once cache.
``delay``
    The record is delivered but charged ``delay_s`` of virtual time.
``truncate``
    The reply record is chopped, modelling payload corruption; the client
    sees an undecodable message.
``corrupt``
    One byte of the record is flipped in place (request or reply).  The
    record still *parses* as the right length, which is exactly the fault
    record marking alone cannot detect -- pair with
    :class:`~repro.oncrpc.transport.ChecksummedTransport` and a server's
    ``crc_records`` to turn silent corruption into a clean retransmit.
``duplicate``
    The reply is delivered twice; the second copy arrives as a stale
    record in front of a later call's reply.
``disconnect``
    The connection breaks: this operation raises and the transport stays
    broken until :meth:`FaultInjectingTransport.reconnect`.
``disconnect_after_bytes``
    One scripted disconnect once a cumulative byte count has crossed the
    wire -- the "server died mid-upload" scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.net.simclock import SimClock
from repro.oncrpc.transport import Transport
from repro.oncrpc.errors import RpcTransportError
from repro.resilience.stats import ResilienceStats


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and scripted triggers for injected faults.

    Rates are per-operation probabilities in ``[0, 1]``.  The ``*_first``
    fields deterministically fault the first N matching operations
    regardless of the rates -- convenient for exact-schedule tests.
    """

    #: probability an outbound record is silently dropped
    drop_request_rate: float = 0.0
    #: probability an inbound reply is discarded after the server executed
    drop_reply_rate: float = 0.0
    #: probability a reply record is truncated (corruption)
    truncate_rate: float = 0.0
    #: probability a record has one byte flipped (applies to both directions)
    corrupt_rate: float = 0.0
    #: probability a reply is delivered twice
    duplicate_rate: float = 0.0
    #: probability an operation is delayed by ``delay_s``
    delay_rate: float = 0.0
    #: virtual seconds charged per injected delay
    delay_s: float = 0.002
    #: probability a send hits a connection reset (transport breaks)
    disconnect_rate: float = 0.0
    #: break the connection once this many bytes have been sent (None = never)
    disconnect_after_bytes: int | None = None
    #: deterministically drop the first N requests
    drop_request_first: int = 0
    #: deterministically drop the first N replies
    drop_reply_first: int = 0
    #: deterministically corrupt the first N requests
    corrupt_request_first: int = 0
    #: deterministically corrupt the first N replies
    corrupt_reply_first: int = 0
    #: seed for the fault decision stream
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "drop_request_rate", "drop_reply_rate", "truncate_rate",
            "duplicate_rate", "delay_rate", "disconnect_rate", "corrupt_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.disconnect_after_bytes is not None and self.disconnect_after_bytes < 0:
            raise ValueError(
                "disconnect_after_bytes must be >= 0, "
                f"got {self.disconnect_after_bytes}"
            )
        for name in (
            "drop_request_first", "drop_reply_first",
            "corrupt_request_first", "corrupt_reply_first",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")


class FaultInjectingTransport:
    """Wraps any transport, injecting faults per a :class:`FaultPlan`.

    The wrapper is itself a valid :class:`~repro.oncrpc.transport.Transport`,
    so it slots between a client and its real transport with no other code
    changes.  Injected faults surface as the same exceptions real faults
    would, which is the point: the retry/recovery machinery cannot tell
    the difference.
    """

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        *,
        clock: SimClock | None = None,
        stats: ResilienceStats | None = None,
        active: bool = True,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.stats = stats if stats is not None else ResilienceStats()
        #: when False the wrapper passes records through untouched but
        #: still draws every decision, so (like :class:`SlowTransport`)
        #: a nemesis can open and close a fault window mid-run without
        #: shifting the decision stream of later operations
        self.active = active
        self._rng = random.Random(plan.seed)
        # Corruption decisions come from their own stream: adding the
        # corrupt fault must not shift the draws (and therefore the fault
        # schedules) of plans written before it existed.
        self._corrupt_rng = random.Random(plan.seed ^ 0xC0FFEE)
        self._broken = False
        self._bytes_sent = 0
        self._byte_trip_armed = plan.disconnect_after_bytes is not None
        self._requests_seen = 0
        self._replies_seen = 0
        #: replies queued for re-delivery by the duplicate fault
        self._stash: list[bytes] = []

    # -- helpers -----------------------------------------------------------

    def _hit(self, rate: float) -> bool:
        """Draw one decision; always draws so the stream stays aligned."""
        return self._rng.random() < rate

    def _corrupt_hit(self) -> bool:
        """Draw one corruption decision from the dedicated stream."""
        return self._corrupt_rng.random() < self.plan.corrupt_rate

    def _flip_byte(self, record: bytes) -> bytes:
        """Flip one byte of ``record`` (position from the corrupt stream)."""
        if not record:
            return record
        idx = self._corrupt_rng.randrange(len(record))
        return record[:idx] + bytes([record[idx] ^ 0x5A]) + record[idx + 1 :]

    def _fault(self, kind: str) -> None:
        self.stats.note_fault(kind)

    def _charge_delay(self) -> None:
        self._fault("delay")
        if self.clock is not None:
            self.clock.advance_s(self.plan.delay_s)

    def _check_broken(self) -> None:
        if self._broken:
            raise RpcTransportError("transport broken by injected disconnect")

    # -- Transport interface -----------------------------------------------

    def send_record(self, record: bytes) -> None:
        """Send one record, possibly delaying, dropping or disconnecting.

        All rate decisions are drawn up front, in a fixed order, before any
        fault fires: an earlier fault (or a scripted ``*_first`` trigger)
        must not change how many draws this operation consumes, or the RNG
        stream -- and with it every later fault decision -- would shift.
        """
        self._check_broken()
        plan = self.plan
        self._requests_seen += 1
        delay_hit = self._hit(plan.delay_rate)
        disconnect_hit = self._hit(plan.disconnect_rate)
        drop_hit = self._hit(plan.drop_request_rate)
        corrupt_hit = self._corrupt_hit()
        if self.active:
            if delay_hit:
                self._charge_delay()
            if disconnect_hit:
                self._fault("disconnect")
                self._broken = True
                raise RpcTransportError("injected disconnect during send")
            if self._byte_trip_armed and (
                self._bytes_sent + len(record) > plan.disconnect_after_bytes
            ):
                self._byte_trip_armed = False
                self._fault("disconnect_after_bytes")
                self._broken = True
                raise RpcTransportError(
                    f"injected disconnect after {self._bytes_sent} bytes sent"
                )
            if self._requests_seen <= plan.drop_request_first or drop_hit:
                self._fault("drop_request")
                return  # the wire ate it; the server never sees this call
            if self._requests_seen <= plan.corrupt_request_first or corrupt_hit:
                self._fault("corrupt")
                record = self._flip_byte(record)
        self._bytes_sent += len(record)
        self.inner.send_record(record)

    def recv_record(self) -> bytes:
        """Receive one record, possibly duplicated, truncated or dropped.

        As in :meth:`send_record`, every rate is drawn before any fault is
        applied, so drop/truncate outcomes (including scripted
        ``drop_reply_first`` triggers) never shift the decision stream.
        """
        self._check_broken()
        plan = self.plan
        if self._stash:
            return self._stash.pop(0)
        record = self.inner.recv_record()
        self._replies_seen += 1
        drop_hit = self._hit(plan.drop_reply_rate)
        truncate_hit = self._hit(plan.truncate_rate)
        duplicate_hit = self._hit(plan.duplicate_rate)
        corrupt_hit = self._corrupt_hit()
        if self.active:
            if self._replies_seen <= plan.drop_reply_first or drop_hit:
                self._fault("drop_reply")
                # The reply is gone; behave like a loss the caller can retry.
                raise RpcTransportError("injected reply loss")
            if truncate_hit and len(record) > 4:
                self._fault("truncate")
                return record[: len(record) // 2]
            if self._replies_seen <= plan.corrupt_reply_first or corrupt_hit:
                self._fault("corrupt")
                record = self._flip_byte(record)
            if duplicate_hit:
                self._fault("duplicate")
                self._stash.append(record)
        return record

    def reconnect(self, *, force: bool = False) -> None:
        """Heal an injected disconnect (delegates if the inner can too)."""
        inner_reconnect = getattr(self.inner, "reconnect", None)
        if inner_reconnect is not None:
            try:
                inner_reconnect(force=force)
            except TypeError:
                inner_reconnect()
        self._broken = False
        self._stash.clear()

    def close(self) -> None:
        """Close the wrapped transport."""
        self.inner.close()


# -- limplock (gray-failure) faults ------------------------------------------


@dataclass(frozen=True)
class SlowFaultPlan:
    """A latency distribution for a limping-but-alive component.

    Unlike :class:`FaultPlan`, nothing here drops, corrupts or breaks
    anything: every operation *succeeds*, just slowly.  That is the gray
    failure the binary fault model cannot express -- the component passes
    every liveness probe while destroying tail latency.

    ``base_delay_s``
        Charged on every operation (both directions).
    ``jitter_s``
        Uniform extra delay in ``[0, jitter_s)`` drawn per operation from
        the seeded stream.
    ``spike_rate`` / ``spike_s``
        With probability ``spike_rate`` an operation additionally stalls
        for ``spike_s`` -- the occasional multi-hundred-ms hiccup that
        dominates p99 long before it moves p50.
    ``throughput_Bps``
        Models a degraded link: each operation is additionally charged
        ``len(record) / throughput_Bps`` seconds.  None = unmetered.
    """

    base_delay_s: float = 0.0
    jitter_s: float = 0.0
    spike_rate: float = 0.0
    spike_s: float = 0.0
    throughput_Bps: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("base_delay_s", "jitter_s", "spike_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if not 0.0 <= self.spike_rate <= 1.0:
            raise ValueError(f"spike_rate must be in [0, 1], got {self.spike_rate}")
        if self.throughput_Bps is not None and self.throughput_Bps <= 0:
            raise ValueError(
                f"throughput_Bps must be positive, got {self.throughput_Bps}"
            )

    def delay_s(self, rng: random.Random, nbytes: int) -> float:
        """Draw this operation's total delay (fixed draw order)."""
        delay = self.base_delay_s
        jitter_draw = rng.random()
        spike_draw = rng.random()
        if self.jitter_s > 0.0:
            delay += jitter_draw * self.jitter_s
        if self.spike_rate > 0.0 and spike_draw < self.spike_rate:
            delay += self.spike_s
        if self.throughput_Bps is not None and nbytes > 0:
            delay += nbytes / self.throughput_Bps
        return delay


class SlowTransport:
    """Wraps any transport, charging a :class:`SlowFaultPlan`'s latency.

    Like :class:`FaultInjectingTransport` this is itself a valid
    transport; unlike it, every record is delivered intact.  ``active``
    can be flipped at runtime so a chaos harness can turn a healthy
    endpoint into a limping one mid-run without reconnecting.
    """

    def __init__(
        self,
        inner: Transport,
        plan: SlowFaultPlan,
        *,
        clock: SimClock | None = None,
        stats: ResilienceStats | None = None,
        active: bool = True,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.stats = stats if stats is not None else ResilienceStats()
        self.active = active
        self._rng = random.Random(plan.seed)
        #: total virtual seconds of limplock charged so far
        self.charged_s = 0.0

    def _charge(self, nbytes: int) -> None:
        # Always draw, so toggling ``active`` mid-run does not shift the
        # delay schedule of later operations.
        delay = self.plan.delay_s(self._rng, nbytes)
        if not self.active or delay <= 0.0:
            return
        self.stats.note_fault("slow")
        self.charged_s += delay
        if self.clock is not None:
            self.clock.advance_s(delay)

    def send_record(self, record: bytes) -> None:
        self._charge(len(record))
        self.inner.send_record(record)

    def recv_record(self) -> bytes:
        record = self.inner.recv_record()
        self._charge(len(record))
        return record

    def reconnect(self, *, force: bool = False) -> None:
        inner_reconnect = getattr(self.inner, "reconnect", None)
        if inner_reconnect is not None:
            try:
                inner_reconnect(force=force)
            except TypeError:
                inner_reconnect()

    def close(self) -> None:
        self.inner.close()


class SlowEndpoint:
    """Wraps a failover endpoint so every connection it hands out limps.

    Delegates everything (``name``, ``kill``, partition links, ...) to
    the wrapped endpoint; only ``connect`` is intercepted to wrap the
    returned transport in a :class:`SlowTransport`.  All transports from
    one ``SlowEndpoint`` share the ``active`` flag via the endpoint, so
    a harness flips one switch to start (or heal) the limplock.
    """

    def __init__(
        self,
        inner,
        plan: SlowFaultPlan,
        *,
        clock: SimClock | None = None,
        stats: ResilienceStats | None = None,
        active: bool = True,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.stats = stats
        self.active = active
        self._transports: list[SlowTransport] = []
        self._next_seed = plan.seed

    def connect(self) -> SlowTransport:
        transport = self.inner.connect()
        # Each connection gets its own decision stream, deterministically
        # derived from the plan seed and the connection ordinal.
        plan = SlowFaultPlan(
            base_delay_s=self.plan.base_delay_s,
            jitter_s=self.plan.jitter_s,
            spike_rate=self.plan.spike_rate,
            spike_s=self.plan.spike_s,
            throughput_Bps=self.plan.throughput_Bps,
            seed=self._next_seed,
        )
        self._next_seed += 1
        slow = SlowTransport(
            transport, plan, clock=self.clock, stats=self.stats, active=self.active
        )
        self._transports.append(slow)
        return slow

    def set_active(self, active: bool) -> None:
        """Start or heal the limplock on this endpoint and all its pipes."""
        self.active = active
        for transport in self._transports:
            transport.active = active

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


class FaultyEndpoint:
    """Wraps a failover endpoint so its connections inject transport faults.

    The :class:`SlowEndpoint` pattern applied to :class:`FaultPlan`:
    ``connect`` wraps the returned transport in a
    :class:`FaultInjectingTransport` with a per-connection derived seed,
    and one ``set_active`` switch opens or heals the fault window on the
    endpoint and every transport it has handed out.  This is how the
    simulation nemesis turns ``FaultPlan``-family faults (drops, dup
    replies, disconnects) on and off over virtual time.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        *,
        clock: SimClock | None = None,
        stats: ResilienceStats | None = None,
        active: bool = False,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.stats = stats
        self.active = active
        self._transports: list[FaultInjectingTransport] = []
        self._next_seed = plan.seed

    def connect(self) -> FaultInjectingTransport:
        transport = self.inner.connect()
        plan = replace(self.plan, seed=self._next_seed)
        self._next_seed += 1
        faulty = FaultInjectingTransport(
            transport, plan, clock=self.clock, stats=self.stats, active=self.active
        )
        self._transports.append(faulty)
        return faulty

    def set_active(self, active: bool) -> None:
        """Open (True) or heal (False) the fault window on every pipe."""
        self.active = active
        for transport in self._transports:
            transport.active = active
            if not active:
                # Healing also mends any injected disconnect so the next
                # retry gets through without a reconnect round-trip.
                transport._broken = False

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


# -- storage faults ----------------------------------------------------------


class StorageCrashError(OSError):
    """The simulated machine died mid-storage-operation.

    Raised by :class:`FaultyStorage` for torn writes and
    crash-before-rename: the caller's process is modeled as gone, so the
    interesting question is what the *next* process finds on disk.
    """


@dataclass(frozen=True)
class StorageFaultPlan:
    """Probabilities and scripted triggers for storage faults.

    Mirrors :class:`FaultPlan` for the durability layer.  Rates are
    per-operation probabilities; the ``*_next`` fields deterministically
    fault the next N matching operations regardless of the rates.

    ``torn_write``
        An atomic write crashes with only a seeded prefix of the data at
        the target path -- the disk state a crash leaves on a filesystem
        (or code path) without atomic replace.  This is exactly what
        generation fallback must survive.
    ``crash_before_rename``
        The temp file was written and fsynced but the crash lands before
        ``os.replace``: the target keeps its *old* content.  No data is
        torn; the write is simply lost.
    ``bit_flip``
        One bit of the payload flips silently (write or read side, its
        own RNG stream) -- the fault CRC sections exist to catch.
    ``partial_read``
        A read returns a prefix, modeling a short read of a file being
        written or a truncated sector.
    ``enospc``
        The write fails cleanly with ``ENOSPC``; nothing changes on disk.
    ``slow_fsync``
        The write *succeeds* but stalls for ``slow_fsync_s`` of virtual
        time first -- a limping disk (firmware GC pause, dying sector
        remaps).  The data is fine; the latency is the fault.  Requires
        the wrapper to be given a clock.
    """

    torn_write_rate: float = 0.0
    crash_before_rename_rate: float = 0.0
    bit_flip_rate: float = 0.0
    partial_read_rate: float = 0.0
    enospc_rate: float = 0.0
    slow_fsync_rate: float = 0.0
    #: virtual seconds each slow fsync stalls the writer
    slow_fsync_s: float = 0.05
    #: deterministically tear the next N atomic writes
    torn_write_next: int = 0
    #: deterministically crash-before-rename the next N atomic writes
    crash_before_rename_next: int = 0
    #: deterministically bit-flip the next N writes
    bit_flip_next: int = 0
    #: deterministically shorten the next N reads
    partial_read_next: int = 0
    #: deterministically ENOSPC the next N writes
    enospc_next: int = 0
    #: deterministically slow-fsync the next N writes
    slow_fsync_next: int = 0
    #: seed for the storage fault decision stream
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "torn_write_rate", "crash_before_rename_rate", "bit_flip_rate",
            "partial_read_rate", "enospc_rate", "slow_fsync_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.slow_fsync_s < 0:
            raise ValueError(f"slow_fsync_s must be >= 0, got {self.slow_fsync_s}")
        for name in (
            "torn_write_next", "crash_before_rename_next", "bit_flip_next",
            "partial_read_next", "enospc_next", "slow_fsync_next",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")


class FaultyStorage:
    """Wraps a :class:`~repro.cricket.ckptstore.FileStorage`-shaped object.

    Presents the same interface, so the checkpoint store, migration
    cursor and receiver journal get storage faults without code changes.
    Scripted ``*_next`` counters are mutable state here (the plan stays
    frozen): each consumes one trigger per matching operation.
    """

    def __init__(
        self,
        inner,
        plan: StorageFaultPlan,
        *,
        stats: ResilienceStats | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.stats = stats if stats is not None else ResilienceStats()
        self.clock = clock
        self._rng = random.Random(plan.seed)
        self._flip_rng = random.Random(plan.seed ^ 0xD15C)
        # Slow-fsync decisions come from their own stream: adding the
        # limplock fault must not shift the draws of plans written
        # before it existed (same rule as the corrupt stream above).
        self._slow_rng = random.Random(plan.seed ^ 0x51055105)
        self._torn_left = plan.torn_write_next
        self._crash_left = plan.crash_before_rename_next
        self._flip_left = plan.bit_flip_next
        self._short_left = plan.partial_read_next
        self._enospc_left = plan.enospc_next
        self._slow_left = plan.slow_fsync_next

    def _hit(self, rate: float) -> bool:
        return self._rng.random() < rate

    def _fault(self, kind: str) -> None:
        self.stats.note_fault(kind)

    def _flip_bit(self, data: bytes) -> bytes:
        if not data:
            return data
        idx = self._flip_rng.randrange(len(data))
        bit = 1 << self._flip_rng.randrange(8)
        return data[:idx] + bytes([data[idx] ^ bit]) + data[idx + 1 :]

    def _slow_hit(self) -> bool:
        """Draw one slow-fsync decision from the dedicated stream."""
        return self._slow_rng.random() < self.plan.slow_fsync_rate

    def _charge_slow_fsync(self, slow_hit: bool) -> None:
        """Stall the writer if this write drew the limplock fault."""
        if self._slow_left > 0 or slow_hit:
            self._slow_left = max(0, self._slow_left - 1)
            self._fault("slow_fsync")
            if self.clock is not None:
                self.clock.advance_s(self.plan.slow_fsync_s)

    # -- storage interface ---------------------------------------------------

    def write_atomic(self, name: str, data: bytes) -> None:
        """Atomic write, possibly torn / lost / flipped / refused."""
        plan = self.plan
        torn_hit = self._hit(plan.torn_write_rate)
        crash_hit = self._hit(plan.crash_before_rename_rate)
        enospc_hit = self._hit(plan.enospc_rate)
        flip_hit = self._hit(plan.bit_flip_rate)
        slow_hit = self._slow_hit()
        if self._enospc_left > 0 or enospc_hit:
            self._enospc_left = max(0, self._enospc_left - 1)
            self._fault("enospc")
            import errno

            raise OSError(errno.ENOSPC, f"no space left writing {name}")
        if self._torn_left > 0 or torn_hit:
            self._torn_left = max(0, self._torn_left - 1)
            self._fault("torn_write")
            cut = self._rng.randrange(1, max(2, len(data)))
            # The tear lands at the target path: post-crash disk state.
            self.inner.write_atomic(name, data[:cut])
            raise StorageCrashError(f"simulated crash mid-write of {name}")
        if self._crash_left > 0 or crash_hit:
            self._crash_left = max(0, self._crash_left - 1)
            self._fault("crash_before_rename")
            raise StorageCrashError(
                f"simulated crash before rename of {name} (old content kept)"
            )
        if self._flip_left > 0 or flip_hit:
            self._flip_left = max(0, self._flip_left - 1)
            self._fault("bit_flip")
            data = self._flip_bit(data)
        self._charge_slow_fsync(slow_hit)
        self.inner.write_atomic(name, data)

    def append(self, name: str, data: bytes) -> None:
        """Append, possibly torn (prefix lands) or refused with ENOSPC."""
        plan = self.plan
        torn_hit = self._hit(plan.torn_write_rate)
        enospc_hit = self._hit(plan.enospc_rate)
        slow_hit = self._slow_hit()
        if self._enospc_left > 0 or enospc_hit:
            self._enospc_left = max(0, self._enospc_left - 1)
            self._fault("enospc")
            import errno

            raise OSError(errno.ENOSPC, f"no space left appending {name}")
        if self._torn_left > 0 or torn_hit:
            self._torn_left = max(0, self._torn_left - 1)
            self._fault("torn_write")
            cut = self._rng.randrange(1, max(2, len(data)))
            self.inner.append(name, data[:cut])
            raise StorageCrashError(f"simulated crash mid-append to {name}")
        self._charge_slow_fsync(slow_hit)
        self.inner.append(name, data)

    def read(self, name: str) -> bytes:
        """Read, possibly shortened or bit-flipped."""
        plan = self.plan
        short_hit = self._hit(plan.partial_read_rate)
        flip_hit = self._hit(plan.bit_flip_rate)
        data = self.inner.read(name)
        if (self._short_left > 0 or short_hit) and len(data) > 1:
            self._short_left = max(0, self._short_left - 1)
            self._fault("partial_read")
            return data[: self._rng.randrange(1, len(data))]
        if self._flip_left > 0 or flip_hit:
            self._flip_left = max(0, self._flip_left - 1)
            self._fault("bit_flip")
            data = self._flip_bit(data)
        return data

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def remove(self, name: str) -> None:
        self.inner.remove(name)

    def listdir(self) -> list[str]:
        return self.inner.listdir()


# -- network partitions ------------------------------------------------------


@dataclass(frozen=True)
class PartitionWindow:
    """One timed connectivity cut among named nodes.

    During ``[start_s, end_s)`` of virtual time, nodes in different
    ``groups`` cannot exchange messages; nodes not named in any group
    form an implicit "rest" group that stays fully connected internally.
    ``oneway`` adds asymmetric cuts on top: each ``(src, dst)`` pair
    blocks that direction only -- the shape that executes a call but
    loses its reply, the worst case for at-most-once.
    """

    start_s: float
    end_s: float
    #: tuple of node-name groups; traffic *between* groups is blocked
    groups: tuple[tuple[str, ...], ...] = ()
    #: additional one-directional cuts, each ``(src, dst)``
    oneway: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s cannot be negative")
        if self.end_s <= self.start_s:
            raise ValueError("end_s must be after start_s")
        named = [name for group in self.groups for name in group]
        if len(named) != len(set(named)):
            raise ValueError("a node may appear in at most one group")

    def active(self, now_s: float) -> bool:
        return self.start_s <= now_s < self.end_s

    def blocks(self, src: str, dst: str) -> bool:
        """Is ``src -> dst`` traffic cut while this window is active?"""
        if (src, dst) in self.oneway:
            return True
        src_group = dst_group = None
        for index, group in enumerate(self.groups):
            if src in group:
                src_group = index
            if dst in group:
                dst_group = index
        # Unlisted nodes belong to the implicit rest group (index None ==
        # None compares equal, so two unlisted nodes stay connected).
        return src_group != dst_group


@dataclass(frozen=True)
class PartitionPlan:
    """A schedule of :class:`PartitionWindow` cuts over virtual time.

    Purely scheduled -- no randomness.  Chaos harnesses that want random
    partitions draw the window parameters from their own seeded RNG *up
    front* and hand the finished plan here, keeping the connectivity
    oracle itself trivially deterministic and replayable.
    """

    windows: tuple[PartitionWindow, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "windows", tuple(self.windows))


class PartitionState:
    """Connectivity oracle: may ``src`` reach ``dst`` right now?

    Binds a :class:`PartitionPlan` to a clock.  Every networked seam in
    the HA topology consults one shared instance -- client/server
    endpoints (:class:`~repro.resilience.failover.LoopbackEndpoint`'s
    ``link``), the replication link's ``reachability``, and the witness's
    ``link_filter`` -- so a single plan cuts all of them consistently.
    """

    def __init__(self, plan: PartitionPlan, clock: SimClock) -> None:
        self.plan = plan
        self.clock = clock
        #: blocked (src, dst) lookups, for harness/debug visibility
        self.blocked = 0

    def allowed(self, src: str, dst: str) -> bool:
        now_s = self.clock.now_ns / 1e9
        for window in self.plan.windows:
            if window.active(now_s) and window.blocks(src, dst):
                self.blocked += 1
                return False
        return True

    def link_filter(self, witness_name: str = "witness"):
        """A ``Witness.link_filter`` viewing the witness as one node.

        Witness calls are round trips, so a node can talk to the witness
        only when *both* directions are currently allowed.
        """

        def reachable(holder: str) -> bool:
            return self.allowed(holder, witness_name) and self.allowed(
                witness_name, holder
            )

        return reachable

    def reachability(self, src: str, dst: str):
        """A zero-arg gate for ``ReplicationLink(reachability=...)``."""

        def reachable() -> bool:
            return self.allowed(src, dst)

        return reachable
