"""Gray-failure detection: latency SLOs, outlier ejection and brownout.

Every robustness layer before this one treats components as alive or
dead: the circuit breaker trips on *errors*, ``null_probe`` answers a
binary question, the watchdog catches *hangs*.  A limping link, a
thermally throttled GPU or a slow-fsync disk passes all of those checks
while destroying tail latency — the "gray failure" / limplock regime.

This module supplies the deterministic building blocks, all driven by
virtual time so chaos runs are bit-reproducible:

``LatencyHistogram``
    Fixed log-spaced buckets over nanoseconds; streaming p50/p95/p99
    with O(1) record and O(buckets) quantile.  The same type backs the
    tracer's per-procedure percentiles.

``HealthTracker``
    Histogram plus TCP-style smoothed mean/deviation (SRTT/RTTVAR with
    alpha=1/8, beta=1/4).  One tracker per target: endpoint, device,
    replication link, storage backend, dispatch path.

``LatencySLO``
    A p99 target with a minimum sample count; ``breached(tracker)`` is
    the single question every detector asks.

``OutlierEjector``
    Envoy-style statistical ejection: a target whose p50 exceeds the
    median of its peers' p50s by ``outlier_factor`` is ejected, subject
    to a capped ejection fraction, and re-admitted on probation after a
    virtual-time hold.

``BrownoutController``
    Staged degraded mode for the server with hysteretic entry/exit:
    stage rises immediately with the worst signal ratio, falls only
    after the score stays low for a minimum dwell.  Stage >= 1 sheds
    low-priority work as ``RPC_BUSY``, stretches checkpoint cadence and
    suspends sanitizer sweeps.

Nothing here imports oncrpc/cricket — the heavy layers import *us*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

__all__ = [
    "LatencyHistogram",
    "HealthTracker",
    "LatencySLO",
    "OutlierEjector",
    "EjectionDecision",
    "BrownoutConfig",
    "BrownoutController",
]


def _default_bounds() -> tuple[int, ...]:
    """Log-spaced bucket upper bounds, 1 us .. ~69 s, 4 buckets/decade."""
    bounds: list[int] = []
    value = 1_000  # 1 us in ns
    while value < 100_000_000_000:
        bounds.append(int(value))
        value = value * 10 ** 0.25
    return tuple(bounds)


_BOUNDS = _default_bounds()


class LatencyHistogram:
    """Fixed-bucket latency histogram over nanoseconds.

    Buckets are log-spaced and shared by every user in the tree so that
    quantiles from different subsystems are comparable.  ``quantile``
    returns the upper bound of the bucket holding the q-th sample —
    a deterministic over-estimate, which is the conservative direction
    for SLO checks.
    """

    __slots__ = ("_bounds", "_counts", "count", "total_ns", "max_ns")

    def __init__(self, bounds: tuple[int, ...] = _BOUNDS) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if latency_ns <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self._counts[lo] += 1
        self.count += 1
        self.total_ns += latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns

    def quantile(self, q: float) -> int:
        """Upper bucket bound covering the q-th fraction of samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= rank:
                if i < len(self._bounds):
                    return self._bounds[i]
                return self.max_ns
        return self.max_ns

    @property
    def p50(self) -> int:
        return self.quantile(0.50)

    @property
    def p95(self) -> int:
        return self.quantile(0.95)

    @property
    def p99(self) -> int:
        return self.quantile(0.99)

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def reset(self) -> None:
        for i in range(len(self._counts)):
            self._counts[i] = 0
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0


class HealthTracker:
    """Streaming latency estimator for one target.

    Combines the histogram (tail quantiles) with TCP SRTT/RTTVAR-style
    smoothing (alpha=1/8, beta=1/4).  ``deviation_score`` is the last
    sample's distance from the smoothed mean in units of the smoothed
    deviation — a cheap "is this sample anomalous" signal.
    """

    __slots__ = ("name", "histogram", "srtt_ns", "rttvar_ns", "last_ns")

    ALPHA = 0.125
    BETA = 0.25

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.histogram = LatencyHistogram()
        self.srtt_ns = 0.0
        self.rttvar_ns = 0.0
        self.last_ns = 0

    def record(self, latency_ns: int) -> None:
        self.histogram.record(latency_ns)
        self.last_ns = latency_ns
        if self.histogram.count == 1:
            self.srtt_ns = float(latency_ns)
            self.rttvar_ns = latency_ns / 2.0
            return
        err = latency_ns - self.srtt_ns
        self.rttvar_ns += self.BETA * (abs(err) - self.rttvar_ns)
        self.srtt_ns += self.ALPHA * err

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def p50(self) -> int:
        return self.histogram.p50

    @property
    def p99(self) -> int:
        return self.histogram.p99

    @property
    def deviation_score(self) -> float:
        """|last - srtt| / rttvar; 0 when too few samples to judge."""
        if self.histogram.count < 2 or self.rttvar_ns <= 0.0:
            return 0.0
        return abs(self.last_ns - self.srtt_ns) / self.rttvar_ns

    def reset(self) -> None:
        self.histogram.reset()
        self.srtt_ns = 0.0
        self.rttvar_ns = 0.0
        self.last_ns = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HealthTracker({self.name!r}, n={self.count}, "
            f"p50={self.p50}ns, p99={self.p99}ns)"
        )


@dataclass(frozen=True)
class LatencySLO:
    """A p99 latency objective for one class of operation."""

    target_p99_ns: int
    min_samples: int = 8

    def breached(self, tracker: HealthTracker) -> bool:
        if tracker.count < self.min_samples:
            return False
        return tracker.p99 > self.target_p99_ns

    def ratio(self, tracker: HealthTracker) -> float:
        """Observed p99 / target; < 1.0 while healthy or undersampled."""
        if tracker.count < self.min_samples:
            return 0.0
        return tracker.p99 / self.target_p99_ns


@dataclass(frozen=True)
class EjectionDecision:
    """Outcome of one ejector evaluation round."""

    ejected: tuple[str, ...] = ()
    readmitted: tuple[str, ...] = ()


class OutlierEjector:
    """Statistical outlier ejection with capped fraction and probation.

    Each evaluation compares every candidate's p50 against the median
    of all candidates' p50s.  A candidate whose p50 exceeds
    ``median * outlier_factor`` is an outlier; outliers are ejected
    worst-first until ``max_eject_fraction`` of the pool is out.  An
    ejected target is re-admitted after ``probation_s`` of virtual
    time, with its history cleared so it is judged on fresh samples.
    """

    def __init__(
        self,
        *,
        clock,
        outlier_factor: float = 3.0,
        max_eject_fraction: float = 0.4,
        probation_s: float = 0.5,
        min_samples: int = 4,
    ) -> None:
        if outlier_factor <= 1.0:
            raise ValueError("outlier_factor must exceed 1.0")
        if not 0.0 < max_eject_fraction <= 1.0:
            raise ValueError("max_eject_fraction must be in (0, 1]")
        self.clock = clock
        self.outlier_factor = outlier_factor
        self.max_eject_fraction = max_eject_fraction
        self.probation_ns = int(probation_s * 1e9)
        self.min_samples = min_samples
        self._ejected: dict[str, int] = {}  # name -> readmit_at_ns
        self.ejections = 0
        self.readmissions = 0

    def is_ejected(self, name: str) -> bool:
        return name in self._ejected

    @property
    def ejected_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._ejected))

    def evaluate(self, trackers: Mapping[str, HealthTracker]) -> EjectionDecision:
        """Run one ejection round over the candidate pool.

        ``trackers`` maps target name -> tracker for *all* targets,
        including currently ejected ones (they are excluded from the
        median but considered for re-admission).
        """
        now = self.clock.now_ns
        readmitted: list[str] = []
        for name, readmit_at in sorted(self._ejected.items()):
            if now >= readmit_at:
                del self._ejected[name]
                tracker = trackers.get(name)
                if tracker is not None:
                    tracker.reset()
                readmitted.append(name)
                self.readmissions += 1

        pool = {
            name: t
            for name, t in trackers.items()
            if name not in self._ejected and t.count >= self.min_samples
        }
        ejected: list[str] = []
        if len(pool) >= 2:
            p50s = sorted(t.p50 for t in pool.values())
            mid = len(p50s) // 2
            if len(p50s) % 2:
                median = float(p50s[mid])
            else:
                median = (p50s[mid - 1] + p50s[mid]) / 2.0
            if median > 0:
                total = len(trackers)
                budget = int(total * self.max_eject_fraction) - len(self._ejected)
                outliers = [
                    (t.p50 / median, name)
                    for name, t in pool.items()
                    if t.p50 > median * self.outlier_factor
                ]
                # Worst offender first; name-ordered tie-break keeps
                # the schedule deterministic across runs.
                outliers.sort(key=lambda pair: (-pair[0], pair[1]))
                for _ratio, name in outliers[: max(0, budget)]:
                    self._ejected[name] = now + self.probation_ns
                    ejected.append(name)
                    self.ejections += 1
        return EjectionDecision(ejected=tuple(ejected), readmitted=tuple(readmitted))


@dataclass(frozen=True)
class BrownoutConfig:
    """Tuning for staged degraded-mode operation.

    ``enter_ratio`` is the health-score threshold (worst signal ratio,
    1.0 == exactly at SLO) above which the stage rises; the score must
    fall below ``exit_ratio`` *and* stay there for ``min_dwell_s`` of
    virtual time before the stage drops — the hysteresis that prevents
    flapping.  ``stage2_ratio`` promotes straight to heavy shedding.
    """

    enter_ratio: float = 1.0
    exit_ratio: float = 0.7
    stage2_ratio: float = 3.0
    min_dwell_s: float = 0.25
    shed_priority_below: int = 2
    queue_depth_factor: float = 0.25
    checkpoint_stretch: int = 2

    def __post_init__(self) -> None:
        if self.exit_ratio >= self.enter_ratio:
            raise ValueError("exit_ratio must sit below enter_ratio (hysteresis)")
        if self.stage2_ratio <= self.enter_ratio:
            raise ValueError("stage2_ratio must exceed enter_ratio")


class BrownoutController:
    """Hysteretic staged degraded mode driven by named health signals.

    Signals are callables returning a ratio (observed / objective); the
    controller's score is the worst ratio.  Stages:

    * 0 — healthy, no intervention.
    * 1 — brownout: shed priorities below ``shed_priority_below`` with
      ``RPC_BUSY``, tighten the overload queue, stretch checkpoint
      cadence, suspend sanitizer sweeps.
    * 2 — heavy brownout: shed everything but the highest priority.

    Stage *rises* the moment the score crosses a threshold; it *falls*
    only after the score has stayed below ``exit_ratio`` for
    ``min_dwell_s`` — and drops one stage at a time.
    """

    def __init__(
        self,
        *,
        clock,
        config: BrownoutConfig | None = None,
        server_stats=None,
    ) -> None:
        self.clock = clock
        self.config = config or BrownoutConfig()
        self.stats = server_stats
        self.signals: dict[str, Callable[[], float]] = {}
        self.stage = 0
        self.last_score = 0.0
        self.entries = 0
        self.exits = 0
        self._calm_since_ns: int | None = None
        self._stage_changed_ns = 0

    def add_signal(self, name: str, fn: Callable[[], float]) -> None:
        self.signals[name] = fn

    @property
    def active(self) -> bool:
        return self.stage > 0

    def score(self) -> float:
        worst = 0.0
        for fn in self.signals.values():
            try:
                ratio = float(fn())
            except Exception:
                continue
            if ratio > worst:
                worst = ratio
        return worst

    def worst_signal(self) -> tuple[str, float]:
        worst_name, worst = "", 0.0
        for name, fn in sorted(self.signals.items()):
            try:
                ratio = float(fn())
            except Exception:
                continue
            if ratio > worst:
                worst_name, worst = name, ratio
        return worst_name, worst

    def update(self) -> int:
        """Re-evaluate signals; returns the (possibly new) stage."""
        cfg = self.config
        now = self.clock.now_ns
        score = self.score()
        self.last_score = score

        target = 0
        if score >= cfg.stage2_ratio:
            target = 2
        elif score >= cfg.enter_ratio:
            target = 1

        if target > self.stage:
            if self.stage == 0:
                self.entries += 1
                if self.stats is not None:
                    self.stats.brownout_entries += 1
            self.stage = target
            self._stage_changed_ns = now
            self._calm_since_ns = None
            return self.stage

        if self.stage > 0:
            if score < cfg.exit_ratio:
                if self._calm_since_ns is None:
                    self._calm_since_ns = now
                calm_ns = now - self._calm_since_ns
                dwell_ns = now - self._stage_changed_ns
                min_ns = int(cfg.min_dwell_s * 1e9)
                if calm_ns >= min_ns and dwell_ns >= min_ns:
                    self.stage -= 1
                    self._stage_changed_ns = now
                    self._calm_since_ns = None
                    if self.stage == 0:
                        self.exits += 1
                        if self.stats is not None:
                            self.stats.brownout_exits += 1
            else:
                self._calm_since_ns = None
        return self.stage

    def shed_stat(self, priority: int) -> int | None:
        """RPC accept-stat to shed with, or None to admit.

        Returns 100 (``RPC_BUSY``) for work the current stage refuses:
        stage 1 sheds priorities below ``shed_priority_below``; stage 2
        sheds everything except the top priority class (>= 3).
        """
        if self.stage <= 0:
            return None
        if self.stage == 1 and priority >= self.config.shed_priority_below:
            return None
        if self.stage >= 2 and priority >= 3:
            return None
        return 100  # RPC_BUSY

    @property
    def checkpoint_interval_factor(self) -> int:
        """Multiply checkpoint cadence by this while degraded."""
        if self.stage <= 0:
            return 1
        return self.config.checkpoint_stretch ** self.stage

    def queue_depth_override(self, base_depth: int) -> int | None:
        """Tightened queue depth for the overload controller, if any."""
        if self.stage <= 0:
            return None
        depth = int(base_depth * self.config.queue_depth_factor)
        return max(1, depth)


def median_p50_ns(trackers: Iterable[HealthTracker]) -> float:
    """Median of per-target p50s; helper for tests and demos."""
    p50s = sorted(t.p50 for t in trackers if t.count)
    if not p50s:
        return 0.0
    mid = len(p50s) // 2
    if len(p50s) % 2:
        return float(p50s[mid])
    return (p50s[mid - 1] + p50s[mid]) / 2.0


@dataclass
class HealthRegistry:
    """Named trackers for one process; cheap to attach anywhere."""

    trackers: dict[str, HealthTracker] = field(default_factory=dict)

    def tracker(self, name: str) -> HealthTracker:
        t = self.trackers.get(name)
        if t is None:
            t = HealthTracker(name)
            self.trackers[name] = t
        return t

    def record(self, name: str, latency_ns: int) -> None:
        self.tracker(name).record(latency_ns)

    def snapshot(self) -> dict[str, dict[str, int | float]]:
        return {
            name: {
                "count": t.count,
                "p50_ns": t.p50,
                "p99_ns": t.p99,
                "srtt_ns": t.srtt_ns,
            }
            for name, t in sorted(self.trackers.items())
        }
