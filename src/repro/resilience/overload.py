"""Overload control: bounded queues, fair shedding, rate limits, cancellation.

A healthy Cricket server facing more traffic than it can execute must
*degrade gracefully*: refuse cheap and early, never queue unboundedly, never
burn GPU time on work whose caller has already given up, and never let one
hot tenant starve the rest.  This module is the server-side machinery for
that, split into two layers so both the deterministic virtual-time harness
and the threaded TCP server can share one implementation:

:class:`OverloadQueue`
    A *pure data structure* (no threads, no clocks of its own) that decides
    admission: bounded per-server/per-client depth with a configurable shed
    policy, per-client token-bucket rate limiting, weighted fair queueing
    over client identities, and deadline-aware dequeue.  Deterministic given
    a deterministic caller, which is what lets the
    :class:`~repro.resilience.chaos.OverloadChaosHarness` replay schedules
    bit-for-bit.

:class:`OverloadController`
    A small :class:`threading.Condition` wrapper around the queue providing
    blocking admission for the threaded server: bounded concurrency slots,
    FIFO-fair wakeups in queue (WFQ) order, and cancellation of waiters.
    The fast path (idle server) admits without ever touching the condition
    variable, so single-threaded loopback dispatch cannot deadlock.

Shedding surfaces as :data:`~repro.oncrpc.message.RPC_BUSY` (retryable),
expired deadlines as :data:`~repro.oncrpc.message.CALL_EXPIRED` (fatal) and
cancellation as :data:`~repro.oncrpc.message.CALL_CANCELLED` (fatal); see
:mod:`repro.oncrpc.errors` for the client-side mapping.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.resilience.stats import ServerStats

#: Shed policies for a full queue.
REJECT_NEWEST = "reject-newest"
REJECT_OLDEST = "reject-oldest"
REJECT_LOWEST_PRIORITY = "reject-lowest-priority"

_SHED_POLICIES = (REJECT_NEWEST, REJECT_OLDEST, REJECT_LOWEST_PRIORITY)


class CallCancelledError(Exception):
    """Raised inside a handler when its call's cancel token fires.

    Handlers observe cancellation *cooperatively*: they check
    :meth:`CancelToken.requested` (or call :meth:`CancelToken.raise_if_requested`)
    at safe points -- after undoing side effects -- and the server maps this
    exception to a ``CALL_CANCELLED`` reply.
    """


class CancelToken:
    """A one-way latch signalling that a call should abort at a safe point."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    @property
    def requested(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    def raise_if_requested(self) -> None:
        """Raise :class:`CallCancelledError` if cancellation was requested."""
        if self._event.is_set():
            raise CallCancelledError("call cancelled at safe point")


@dataclass(frozen=True)
class OverloadConfig:
    """Tuning knobs for :class:`OverloadQueue` / :class:`OverloadController`.

    The defaults are deliberately permissive: enabling overload control with
    a default config must not change the behaviour of a lightly loaded
    server.
    """

    #: calls executing concurrently before new arrivals start queueing
    max_concurrency: int = 1
    #: total queued (not yet executing) calls across all clients
    max_queue_depth: int = 64
    #: queued calls per client identity (0 disables the per-client bound)
    max_queue_depth_per_client: int = 0
    #: what to do when a bound is hit
    shed_policy: str = REJECT_NEWEST
    #: token-bucket sustained rate per client, calls/second (0 disables)
    rate_limit_per_client: float = 0.0
    #: token-bucket burst size per client
    rate_limit_burst: float = 8.0
    #: WFQ weight per identity; identities absent here get ``default_weight``
    weights: dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.shed_policy not in _SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"expected one of {_SHED_POLICIES}"
            )
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.default_weight <= 0:
            raise ValueError("default_weight must be > 0")

    def weight_of(self, identity: str) -> float:
        """Fair-queueing weight for ``identity``."""
        weight = self.weights.get(identity, self.default_weight)
        return weight if weight > 0 else self.default_weight


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Time is supplied by the caller in nanoseconds so the bucket works under
    both :class:`~repro.net.simclock.SimClock` and wall time.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last_ns")

    def __init__(self, rate: float, burst: float, now_ns: int) -> None:
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._tokens = self.burst
        self._last_ns = now_ns

    def try_take(self, now_ns: int, cost: float = 1.0) -> bool:
        """Refill to ``now_ns`` and take ``cost`` tokens if available."""
        if now_ns > self._last_ns:
            self._tokens = min(
                self.burst, self._tokens + (now_ns - self._last_ns) * self.rate / 1e9
            )
            self._last_ns = now_ns
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False


@dataclass
class Ticket:
    """One queued (or executing) call as tracked by :class:`OverloadQueue`."""

    identity: str
    xid: int
    priority: int = 0
    #: absolute expiry in the server clock domain; None = no deadline
    expires_at_ns: int | None = None
    #: shared with the executing handler via ``CallContext.cancel``
    cancel: CancelToken = field(default_factory=CancelToken)
    #: WFQ virtual finish time, assigned at admission
    vft: float = 0.0
    #: monotonically increasing admission sequence (arrival order tiebreak)
    seq: int = 0
    #: evicted by the shed policy to make room (surface as RPC_BUSY, not
    #: CALL_CANCELLED -- the client should retry, not give up)
    shed: bool = False

    def expired(self, now_ns: int) -> bool:
        """True when the propagated deadline has already passed."""
        return self.expires_at_ns is not None and now_ns >= self.expires_at_ns


@dataclass(frozen=True)
class Refusal:
    """Why :meth:`OverloadQueue.offer` turned a call away."""

    #: "busy" (shed/rate-limited -> RPC_BUSY) or "expired" (-> CALL_EXPIRED)
    kind: str
    detail: str


class OverloadQueue:
    """Deterministic admission queue: bounds, shedding, WFQ, rate limits.

    Not thread-safe by itself -- :class:`OverloadController` provides the
    locking for threaded servers, and the chaos harness drives it from a
    single virtual-time loop.
    """

    def __init__(self, config: OverloadConfig, stats: ServerStats | None = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else ServerStats()
        #: temporary queue bound tighter than ``config.max_queue_depth``;
        #: set by the brownout controller while degraded, None when healthy
        self.depth_override: int | None = None
        self._queue: list[Ticket] = []
        self._seq = itertools.count()
        self._evicted: list[Ticket] = []
        self._buckets: dict[str, TokenBucket] = {}
        #: per-identity last virtual finish time (WFQ state)
        self._last_vft: dict[str, float] = {}
        #: global virtual clock = vft of the most recently dequeued ticket
        self._vclock = 0.0

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    def depth_of(self, identity: str) -> int:
        """Number of queued tickets for one client identity."""
        return sum(1 for t in self._queue if t.identity == identity)

    def tickets(self) -> Iterable[Ticket]:
        """Snapshot of queued tickets (dequeue order not implied)."""
        return tuple(self._queue)

    def take_evicted(self) -> list[Ticket]:
        """Drain tickets evicted by the shed policy since the last call.

        Each owes its caller an RPC_BUSY reply; the threaded controller and
        the chaos harness both poll this after every :meth:`offer`.
        """
        evicted, self._evicted = self._evicted, []
        return evicted

    # -- admission ---------------------------------------------------------

    def offer(
        self,
        identity: str,
        xid: int,
        now_ns: int,
        *,
        priority: int = 0,
        expires_at_ns: int | None = None,
    ) -> Ticket | Refusal:
        """Admit a call into the queue, or explain why not.

        Order of checks mirrors the cost of each refusal: expired work is
        refused first (executing it helps nobody), then the rate limiter,
        then the queue bounds with the configured shed policy.
        """
        cfg = self.config
        if expires_at_ns is not None and now_ns >= expires_at_ns:
            self.stats.deadline_expired_in_queue += 1
            return Refusal("expired", "deadline passed before admission")

        if cfg.rate_limit_per_client > 0:
            bucket = self._buckets.get(identity)
            if bucket is None:
                bucket = self._buckets[identity] = TokenBucket(
                    cfg.rate_limit_per_client, cfg.rate_limit_burst, now_ns
                )
            if not bucket.try_take(now_ns):
                self.stats.rate_limited += 1
                self.stats.overload_shed += 1
                return Refusal("busy", f"rate limit for {identity}")

        if (
            cfg.max_queue_depth_per_client > 0
            and self.depth_of(identity) >= cfg.max_queue_depth_per_client
        ):
            self.stats.overload_shed += 1
            return Refusal("busy", f"per-client queue bound for {identity}")

        depth_limit = (
            min(self.depth_override, cfg.max_queue_depth)
            if self.depth_override is not None
            else cfg.max_queue_depth
        )
        ticket = self._make_ticket(identity, xid, priority, expires_at_ns)
        if len(self._queue) >= depth_limit:
            shed = self._shed(ticket)
            if shed is ticket:
                self.stats.overload_shed += 1
                return Refusal("busy", "server queue full")
            # An older/lower-priority ticket was evicted to make room; its
            # waiter learns via the cancel token but is answered RPC_BUSY.
            shed.shed = True
            shed.cancel.cancel()
            self._evicted.append(shed)
            self.stats.overload_shed += 1
        self._queue.append(ticket)
        self.stats.queue_peak_depth = max(self.stats.queue_peak_depth, len(self._queue))
        return ticket

    def _make_ticket(
        self, identity: str, xid: int, priority: int, expires_at_ns: int | None
    ) -> Ticket:
        weight = self.config.weight_of(identity)
        start = max(self._last_vft.get(identity, 0.0), self._vclock)
        vft = start + 1.0 / weight
        self._last_vft[identity] = vft
        return Ticket(
            identity=identity,
            xid=xid,
            priority=priority,
            expires_at_ns=expires_at_ns,
            vft=vft,
            seq=next(self._seq),
        )

    def _shed(self, incoming: Ticket) -> Ticket:
        """Pick the ticket to reject when the queue is full.

        Returns ``incoming`` itself for reject-newest, otherwise removes and
        returns a queued victim.  Reject-oldest evicts the earliest arrival;
        reject-lowest-priority evicts the lowest (priority, then newest
        within that priority) ticket -- but never one strictly more
        important than the incoming call.
        """
        policy = self.config.shed_policy
        if policy == REJECT_NEWEST or not self._queue:
            return incoming
        if policy == REJECT_OLDEST:
            victim = min(self._queue, key=lambda t: t.seq)
        else:  # REJECT_LOWEST_PRIORITY
            victim = min(self._queue, key=lambda t: (t.priority, -t.seq))
            if victim.priority > incoming.priority:
                return incoming
        self._queue.remove(victim)
        return victim

    # -- dequeue -----------------------------------------------------------

    def pop_next(self, now_ns: int) -> tuple[Ticket | None, list[Ticket]]:
        """Dequeue the next runnable ticket in WFQ order.

        Returns ``(ticket, dropped)`` where ``dropped`` holds tickets whose
        deadline expired or whose cancel token fired while they queued --
        the caller owes each of them a CALL_EXPIRED / CALL_CANCELLED reply.
        """
        dropped: list[Ticket] = []
        while self._queue:
            best = min(self._queue, key=lambda t: (t.vft, t.seq))
            self._queue.remove(best)
            if best.shed:
                dropped.append(best)  # counted as overload_shed at eviction
                continue
            if best.cancel.requested:
                self.stats.cancelled_in_queue += 1
                dropped.append(best)
                continue
            if best.expired(now_ns):
                self.stats.deadline_expired_in_queue += 1
                dropped.append(best)
                continue
            self._vclock = max(self._vclock, best.vft)
            return best, dropped
        return None, dropped

    def cancel(self, identity: str, xid: int) -> bool:
        """Fire the cancel token of a queued ticket; True if one matched.

        The ticket stays queued until :meth:`pop_next` skips it, keeping
        cancellation O(1) and the queue structure simple.
        """
        for ticket in self._queue:
            if ticket.identity == identity and ticket.xid == xid:
                ticket.cancel.cancel()
                return True
        return False


class OverloadController:
    """Thread-safe blocking admission built on :class:`OverloadQueue`.

    The threaded server calls :meth:`acquire` before executing each call and
    :meth:`release` after.  When fewer than ``max_concurrency`` calls are
    executing and nothing is queued, admission is immediate; otherwise the
    call queues (subject to shedding) and its thread blocks until the queue
    hands it a turn, its deadline passes, or it is cancelled.
    """

    #: acquire() outcomes
    ADMITTED = "admitted"
    BUSY = "busy"
    EXPIRED = "expired"
    CANCELLED = "cancelled"

    def __init__(
        self,
        config: OverloadConfig,
        *,
        now_ns: Callable[[], int],
        stats: ServerStats | None = None,
    ) -> None:
        self.queue = OverloadQueue(config, stats)
        self._now_ns = now_ns
        self._cond = threading.Condition()
        self._active = 0
        #: tickets admitted by pop_next whose waiter has not yet woken
        self._granted: dict[int, Ticket] = {}
        #: tickets dropped (expired/cancelled) awaiting their waiter
        self._dropped: dict[int, str] = {}

    @property
    def stats(self) -> ServerStats:
        """The stats sink shared with the owning server."""
        return self.queue.stats

    @property
    def active(self) -> int:
        """Calls currently executing under a concurrency slot."""
        with self._cond:
            return self._active

    def set_depth_override(self, depth: int | None) -> None:
        """Tighten (or restore) the queue bound -- the brownout lever.

        A browned-out server stops *accumulating* backlog it cannot digest:
        a smaller bound sheds earlier, keeping queue age (and therefore
        every admitted call's latency) proportional to what the degraded
        server can actually sustain.  ``None`` restores the configured
        bound.  Already-queued tickets are not evicted; the bound applies
        to new offers.
        """
        with self._cond:
            self.queue.depth_override = depth

    def acquire(
        self,
        identity: str,
        xid: int,
        *,
        priority: int = 0,
        expires_at_ns: int | None = None,
        cancel: CancelToken | None = None,
    ) -> tuple[str, CancelToken | None]:
        """Admit the calling thread, blocking if the server is saturated.

        Returns ``(outcome, token)`` where outcome is one of
        :data:`ADMITTED` / :data:`BUSY` / :data:`EXPIRED` /
        :data:`CANCELLED` and token is the call's cancel token (shared with
        the queue so ``rpc_cancel`` reaches waiting and executing calls
        alike).
        """
        with self._cond:
            now = self._now_ns()
            if expires_at_ns is not None and now >= expires_at_ns:
                self.stats.deadline_expired_in_queue += 1
                return self.EXPIRED, None
            # Fast path: free slot and nobody queued ahead of us.
            if self._active < self.queue.config.max_concurrency and not len(self.queue):
                outcome = self.queue.offer(
                    identity, xid, now, priority=priority, expires_at_ns=expires_at_ns
                )
                if isinstance(outcome, Refusal):
                    return self._refusal_outcome(outcome), None
                if cancel is not None and cancel.requested:
                    outcome.cancel.cancel()
                ticket, dropped = self.queue.pop_next(now)
                self._note_dropped(dropped)
                if ticket is None:
                    return self._drop_outcome(outcome), None
                self._active += 1
                return self.ADMITTED, ticket.cancel
            outcome = self.queue.offer(
                identity, xid, now, priority=priority, expires_at_ns=expires_at_ns
            )
            self._note_evicted_locked()
            if isinstance(outcome, Refusal):
                return self._refusal_outcome(outcome), None
            ticket = outcome
            if cancel is not None and cancel.requested:
                ticket.cancel.cancel()
            while True:
                granted = self._granted.pop(ticket.seq, None)
                if granted is not None:
                    return self.ADMITTED, granted.cancel
                reason = self._dropped.pop(ticket.seq, None)
                if reason is not None:
                    return reason, None
                if ticket.shed:
                    return self.BUSY, None
                # A shed-policy eviction or rpc_cancel fires our token while
                # we wait; pop_next will classify us on the next pump, but
                # when no pump is coming (no active calls) classify here.
                if self._active == 0:
                    self._pump_locked()
                    continue
                deadline_wait = None
                if ticket.expires_at_ns is not None:
                    deadline_wait = max(
                        0.0, (ticket.expires_at_ns - self._now_ns()) / 1e9
                    )
                    # Never sleep past the deadline; 50ms cap keeps waiters
                    # responsive to cancel under WallClock.
                self._cond.wait(
                    timeout=min(0.05, deadline_wait) if deadline_wait is not None else 0.05
                )
                if ticket.expires_at_ns is not None or ticket.cancel.requested:
                    self._pump_locked()

    def release(self) -> None:
        """Return a concurrency slot and wake the next queued call."""
        with self._cond:
            self._active = max(0, self._active - 1)
            self._pump_locked()

    def cancel(self, identity: str, xid: int) -> bool:
        """Cancel a queued call by (identity, xid); True if one matched."""
        with self._cond:
            hit = self.queue.cancel(identity, xid)
            if hit:
                self._pump_locked()
            return hit

    def _pump_locked(self) -> None:
        """Grant slots to queued tickets in WFQ order (cond held)."""
        moved = False
        while self._active < self.queue.config.max_concurrency:
            ticket, dropped = self.queue.pop_next(self._now_ns())
            self._note_dropped(dropped)
            moved = moved or bool(dropped)
            if ticket is None:
                break
            self._active += 1
            self._granted[ticket.seq] = ticket
            moved = True
        else:
            # Slots full: still sweep expired/cancelled waiters so they
            # stop blocking. pop_next would admit, so only classify drops.
            swept = [
                t
                for t in self.queue.tickets()
                if t.cancel.requested or t.expired(self._now_ns())
            ]
            for t in swept:
                self.queue._queue.remove(t)
                if t.cancel.requested:
                    self.stats.cancelled_in_queue += 1
                    self._dropped[t.seq] = self.CANCELLED
                else:
                    self.stats.deadline_expired_in_queue += 1
                    self._dropped[t.seq] = self.EXPIRED
                moved = True
        if moved:
            self._cond.notify_all()

    def _note_evicted_locked(self) -> None:
        evicted = self.queue.take_evicted()
        for t in evicted:
            self._dropped[t.seq] = self.BUSY
        if evicted:
            self._cond.notify_all()

    def _note_dropped(self, dropped: list[Ticket]) -> None:
        for t in dropped:
            if t.shed:
                self._dropped[t.seq] = self.BUSY
            elif t.cancel.requested:
                self._dropped[t.seq] = self.CANCELLED
            else:
                self._dropped[t.seq] = self.EXPIRED

    def _refusal_outcome(self, refusal: Refusal) -> str:
        return self.EXPIRED if refusal.kind == "expired" else self.BUSY

    def _drop_outcome(self, ticket: Ticket) -> str:
        reason = self._dropped.pop(ticket.seq, None)
        if reason is not None:
            return reason
        if ticket.shed:
            return self.BUSY
        return self.CANCELLED if ticket.cancel.requested else self.EXPIRED
