"""Reconnecting transport with a circuit breaker.

A plain :class:`~repro.oncrpc.transport.TcpTransport` dies with its socket:
once the Cricket server restarts, every call fails forever.
:class:`ReconnectingTransport` holds a transport *factory* instead of a
socket, so a broken connection can be re-established -- under the control
of a :class:`CircuitBreaker` that stops a client from hammering a dead
server with connection attempts.

The breaker runs on the session's clock.  In experiments that is a
:class:`~repro.net.simclock.SimClock`: the open interval is virtual time,
which the retry loop's backoff naturally advances, keeping the whole
failure dance deterministic in tests.  Real-socket clients instead pass a
:class:`~repro.net.simclock.WallClock`, so the open window (like backoff
and deadlines) is enforced in real elapsed time.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.net.simclock import SimClock, WallClock
from repro.oncrpc.errors import RpcCircuitOpenError, RpcTransportError
from repro.oncrpc.transport import Transport
from repro.resilience.stats import ResilienceStats

#: xids for NULL probes, kept far from RpcClient's call xids
_PROBE_XIDS = itertools.count(0x7F000000)


def null_probe(prog: int, vers: int) -> Callable[[Transport], None]:
    """Build a NULLPROC liveness probe for :class:`ReconnectingTransport`.

    The returned callable sends procedure 0 of ``(prog, vers)`` on a
    freshly connected transport and waits for the matching reply.  NULL is
    the conventional ONC RPC ping: free of arguments and side effects, so
    probing with it -- rather than letting the first *real* (possibly
    non-idempotent) call be the half-open trial -- verifies the server is
    actually answering RPCs before the circuit breaker closes.
    """

    def probe(transport: Transport) -> None:
        from repro.oncrpc import message as msg

        xid = next(_PROBE_XIDS)
        call = msg.RpcMessage(xid, msg.CallBody(prog, vers, 0, args=b""))
        transport.send_record(call.encode())
        reply = msg.RpcMessage.decode(transport.recv_record())
        if reply.is_call or reply.xid != xid:
            raise RpcTransportError("NULL probe: mismatched reply")

    return probe


class CircuitBreaker:
    """Classic closed / open / half-open breaker over a virtual clock.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses until ``reset_timeout_s`` of clock time
    has passed, after which one trial (half-open) is allowed.  A success
    closes the circuit and zeroes the failure count.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 0.05,
        clock: SimClock | WallClock | None = None,
        slow_after_s: float | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.clock = clock if clock is not None else SimClock()
        #: probe RTT above this marks the target *suspect* even though
        #: the probe succeeded (gray failure: slow is the new down);
        #: None disables the check
        self.slow_after_s = slow_after_s
        self._consecutive_failures = 0
        self._open_until_ns: int | None = None
        #: lifetime count of transitions to the open state
        self.times_opened = 0
        #: round-trip time of the most recent successful probe, in ns
        self.last_probe_rtt_ns: int | None = None
        #: probe successes that exceeded ``slow_after_s``
        self.slow_probes = 0

    @property
    def state(self) -> str:
        """One of ``"closed"``, ``"open"`` or ``"half-open"``."""
        if self._open_until_ns is None:
            return "closed"
        if self.clock.now_ns >= self._open_until_ns:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a connection attempt proceed right now?"""
        return self.state != "open"

    def record_failure(self) -> None:
        """Note a failed attempt; may open the circuit."""
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._open_until_ns = self.clock.now_ns + int(self.reset_timeout_s * 1e9)
            self.times_opened += 1

    def record_success(self) -> None:
        """Note a success; closes the circuit."""
        self._consecutive_failures = 0
        self._open_until_ns = None

    def note_probe_rtt(self, rtt_ns: int) -> None:
        """Record the measured RTT of a successful probe.

        A breaker that closed on a 10-second probe success is not the
        same as a healthy one; the RTT lets callers (and the failover
        layer's health scoring) tell them apart.
        """
        self.last_probe_rtt_ns = rtt_ns
        if self.slow_after_s is not None and rtt_ns > int(self.slow_after_s * 1e9):
            self.slow_probes += 1

    @property
    def suspect(self) -> bool:
        """Closed, but the last probe was suspiciously slow."""
        if self.slow_after_s is None or self.last_probe_rtt_ns is None:
            return False
        return self.last_probe_rtt_ns > int(self.slow_after_s * 1e9)


class ReconnectingTransport:
    """A transport that can be re-established after connection loss.

    Wraps a factory producing connected transports (typically
    ``lambda: TcpTransport(host, port, ...)``).  On any transport error the
    current connection is declared dead and closed; the retry loop in
    :class:`~repro.oncrpc.client.RpcClient` then calls :meth:`reconnect`
    before its next attempt.  The circuit breaker gates those attempts.
    """

    def __init__(
        self,
        factory: Callable[[], Transport],
        *,
        breaker: CircuitBreaker | None = None,
        clock: SimClock | WallClock | None = None,
        stats: ResilienceStats | None = None,
        connect_now: bool = True,
        probe: Callable[[Transport], None] | None = None,
    ) -> None:
        self._factory = factory
        self.breaker = breaker if breaker is not None else CircuitBreaker(clock=clock)
        self.stats = stats if stats is not None else ResilienceStats()
        #: half-open trial run against a fresh connection before the
        #: breaker closes (see :func:`null_probe`); None accepts a bare
        #: TCP connect as proof of life
        self._probe = probe
        self._inner: Transport | None = self._factory() if connect_now else None

    @property
    def connected(self) -> bool:
        """Whether a live connection is currently held."""
        return self._inner is not None

    def _require(self) -> Transport:
        if self._inner is None:
            raise RpcTransportError("not connected (reconnect required)")
        return self._inner

    def _mark_dead(self) -> None:
        self.breaker.record_failure()
        if self._inner is not None:
            try:
                self._inner.close()
            except Exception:
                pass
            self._inner = None

    def send_record(self, record: bytes) -> None:
        """Send via the live connection; a failure kills the connection."""
        inner = self._require()
        try:
            inner.send_record(record)
        except RpcTransportError:
            self._mark_dead()
            raise

    def recv_record(self) -> bytes:
        """Receive via the live connection; a failure kills the connection."""
        inner = self._require()
        try:
            record = inner.recv_record()
        except RpcTransportError:
            self._mark_dead()
            raise
        self.breaker.record_success()
        return record

    def reconnect(self, *, force: bool = False) -> None:
        """Establish a fresh connection through the factory.

        ``force`` bypasses the circuit breaker and discards any live
        connection -- used by explicit operator-style recovery
        (:meth:`CricketClient.recover`) as opposed to the automatic retry
        loop.
        """
        if self._inner is not None:
            if not force:
                return  # still connected; nothing to do
            try:
                self._inner.close()
            except Exception:
                pass
            self._inner = None
        if not force and not self.breaker.allow():
            raise RpcCircuitOpenError(
                "circuit breaker open: refusing to reconnect "
                f"(state {self.breaker.state!r})"
            )
        try:
            inner = self._factory()
        except RpcTransportError:
            self.breaker.record_failure()
            raise
        if self._probe is not None:
            started_ns = self.breaker.clock.now_ns
            try:
                self._probe(inner)
            except Exception as exc:
                # Connected but not answering RPCs: that is a failure for
                # breaker purposes, and the half-open trial stays cheap
                # instead of sacrificing a real (non-idempotent) call.
                self.breaker.record_failure()
                try:
                    inner.close()
                except Exception:
                    pass
                raise RpcTransportError(f"reconnect probe failed: {exc}") from exc
            # A successful probe still carries information: its RTT.
            # Feed it to the breaker and stats so a breaker that closed
            # on a crawling probe is distinguishable from a healthy one.
            rtt_ns = self.breaker.clock.now_ns - started_ns
            self.breaker.note_probe_rtt(rtt_ns)
            self.stats.probe_rtt_last_ns = rtt_ns
            if self.breaker.suspect:
                self.stats.slow_probes += 1
        self._inner = inner
        self.breaker.record_success()
        self.stats.reconnects += 1

    def close(self) -> None:
        """Close the live connection, if any."""
        if self._inner is not None:
            self._inner.close()
            self._inner = None
