"""Retry policy: exponential backoff, reproducible jitter, deadlines.

The retry loop itself lives in :meth:`repro.oncrpc.client.RpcClient.call_raw`;
this module supplies the policy it consults.  All waiting goes through the
client's clock: under the experiment's
:class:`~repro.net.simclock.SimClock` backoff is charged as measured
virtual time (the property that lets the Figure 6/7 harness quantify
resilience overhead), while real-socket clients use a
:class:`~repro.net.simclock.WallClock` whose ``advance_s`` actually
sleeps, so backoff and ``deadline_s`` bound real elapsed time too.

Error classification follows classic ONC RPC practice: anything that means
"the server may never have seen (or we never saw the answer to) this call"
is retryable, because the server's at-most-once reply cache makes
retransmission of the same xid safe.  Anything that is a *decoded server
verdict* (``RpcReplyError`` and subclasses) is fatal: the call executed and
failed, so retrying cannot help and may hide bugs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.oncrpc.errors import RpcReplyError, RpcTransportError
from repro.xdr.errors import XdrError


def is_retryable(exc: BaseException) -> bool:
    """True if ``exc`` is safe and useful to retry with the same xid.

    Transport failures (including timeouts) and undecodable/corrupt
    replies are retryable; server verdicts (:class:`RpcReplyError`) are
    fatal.  A corrupt reply is treated like a lost one: the retransmitted
    xid hits the server's duplicate-request cache, so no work repeats.
    """
    if isinstance(exc, RpcReplyError):
        return False
    return isinstance(exc, (RpcTransportError, XdrError))


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, seed-reproducible jitter.

    The ``attempt``-th retry (1-based) waits
    ``min(base_delay_s * multiplier**(attempt-1), max_delay_s)`` scaled by
    a jitter factor drawn uniformly from ``[1-jitter, 1+jitter]`` out of a
    :class:`random.Random` seeded with :attr:`seed` -- the same seed always
    produces the same backoff schedule, keeping experiments repeatable.

    ``deadline_s`` is a per-call budget of *virtual* time: once waiting
    for the next backoff would push the call past its deadline, the call
    fails with :class:`~repro.oncrpc.errors.RpcDeadlineExceeded` instead
    of sleeping further.
    """

    #: total send attempts per call (first try + retries)
    max_attempts: int = 5
    #: delay before the first retry, seconds of virtual time
    base_delay_s: float = 0.0005
    #: exponential growth factor between retries
    multiplier: float = 2.0
    #: ceiling on a single backoff delay
    max_delay_s: float = 0.1
    #: jitter fraction; 0.1 means each delay is scaled by U[0.9, 1.1]
    jitter: float = 0.1
    #: per-call virtual-time budget (None = unbounded)
    deadline_s: float | None = 5.0
    #: seed for the jitter stream (determinism across runs)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def make_rng(self) -> random.Random:
        """A fresh jitter stream; one per client keeps runs reproducible."""
        return random.Random(self.seed)

    def backoff_s(self, attempt: int, rng: random.Random | None = None) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered via ``rng``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)
        if rng is not None and self.jitter > 0.0:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def schedule(self) -> tuple[float, ...]:
        """The jitterless backoff delays for every possible retry."""
        return tuple(self.backoff_s(i) for i in range(1, self.max_attempts))


#: sensible default used by clients that ask for "a" retry policy
DEFAULT_RETRY_POLICY = RetryPolicy()
