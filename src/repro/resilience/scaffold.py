"""Shared scaffolding for the chaos harnesses and the simulation.

Seven chaos harnesses grew seven private copies of the same workload
bookkeeping: the 255-step payload pattern, the seeded "keep the
allocator moving" free, the byte-alignment accounting and the
lease+grace lapse loop.  This module is the one copy.

RNG discipline: every helper that consumes randomness documents its
exact draw order, and callers must not reorder draws around it -- the
chaos results and the simulation histories are seeded artifacts, and
an extra or missing ``rng.random()`` silently changes every subsequent
decision in a run.
"""

from __future__ import annotations

import random
from typing import Callable


def aligned(size: int, alignment: int = 256) -> int:
    """Bytes actually charged by the allocator for ``size``."""
    return (size + alignment - 1) // alignment * alignment


def spread(total: int, buckets: int, rng: random.Random) -> list[int]:
    """Distribute ``total`` events over ``buckets`` rounds, seeded.

    Draw order: exactly ``total`` calls to ``rng.randrange(buckets)``.
    """
    counts = [0] * buckets
    for _ in range(total):
        counts[rng.randrange(buckets)] += 1
    return counts


class PayloadPattern:
    """The shared 255-step payload generator.

    Every harness writes recognizable, never-zero, never-repeating-soon
    payloads so a lost or misdirected write shows up as a byte mismatch
    rather than a coincidental match.  Consumes no randomness.
    """

    def __init__(self) -> None:
        self.pattern = 0

    def next_payload(self, size: int, cap: int = 256) -> bytes:
        self.pattern = (self.pattern + 1) % 255
        return bytes([self.pattern + 1]) * min(size, cap)


def draw_free_candidate(
    rng: random.Random,
    expected: dict[int, bytes],
    rate: float,
    *,
    min_live: int = 1,
) -> int | None:
    """The seeded "keep the allocator moving" free decision.

    Returns the pointer to free, or None.  Draw order (the harnesses'
    historical order, preserved exactly): if fewer than ``min_live``
    allocations are live, *no* draw happens; otherwise one
    ``rng.random()`` gate, and only on success one
    ``rng.choice(sorted(expected))``.  The caller performs the free and
    the ledger update -- refusal semantics differ per harness.
    """
    if len(expected) < min_live:
        return None
    if rng.random() >= rate:
        return None
    return rng.choice(sorted(expected))


def advance_past_grace(
    clock,
    lease_s: float,
    grace_s: float,
    on_tick: Callable[[], None] | None = None,
) -> None:
    """March virtual time past one full lease + grace period.

    Steps by half a lease so live clients (renewed via ``on_tick``)
    never expire while dead ones lapse through orphaned into reclaim.
    """
    total_s = lease_s + grace_s
    step_s = lease_s / 2
    elapsed = 0.0
    while elapsed <= total_s:
        clock.advance_s(step_s)
        elapsed += step_s
        if on_tick is not None:
            on_tick()


def detection_window(
    injected_ns: int, detected_ns: int, budget_s: float
) -> tuple[int, bool]:
    """Gray-failure bookkeeping: ``(detection latency, within budget)``.

    ``detected_ns < 0`` means never detected: latency is reported as -1
    and the budget check fails.
    """
    if detected_ns < 0:
        return -1, False
    latency = detected_ns - injected_ns
    return latency, 0 <= latency <= int(budget_s * 1e9)
