"""One place to parse chaos-seed lists.

Every soak surface in this repo -- the CI chaos steps, the demo
scripts' ``CHAOS_SEED`` knob, the nightly nemesis matrix -- wants the
same thing: "run these seeds", configured as a whitespace- or
comma-separated string in an environment variable.  Before this module
each surface re-implemented the split-and-int dance (and each handled
garbage slightly differently); now they all call
:func:`parse_chaos_seeds` / :func:`chaos_seeds` and malformed input
fails the same way everywhere.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

#: environment variable holding the seed list ("0 1 2" or "0,1,2")
CHAOS_SEEDS_ENV = "REPRO_CHAOS_SEEDS"
#: single-seed override used by the demo scripts (takes precedence)
CHAOS_SEED_ENV = "CHAOS_SEED"


def parse_chaos_seeds(
    text: str | None, default: Sequence[int] = (0,)
) -> tuple[int, ...]:
    """Parse a seed list like ``"0 1 2"`` or ``"3,7,12"``.

    ``None``, empty, or whitespace-only input yields ``default``
    (soaks always have a historical seed list to fall back on).  A
    token that is not an integer raises :class:`ValueError` naming the
    offending token -- a half-typed override should fail loudly, not
    silently soak the wrong seeds.
    """
    if text is None:
        return tuple(int(s) for s in default)
    tokens = text.replace(",", " ").split()
    if not tokens:
        return tuple(int(s) for s in default)
    seeds = []
    for token in tokens:
        try:
            seeds.append(int(token, 0))
        except ValueError:
            raise ValueError(
                f"malformed chaos seed {token!r} in {text!r}: "
                "expected whitespace- or comma-separated integers"
            ) from None
    return tuple(seeds)


def chaos_seeds(
    default: Sequence[int] = (0,), env: dict[str, str] | None = None
) -> tuple[int, ...]:
    """Resolve the seed list from the environment.

    ``CHAOS_SEED`` (single seed, the demo-script convention) wins over
    ``REPRO_CHAOS_SEEDS`` (seed list, the CI convention); with neither
    set, ``default`` is returned.
    """
    mapping = os.environ if env is None else env
    single = mapping.get(CHAOS_SEED_ENV)
    if single is not None and single.strip():
        return (int(single, 0),)
    return parse_chaos_seeds(mapping.get(CHAOS_SEEDS_ENV), default)
