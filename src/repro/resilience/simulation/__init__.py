"""Deterministic cluster simulation for the Cricket stack.

Jepsen-style testing, compressed into one process over virtual time:

* :mod:`~repro.resilience.simulation.nemesis` composes every fault
  model in the repo -- transport faults, partitions, limplock, storage
  faults, GPU faults, operational events -- into one seeded schedule;
* :mod:`~repro.resilience.simulation.history` records the client and
  server edges of a run with typed outcomes;
* :mod:`~repro.resilience.simulation.checker` validates the history
  against a model virtual GPU (at-most-once, no lost acked writes,
  lifetime safety, monotonic epochs, byte accounting);
* :mod:`~repro.resilience.simulation.harness` runs the whole thing as
  a pure function of ``(topology, workload, seed)``;
* :mod:`~repro.resilience.simulation.shrink` delta-debugs a failing
  schedule down to a minimal replayable repro trace.
"""

from repro.resilience.simulation.checker import (
    BYTES_UNACCOUNTED,
    DOUBLE_EXECUTION,
    EPOCH_REGRESSION,
    LOST_ACKED_WRITE,
    POINTER_REUSE,
    USE_AFTER_FREE,
    VIOLATION_KINDS,
    HistoryChecker,
    Violation,
)
from repro.resilience.simulation.events import (
    BUG_DOUBLE_EXECUTE,
    DRAIN_RESTORE,
    GPU_FAULT,
    GPU_THROTTLE,
    HA_PAIR_KINDS,
    KILL_PRIMARY,
    LIMP_ENDPOINT,
    MIGRATE,
    PARTITION,
    PARTITION_SHAPES,
    SINGLE_KINDS,
    STORAGE_SLOW,
    STORAGE_TORN,
    TRANSPORT_FAULTS,
    NemesisEvent,
    events_from_jsonable,
    events_to_jsonable,
)
from repro.resilience.simulation.harness import (
    TOPOLOGIES,
    SimulationPlan,
    SimulationResult,
    run_simulation,
)
from repro.resilience.simulation.history import (
    EVENT_KINDS,
    OUTCOME_AMBIGUOUS,
    OUTCOME_BUSY,
    OUTCOME_CANCELLED,
    OUTCOME_CUDA_ERROR,
    OUTCOME_EXPIRED,
    OUTCOME_NOT_LEADER,
    OUTCOME_OK,
    HistoryEvent,
    HistoryRecorder,
    classify_outcome,
)
from repro.resilience.simulation.nemesis import generate_schedule
from repro.resilience.simulation.shrink import (
    load_trace,
    replay_trace,
    save_trace,
    shrink_schedule,
    trace_jsonable,
)

__all__ = [
    # events / nemesis
    "NemesisEvent",
    "generate_schedule",
    "events_to_jsonable",
    "events_from_jsonable",
    "PARTITION",
    "KILL_PRIMARY",
    "GPU_FAULT",
    "GPU_THROTTLE",
    "TRANSPORT_FAULTS",
    "LIMP_ENDPOINT",
    "STORAGE_TORN",
    "STORAGE_SLOW",
    "DRAIN_RESTORE",
    "MIGRATE",
    "BUG_DOUBLE_EXECUTE",
    "HA_PAIR_KINDS",
    "SINGLE_KINDS",
    "PARTITION_SHAPES",
    # history
    "HistoryEvent",
    "HistoryRecorder",
    "classify_outcome",
    "EVENT_KINDS",
    "OUTCOME_OK",
    "OUTCOME_BUSY",
    "OUTCOME_NOT_LEADER",
    "OUTCOME_EXPIRED",
    "OUTCOME_CANCELLED",
    "OUTCOME_CUDA_ERROR",
    "OUTCOME_AMBIGUOUS",
    # checker
    "HistoryChecker",
    "Violation",
    "VIOLATION_KINDS",
    "DOUBLE_EXECUTION",
    "LOST_ACKED_WRITE",
    "USE_AFTER_FREE",
    "POINTER_REUSE",
    "EPOCH_REGRESSION",
    "BYTES_UNACCOUNTED",
    # harness
    "SimulationPlan",
    "SimulationResult",
    "run_simulation",
    "TOPOLOGIES",
    # shrinking / traces
    "shrink_schedule",
    "save_trace",
    "load_trace",
    "replay_trace",
    "trace_jsonable",
]
