"""History checker: validate a recorded run against a model virtual GPU.

The checker replays the client-edge history (``invoke``/``return``
pairs) through a small state machine per device pointer -- Jepsen would
call this P-compositional checking: because CUDA allocations never
alias, read-your-writes and lifetime safety decompose into one
independent check per pointer, which keeps the whole thing linear in
the history length instead of exponential in interleavings.

Checked properties:

* **at-most-once execution** -- per ``(server, identity, xid)`` the
  handler ran at most once.  Server-side ``execute`` events are the
  evidence stream (one per handler execution; reply-cache hits never
  fire one), ``replica_apply`` events are replication and exempt.
  Failover legitimately re-executes an ambiguous call on the *new*
  leader, so the key includes the server: cross-server duplicates are
  instead caught by the state properties below.
* **no lost acked writes** -- a successful D2H must return a payload
  consistent with the acknowledged H2D writes to that pointer; writes
  whose outcome was ambiguous widen the acceptable set instead of
  inventing false positives.
* **malloc/free lifetime safety** -- operations that *succeed* against
  a provably-freed pointer (double free, read/write after free) are
  violations; a failed attempt is the system working.
* **pointer uniqueness** -- malloc returning a pointer the model still
  holds live means an acknowledged allocation silently vanished.
* **monotonic leader epochs** -- the epoch a client observes on
  successful calls never decreases.
* **byte accounting** -- the final leader's allocator may hold exactly
  the acknowledged live bytes, plus at most the bytes of ambiguous
  allocations/frees (the "maybe" set).

Crash-coupled durability: the replication link trades durability for
availability *deliberately* -- a witness-blessed primary that cannot
reach its standby detaches and keeps acknowledging, and a demoted
(async-lagged) link acknowledges ahead of shipping.  Ops acked in those
windows die with the primary.  The checker models exactly that contract:
every acked mutation is attributed to the server that executed it (the
``execute`` evidence stream) and marked *covered* once a matching
``replica_apply`` lands elsewhere; when a ``crash`` event arrives, the
dead server's uncovered effects become may-or-may-not worlds (widened
read sets, limbo pointers) instead of certainties.  A lost write on a
server that never crashed is still a violation -- the forgiveness is
scoped to the documented failure mode, nothing wider.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.resilience.simulation.history import (
    OUTCOME_CUDA_ERROR,
    OUTCOME_OK,
    HistoryEvent,
)

# -- violation kinds ----------------------------------------------------------

DOUBLE_EXECUTION = "double-execution"
LOST_ACKED_WRITE = "lost-acked-write"
USE_AFTER_FREE = "use-after-free"
POINTER_REUSE = "pointer-reuse"
EPOCH_REGRESSION = "epoch-regression"
BYTES_UNACCOUNTED = "bytes-unaccounted"

VIOLATION_KINDS = (
    DOUBLE_EXECUTION,
    LOST_ACKED_WRITE,
    USE_AFTER_FREE,
    POINTER_REUSE,
    EPOCH_REGRESSION,
    BYTES_UNACCOUNTED,
)


@dataclass(frozen=True)
class Violation:
    """One checker finding, anchored to the history event that proved it."""

    kind: str
    detail: str
    node: str
    index: int

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "node": self.node,
            "index": self.index,
        }


def _aligned(size: int, alignment: int) -> int:
    return max(1, (size + alignment - 1) // alignment * alignment)


@dataclass
class _Pointer:
    """Model state for one device allocation."""

    size: int
    #: acceptable readback payloads (hex); None = never written (any
    #: readback is acceptable until the first acked write)
    candidates: set[str] | None = None


class HistoryChecker:
    """Validates one history; :meth:`check` returns the violations found."""

    def __init__(self, *, alignment: int = 256) -> None:
        self.alignment = alignment

    def check(self, events: list[HistoryEvent]) -> list[Violation]:
        violations: list[Violation] = []
        # (server, identity, xid) -> index of the first fresh execution
        executed: dict[tuple[str, str, int], int] = {}
        # pointer model, keyed by device address
        live: dict[int, _Pointer] = {}
        #: pointers whose free was ambiguous: maybe freed, maybe not
        limbo: dict[int, _Pointer] = {}
        #: pointers whose free the system acknowledged
        freed: set[int] = set()
        #: bytes that *may* be allocated server-side without a client ptr
        ambiguous_alloc_bytes = 0
        epochs: dict[str, int] = {}
        invokes: dict[int, HistoryEvent] = {}
        #: xids whose execution provably reached a replica
        covered: set[int] = set()
        #: xid -> node of its latest fresh execution (the serving server)
        served_by: dict[int, str] = {}
        #: per server, acked-mutation effects not replica-covered, in
        #: history order: ``(xid, op, ptr, stash)``
        at_risk: dict[str, list[tuple[int, str, int, Any]]] = {}

        for event in events:
            if event.kind == "invoke":
                invokes[event.op_id] = event
            elif event.kind == "execute":
                if event.replica:
                    if event.xid is not None:
                        covered.add(event.xid)
                    continue
                if event.xid is not None:
                    served_by[event.xid] = event.node
                key = (event.node, event.identity or "", event.xid or 0)
                if key in executed:
                    violations.append(
                        Violation(
                            kind=DOUBLE_EXECUTION,
                            detail=(
                                f"xid {event.xid} of {event.identity} executed "
                                f"again on {event.node} (first at event "
                                f"{executed[key]})"
                            ),
                            node=event.node,
                            index=event.index,
                        )
                    )
                else:
                    executed[key] = event.index
            elif event.kind == "return":
                call = invokes.get(event.op_id)
                args = dict(call.args) if call is not None else {}
                args.update(event.args)
                effects: list[tuple[str, int, Any]] = []
                self._apply_return(
                    event,
                    args,
                    violations,
                    live,
                    limbo,
                    freed,
                    effects,
                )
                if effects and event.xid is not None:
                    server = served_by.get(event.xid)
                    if server is not None and event.xid not in covered:
                        at_risk.setdefault(server, []).extend(
                            (event.xid, op, ptr, stash)
                            for op, ptr, stash in effects
                        )
                if event.ambiguous and event.op == "malloc":
                    ambiguous_alloc_bytes += _aligned(
                        int(args.get("size", 0)), self.alignment
                    )
                if event.epoch is not None and event.outcome == OUTCOME_OK:
                    last = epochs.get(event.node)
                    if last is not None and event.epoch < last:
                        violations.append(
                            Violation(
                                kind=EPOCH_REGRESSION,
                                detail=(
                                    f"{event.node} observed epoch {event.epoch} "
                                    f"after {last}"
                                ),
                                node=event.node,
                                index=event.index,
                            )
                        )
                    epochs[event.node] = max(last or 0, event.epoch)
            elif event.kind == "crash":
                # The dead server's uncovered acks are now maybe-lost:
                # downgrade each effect from a certainty to a both-worlds
                # state.  Effects whose xid got replica coverage (even
                # after the ack, via a demoted/lagged ship) stay certain.
                for xid, op, ptr, stash in at_risk.pop(event.node, []):
                    if xid in covered:
                        continue
                    if op == "malloc":
                        if live.get(ptr) is stash:
                            limbo[ptr] = live.pop(ptr)
                    elif op == "h2d":
                        entry, prior = stash
                        current = live.get(ptr) or limbo.get(ptr)
                        if current is entry and entry.candidates is not None:
                            if prior is None:
                                entry.candidates = None
                            else:
                                entry.candidates |= prior
                    elif op == "free":
                        if (
                            ptr in freed
                            and ptr not in live
                            and ptr not in limbo
                        ):
                            freed.discard(ptr)
                            limbo[ptr] = stash
            elif event.kind == "audit":
                used = int(event.args.get("used_bytes", 0))
                alignment = int(event.args.get("alignment", self.alignment))
                certain = sum(
                    _aligned(p.size, alignment) for p in live.values()
                )
                slack = ambiguous_alloc_bytes + sum(
                    _aligned(p.size, alignment) for p in limbo.values()
                )
                if not certain <= used <= certain + slack:
                    violations.append(
                        Violation(
                            kind=BYTES_UNACCOUNTED,
                            detail=(
                                f"{event.node} holds {used} bytes; model "
                                f"allows [{certain}, {certain + slack}]"
                            ),
                            node=event.node,
                            index=event.index,
                        )
                    )
        return violations

    # -- per-pointer state machine ------------------------------------------

    def _apply_return(
        self,
        event: HistoryEvent,
        args: dict[str, Any],
        violations: list[Violation],
        live: dict[int, _Pointer],
        limbo: dict[int, _Pointer],
        freed: set[int],
        effects: list[tuple[str, int, Any]],
    ) -> None:
        """Apply one return event to the pointer model.

        Successful mutations additionally append an *effect record*
        ``(op, ptr, stash)`` to ``effects`` -- enough state for the
        caller to undo the certainty later, should the serving server
        crash with the op never replica-covered (see ``check``).
        """
        op = event.op
        ok = event.outcome == OUTCOME_OK

        if op == "malloc":
            if not ok:
                return
            ptr = int(event.value)
            size = int(args.get("size", 0))
            if ptr in live:
                violations.append(
                    Violation(
                        kind=POINTER_REUSE,
                        detail=(
                            f"malloc returned {ptr:#x} which the model still "
                            "holds live -- an acked allocation vanished"
                        ),
                        node=event.node,
                        index=event.index,
                    )
                )
            limbo.pop(ptr, None)
            freed.discard(ptr)
            live[ptr] = _Pointer(size=size)
            effects.append(("malloc", ptr, live[ptr]))
            return

        ptr = args.get("ptr")
        if ptr is None:
            return
        ptr = int(ptr)

        if op == "free":
            if ok:
                if ptr in live:
                    effects.append(("free", ptr, live.pop(ptr)))
                    freed.add(ptr)
                elif ptr in limbo:
                    # The earlier ambiguous free evidently did not land;
                    # this one did.
                    effects.append(("free", ptr, limbo.pop(ptr)))
                    freed.add(ptr)
                else:
                    violations.append(
                        Violation(
                            kind=USE_AFTER_FREE,
                            detail=f"free of already-freed {ptr:#x} succeeded",
                            node=event.node,
                            index=event.index,
                        )
                    )
            elif event.ambiguous and ptr in live:
                limbo[ptr] = live.pop(ptr)
            # A *failed* free of a freed pointer is the system behaving.
            return

        if op == "h2d":
            payload = str(args.get("data", ""))
            if ok:
                if ptr in live:
                    entry = live[ptr]
                    prior = (
                        set(entry.candidates)
                        if entry.candidates is not None
                        else None
                    )
                    entry.candidates = {payload}
                    effects.append(("h2d", ptr, (entry, prior)))
                elif ptr in limbo:
                    # A successful write proves it was never freed.
                    entry = limbo.pop(ptr)
                    prior = (
                        set(entry.candidates)
                        if entry.candidates is not None
                        else None
                    )
                    entry.candidates = {payload}
                    live[ptr] = entry
                    effects.append(("h2d", ptr, (entry, prior)))
                elif ptr in freed:
                    violations.append(
                        Violation(
                            kind=USE_AFTER_FREE,
                            detail=f"write to freed {ptr:#x} succeeded",
                            node=event.node,
                            index=event.index,
                        )
                    )
            elif event.ambiguous or event.outcome == OUTCOME_CUDA_ERROR:
                # May or may not have written: both payloads acceptable.
                entry = live.get(ptr) or limbo.get(ptr)
                if entry is not None and entry.candidates is not None:
                    entry.candidates.add(payload)
            return

        if op == "d2h":
            if not ok:
                return
            if ptr in freed:
                violations.append(
                    Violation(
                        kind=USE_AFTER_FREE,
                        detail=f"read of freed {ptr:#x} succeeded",
                        node=event.node,
                        index=event.index,
                    )
                )
                return
            entry = live.get(ptr) or limbo.get(ptr)
            if entry is None:
                return
            data = str(event.value)
            if entry.candidates is not None and data not in entry.candidates:
                expected = sorted(entry.candidates)
                violations.append(
                    Violation(
                        kind=LOST_ACKED_WRITE,
                        detail=(
                            f"readback of {ptr:#x} returned "
                            f"{data[:32]!r}..., model allows "
                            f"{[e[:16] for e in expected]!r}"
                        ),
                        node=event.node,
                        index=event.index,
                    )
                )
            # Reads are linearization points: later reads must agree
            # until the next write.
            entry.candidates = {data}
            return
