"""Nemesis event model: the composed adversary's vocabulary.

A nemesis schedule is a flat, ordered list of :class:`NemesisEvent`
values -- pure data, deliberately so: the simulation run is a function
of ``(topology, workload, seed)`` *through* this list, which is what
lets the shrinker substitute an arbitrary subsequence and re-run
without perturbing anything else.  Windowed faults (partitions,
limplocks, transport-fault storms) carry their duration in the event
itself rather than pairing an open/close event, so dropping one event
during shrinking never leaves a fault stuck open by accident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# -- event kinds --------------------------------------------------------------

#: network cut between topology groups for ``duration_s`` (shape picks who)
PARTITION = "partition"
#: crash the current primary (``dangerous=True`` = mid-execution, the
#: executed-but-never-acked window); the witness-gated promote follows
KILL_PRIMARY = "kill_primary"
#: sticky device fault (ecc/context) on the leader + manual device failover
GPU_FAULT = "gpu_fault"
#: soft thermal throttle on the leader's serving device (recovery-ladder
#: rung 0 preempts; doubles as a brownout pressure signal)
GPU_THROTTLE = "gpu_throttle"
#: FaultPlan-family transport faults (drops, dup replies, disconnects)
#: on one client's pipes for ``duration_s``
TRANSPORT_FAULTS = "transport_faults"
#: SlowFaultPlan limplock on one client's pipes for ``duration_s``
LIMP_ENDPOINT = "limp_endpoint"
#: arm ``count`` torn writes on the checkpoint store
STORAGE_TORN = "storage_torn"
#: arm ``count`` slow fsyncs on the checkpoint store (drives the
#: checkpoint-latency SLO and with it brownout)
STORAGE_SLOW = "storage_slow"
#: drain the server (checkpoint) and restore onto a fresh process
DRAIN_RESTORE = "drain_restore"
#: live-migrate the server to a fresh process (precopy / stop-and-copy /
#: cutover; clients follow transparently)
MIGRATE = "migrate"
#: test-only: arm ``count`` double executions on the current leader --
#: the intentional bug the checker/shrinker acceptance path catches
BUG_DOUBLE_EXECUTE = "bug_double_execute"

#: kinds the generator draws for the HA-pair topology
HA_PAIR_KINDS = (
    PARTITION,
    KILL_PRIMARY,
    GPU_FAULT,
    GPU_THROTTLE,
    TRANSPORT_FAULTS,
    LIMP_ENDPOINT,
    STORAGE_TORN,
    STORAGE_SLOW,
)

#: kinds the generator draws for the single-server topology (no standby
#: to kill or partition from, but operational events instead)
SINGLE_KINDS = (
    GPU_FAULT,
    GPU_THROTTLE,
    TRANSPORT_FAULTS,
    LIMP_ENDPOINT,
    STORAGE_TORN,
    STORAGE_SLOW,
    DRAIN_RESTORE,
    MIGRATE,
)

#: partition shapes drawn for the PARTITION kind (mirrors the PR-8 cuts)
PARTITION_SHAPES = (
    "primary_isolated",
    "standby_isolated",
    "witness_isolated",
    "heal_divergence",
)


@dataclass(frozen=True)
class NemesisEvent:
    """One scheduled adversary action at virtual time ``at_s``."""

    at_s: float
    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_jsonable(self) -> dict[str, Any]:
        out: dict[str, Any] = {"at_s": self.at_s, "kind": self.kind}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_jsonable(cls, data: dict[str, Any]) -> "NemesisEvent":
        return cls(
            at_s=float(data["at_s"]),
            kind=str(data["kind"]),
            params=dict(data.get("params", {})),
        )


def events_to_jsonable(events: list[NemesisEvent]) -> list[dict[str, Any]]:
    return [event.to_jsonable() for event in events]


def events_from_jsonable(data: list[dict[str, Any]]) -> list[NemesisEvent]:
    return [NemesisEvent.from_jsonable(entry) for entry in data]
