"""Deterministic cluster simulation: topology + workload + nemesis + oracle.

One virtual-time event loop drives everything: a pre-generated client
workload (mallocs, writes, readbacks, frees, checkpoints) interleaved
with a pre-generated nemesis schedule (partitions, primary kills, GPU
faults, limplocks, transport-fault storms, torn checkpoint storage,
drain/restore, live migration).  All randomness is drawn *before* the
run starts, from RNGs derived independently for the nemesis and the
workload streams, so

* a run is a pure function of ``(topology, workload, seed)`` -- two
  runs of one plan produce byte-identical normalized histories -- and
* substituting an arbitrary subsequence of the nemesis schedule (the
  shrinker's move) leaves the workload stream untouched.

The history recorder observes every client-edge operation and every
server-side handler execution; :func:`run_simulation` finishes by
healing all faults, converging the clients and handing the history to
the :class:`~repro.resilience.simulation.checker.HistoryChecker`.

Everything Cricket-flavored is imported inside the builder/run
functions, keeping this module importable from the resilience layer
without the Cricket stack (the chaos.py convention).
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.simulation.checker import HistoryChecker, Violation
from repro.resilience.simulation.events import (
    BUG_DOUBLE_EXECUTE,
    DRAIN_RESTORE,
    GPU_FAULT,
    GPU_THROTTLE,
    KILL_PRIMARY,
    LIMP_ENDPOINT,
    MIGRATE,
    PARTITION,
    STORAGE_SLOW,
    STORAGE_TORN,
    TRANSPORT_FAULTS,
    NemesisEvent,
)
from repro.resilience.simulation.history import (
    OUTCOME_OK,
    HistoryEvent,
    HistoryRecorder,
    classify_outcome,
)
from repro.resilience.simulation.nemesis import generate_schedule

#: supported topologies
TOPOLOGIES = ("single", "ha_pair")

#: derivation constants separating the nemesis and workload RNG streams
_NEMESIS_STREAM = 0x4E656D65
_WORKLOAD_STREAM = 0x576F726B


@dataclass(frozen=True)
class SimulationPlan:
    """Seeded description of one deterministic simulation run."""

    #: "single" (one server, operational events) or "ha_pair" (fenced
    #: primary/standby behind a witness, partition/kill events)
    topology: str = "ha_pair"
    #: master seed; nemesis and workload streams derive from it
    seed: int = 0
    #: concurrent workload clients
    clients: int = 2
    #: workload steps spread over the horizon
    steps: int = 60
    #: nemesis events drawn for the schedule
    nemesis_events: int = 6
    #: size of each allocation
    alloc_bytes: int = 4096
    #: virtual-seconds horizon the schedule and workload spread over
    horizon_s: float = 12.0
    #: witness lease (ha_pair only)
    lease_s: float = 0.2

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; pick one of {TOPOLOGIES}"
            )
        if self.clients < 1:
            raise ValueError("need at least one client")
        if self.steps < 1:
            raise ValueError("need at least one workload step")
        if self.horizon_s <= 0:
            raise ValueError("the horizon must be positive")

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "topology": self.topology,
            "seed": self.seed,
            "clients": self.clients,
            "steps": self.steps,
            "nemesis_events": self.nemesis_events,
            "alloc_bytes": self.alloc_bytes,
            "horizon_s": self.horizon_s,
            "lease_s": self.lease_s,
        }

    @classmethod
    def from_jsonable(cls, data: dict[str, Any]) -> "SimulationPlan":
        return cls(
            topology=str(data["topology"]),
            seed=int(data["seed"]),
            clients=int(data["clients"]),
            steps=int(data["steps"]),
            nemesis_events=int(data["nemesis_events"]),
            alloc_bytes=int(data["alloc_bytes"]),
            horizon_s=float(data["horizon_s"]),
            lease_s=float(data["lease_s"]),
        )


@dataclass
class SimulationResult:
    """Outcome of one simulation run: history, verdicts, accounting."""

    plan: SimulationPlan
    #: the nemesis schedule that actually ran (post-shrinking input)
    schedule: list[NemesisEvent]
    #: checker verdicts (empty = history is explainable by a correct GPU)
    violations: list[Violation]
    #: SHA-256 over the normalized history -- the bit-reproducibility handle
    fingerprint: str
    #: full recorded history (client edge + server edge + audit)
    events: list[HistoryEvent] = field(repr=False, default_factory=list)
    #: endpoint name of the leader at the end ("" = nobody)
    final_leader: str = ""
    #: every client finished on the final leader at its epoch
    converged: bool = True
    #: tally of client-edge outcomes by type ("ok", "busy", ...)
    outcomes: dict[str, int] = field(default_factory=dict)
    #: nemesis events applied, in firing order (kind strings)
    applied: list[str] = field(default_factory=list)
    #: final leader's ServerStats counters
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.violations

    def violation_kinds(self) -> tuple[str, ...]:
        return tuple(sorted({v.kind for v in self.violations}))


class _Cluster:
    """Handles to one built topology plus the nemesis appliers."""

    def __init__(self, plan: SimulationPlan, recorder: HistoryRecorder, clock):
        self.plan = plan
        self.recorder = recorder
        self.clock = clock
        self.clients: list[Any] = []
        self.client_names: list[str] = []
        #: per client: innermost LoopbackEndpoints (for server swaps)
        self.loopbacks: dict[str, list[Any]] = {}
        #: per client: FaultyEndpoint wrappers (transport-fault windows)
        self.faulty: dict[str, list[Any]] = {}
        #: per client: SlowEndpoint wrappers (limplock windows)
        self.slow: dict[str, list[Any]] = {}
        self.servers: dict[str, Any] = {}
        self.state = None  # PartitionState (ha_pair)
        self.witness = None
        self.fences: dict[str, Any] = {}
        self.link = None
        self.store = None  # CheckpointStore over FaultyStorage
        self.store_faults = None  # the FaultyStorage wrapper
        #: (heal_at_s, wrapper-kind, client) for open windowed faults
        self.pending_heals: list[tuple[float, str, str]] = []
        self.checkpoints_taken = 0
        self.checkpoint_failures = 0

    # -- leadership ---------------------------------------------------------

    def leader(self) -> tuple[str, Any]:
        """Name and server of the node currently accepting mutations."""
        if self.plan.topology == "single":
            return "server", self.servers["server"]
        for name in ("standby", "primary"):
            fence = self.fences.get(name)
            if fence is not None and fence.is_leader:
                return name, self.servers[name]
        return "", self.servers["primary"]

    # -- nemesis appliers ---------------------------------------------------

    def apply(self, event: NemesisEvent) -> None:
        handler = {
            PARTITION: self._apply_partition,
            KILL_PRIMARY: self._apply_kill_primary,
            GPU_FAULT: self._apply_gpu_fault,
            GPU_THROTTLE: self._apply_gpu_throttle,
            TRANSPORT_FAULTS: self._apply_transport_faults,
            LIMP_ENDPOINT: self._apply_limp,
            STORAGE_TORN: self._apply_storage_torn,
            STORAGE_SLOW: self._apply_storage_slow,
            DRAIN_RESTORE: self._apply_drain_restore,
            MIGRATE: self._apply_migrate,
            BUG_DOUBLE_EXECUTE: self._apply_bug_double_execute,
        }[event.kind]
        handler(event)

    def _apply_partition(self, event: NemesisEvent) -> None:
        from repro.resilience.faults import PartitionPlan, PartitionWindow

        if self.state is None:
            return
        shape = event.params.get("shape", "primary_isolated")
        duration = float(event.params.get("duration_s", 1.0))
        groups = {
            "primary_isolated": (("primary",),),
            "standby_isolated": (("standby",),),
            "witness_isolated": (("witness",),),
            "heal_divergence": (
                ("primary", *self.client_names),
                ("standby", "witness"),
            ),
        }[shape]
        now_s = self.clock.now_ns / 1e9
        window = PartitionWindow(
            start_s=now_s, end_s=now_s + duration, groups=groups
        )
        self.state.plan = PartitionPlan(windows=(window,))
        # the operator's post-heal move: re-attach a link the go-solo
        # path detached during the cut (full sync, then resume shipping)
        self.pending_heals.append((window.end_s, "relink", ""))
        self.pending_heals.sort(key=lambda entry: entry[0])
        # march into the window far enough for the lease to expire while
        # the cut is open -- the moment the fencing machinery must act
        self.clock.advance_s(min(self.plan.lease_s * 1.5, duration / 2))

    def _apply_kill_primary(self, event: NemesisEvent) -> None:
        if self.plan.topology == "single":
            return
        name, server = self.leader()
        if not name or server.killed:
            return
        if event.params.get("dangerous"):
            # Crash after executing (and replicating) the next call but
            # before its reply leaves -- the at-most-once worst case.
            slot = 0 if name == "primary" else 1
            self.loopbacks[self.client_names[0]][slot].kill_after_next_execute()
        else:
            server.kill()

    def _apply_gpu_fault(self, event: NemesisEvent) -> None:
        _, server = self.leader()
        if server.killed:
            return
        server.inject_device_fault(0, event.params.get("fault", "ecc"))
        try:
            server.failover_device(0)
        except RuntimeError:
            # No healthy spare this time; the sticky fault stays and the
            # workload sees CUDA errors -- typed failures, not violations.
            pass

    def _apply_gpu_throttle(self, event: NemesisEvent) -> None:
        _, server = self.leader()
        if server.killed:
            return
        severity = float(event.params.get("severity", 4.0))
        server.devices[0].inject_soft_fault("throttle", severity)
        try:
            server.failover_device(0)
        except RuntimeError:
            pass

    def _windowed(self, event: NemesisEvent, wrappers: dict, label: str) -> None:
        client = f"client{int(event.params.get('client', 0)) % self.plan.clients}"
        duration = float(event.params.get("duration_s", 0.5))
        for wrapper in wrappers[client]:
            wrapper.set_active(True)
        self.pending_heals.append(
            (self.clock.now_ns / 1e9 + duration, label, client)
        )
        self.pending_heals.sort(key=lambda entry: entry[0])

    def _apply_transport_faults(self, event: NemesisEvent) -> None:
        self._windowed(event, self.faulty, "faulty")

    def _apply_limp(self, event: NemesisEvent) -> None:
        self._windowed(event, self.slow, "slow")

    def heal_due(self, now_s: float) -> None:
        """Close windowed faults (and run post-heal moves) now due."""
        while self.pending_heals and self.pending_heals[0][0] <= now_s:
            _, label, client = self.pending_heals.pop(0)
            if label == "relink":
                self._relink()
                continue
            wrappers = self.faulty if label == "faulty" else self.slow
            for wrapper in wrappers[client]:
                wrapper.set_active(False)

    def _relink(self) -> None:
        """Re-attach a detached, unpromoted replication link post-heal.

        Only when the original primary still leads and both processes
        are alive: after a promotion the demoted ex-primary stays
        fenced and solo (re-seeding it as a standby of the new leader
        is an operation this harness deliberately does not model).
        """
        link = self.link
        if link is None or link.attached or link.promoted:
            return
        primary_fence = self.fences.get("primary")
        if primary_fence is None or not primary_fence.is_leader:
            return
        if self.servers["primary"].killed or self.servers["standby"].killed:
            return
        if not link.reachable():
            return
        link.attach()

    def heal_all(self) -> None:
        """End-of-run: close every open fault so convergence can happen."""
        from repro.resilience.faults import PartitionPlan

        for _, label, client in self.pending_heals:
            if label == "relink":
                continue
            wrappers = self.faulty if label == "faulty" else self.slow
            for wrapper in wrappers[client]:
                wrapper.set_active(False)
        self.pending_heals.clear()
        if self.state is not None:
            self.state.plan = PartitionPlan()
        self._relink()

    def _apply_storage_torn(self, event: NemesisEvent) -> None:
        if self.store_faults is not None:
            self.store_faults._torn_left += int(event.params.get("count", 1))

    def _apply_storage_slow(self, event: NemesisEvent) -> None:
        from dataclasses import replace

        if self.store_faults is None:
            return
        delay = float(event.params.get("delay_s", 0.1))
        self.store_faults.plan = replace(
            self.store_faults.plan, slow_fsync_s=delay
        )
        self.store_faults._slow_left += int(event.params.get("count", 1))

    def _apply_bug_double_execute(self, event: NemesisEvent) -> None:
        _, server = self.leader()
        server.arm_double_execution(int(event.params.get("count", 1)))

    # -- operational events (single topology) --------------------------------

    def _swap_server(self, new_server) -> None:
        old = self.servers["server"]
        self.servers["server"] = new_server
        new_server.execution_taps.append(self.recorder.execution_tap("server"))
        if self.store is not None:
            new_server.attach_checkpoint_health(self.store.write_latency)
        for name in self.client_names:
            for loopback in self.loopbacks[name]:
                loopback.server = new_server
        if not old.killed:
            old.kill()

    def _apply_drain_restore(self, event: NemesisEvent) -> None:
        from repro.cricket.checkpoint import restore_server

        old = self.servers["server"]
        if old.killed:
            return
        old.shutdown(drain=True)
        blob = old.drain_checkpoint
        new_server = _make_server(self.clock)
        if blob is not None:
            restore_server(new_server, blob)
        self._swap_server(new_server)

    def _apply_migrate(self, event: NemesisEvent) -> None:
        from repro.cricket.migration import (
            LoopbackMigrationChannel,
            MigrationSource,
            MigrationTarget,
        )

        old = self.servers["server"]
        if old.killed:
            return
        source = MigrationSource(old)
        target = MigrationTarget(_make_server(self.clock))
        channel = LoopbackMigrationChannel(target)
        try:
            source.start(channel)
            source.run_precopy(channel)
            source.stop_and_copy(channel)
            new_server = target.finalize()
        except Exception:
            # A doomed migration aborts; the source resumes serving.
            old.serving_paused = False
            return
        source.cutover()
        self._swap_server(new_server)


def _make_server(clock):
    from repro.cricket.server import CricketServer
    from repro.gpu.catalog import A100
    from repro.gpu.device import GpuDevice
    from repro.resilience.health import LatencySLO

    return CricketServer(
        [GpuDevice(A100, execute=True), GpuDevice(A100, execute=True)],
        clock=clock,
        brownout=True,
        checkpoint_slo=LatencySLO(target_p99_ns=int(50e6), min_samples=4),
    )


def _build_cluster(
    plan: SimulationPlan, recorder: HistoryRecorder, clock
) -> _Cluster:
    from repro.cricket.ckptstore import CheckpointStore, FileStorage
    from repro.cricket.client import CricketClient
    from repro.cricket.replication import (
        ReplicationLink,
        mutating_proc_numbers,
        promote_with_witness,
    )
    from repro.cricket.witness import LeadershipFence, Witness
    from repro.oncrpc.auth import client_token_auth
    from repro.resilience.failover import LoopbackEndpoint
    from repro.resilience.faults import (
        FaultPlan,
        FaultyEndpoint,
        FaultyStorage,
        PartitionPlan,
        PartitionState,
        SlowEndpoint,
        SlowFaultPlan,
        StorageFaultPlan,
    )
    from repro.resilience.retry import RetryPolicy

    cluster = _Cluster(plan, recorder, clock)
    cluster.client_names = [f"client{i}" for i in range(plan.clients)]
    retry = RetryPolicy(max_attempts=30, deadline_s=None)

    if plan.topology == "ha_pair":
        primary = _make_server(clock)
        standby = _make_server(clock)
        witness = Witness(clock, lease_s=plan.lease_s)
        state = PartitionState(PartitionPlan(), clock)
        witness.link_filter = state.link_filter()
        mutating = mutating_proc_numbers(primary.interface)
        primary_fence = LeadershipFence(
            primary, witness, name="primary",
            mutating_procs=mutating, peer_hint="standby",
        )
        standby_fence = LeadershipFence(
            standby, witness, name="standby",
            mutating_procs=mutating, peer_hint="primary",
        )
        primary_fence.lead()  # epoch 1
        link = ReplicationLink(
            primary, standby,
            reachability=state.reachability("primary", "standby"),
        )
        primary_fence.link = link
        cluster.servers = {"primary": primary, "standby": standby}
        cluster.state = state
        cluster.witness = witness
        cluster.fences = {"primary": primary_fence, "standby": standby_fence}
        cluster.link = link
        primary.execution_taps.append(recorder.execution_tap("primary"))
        standby.execution_taps.append(recorder.execution_tap("standby"))
        # Crash evidence for the checker: fires inside kill(), i.e. after
        # the doomed server's last execution and before failover traffic,
        # so uncovered acks are forgiven at exactly the right point.
        primary.on_kill = lambda: recorder.crash("primary")
        standby.on_kill = lambda: recorder.crash("standby")
        store_server = primary
        server_names = ("primary", "standby")
    else:
        server = _make_server(clock)
        cluster.servers = {"server": server}
        server.execution_taps.append(recorder.execution_tap("server"))
        store_server = server
        server_names = ("server",)

    # checkpoint store behind injectable storage (torn / slow-fsync events)
    faulty_storage = FaultyStorage(
        FileStorage(tempfile.mkdtemp(prefix="sim-ckpt-")),
        StorageFaultPlan(seed=plan.seed),
        clock=clock,
    )
    store = CheckpointStore(
        storage=faulty_storage, clock=clock, stats=store_server.server_stats
    )
    store_server.attach_checkpoint_health(store.write_latency)
    cluster.store = store
    cluster.store_faults = faulty_storage

    for index, cname in enumerate(cluster.client_names):
        loopbacks = []
        faulty_eps = []
        slow_eps = []
        endpoints = []
        for sname in server_names:
            on_connect = None
            if plan.topology == "ha_pair" and sname == "standby":
                def on_connect(
                    _ep,
                    _link=cluster.link,
                    _fence=cluster.fences["standby"],
                ):
                    promote_with_witness(_link, _fence)
            loopback = LoopbackEndpoint(
                cluster.servers[sname],
                name=sname,
                link=cluster.state,
                client_name=cname,
                on_connect=on_connect,
            )
            loopbacks.append(loopback)
            slow = SlowEndpoint(
                loopback,
                SlowFaultPlan(
                    base_delay_s=0.005,
                    jitter_s=0.002,
                    seed=plan.seed * 1000 + index,
                ),
                clock=clock,
                active=False,
            )
            slow_eps.append(slow)
            faulty = FaultyEndpoint(
                slow,
                FaultPlan(
                    drop_request_rate=0.2,
                    drop_reply_rate=0.2,
                    disconnect_rate=0.1,
                    duplicate_rate=0.1,
                    seed=plan.seed * 1000 + 500 + index,
                ),
                clock=clock,
                active=False,
            )
            faulty_eps.append(faulty)
            endpoints.append(faulty)
        client = CricketClient.failover(
            endpoints, clock=clock, retry_policy=retry
        )
        # Stable identity: the auto-generated uuid token would leak
        # process randomness into the server-edge history.
        client.stub.client.cred = client_token_auth(cname.encode())
        recorder.bind_identity(f"token:{cname.encode().hex()}", cname)
        cluster.clients.append(client)
        cluster.loopbacks[cname] = loopbacks
        cluster.faulty[cname] = faulty_eps
        cluster.slow[cname] = slow_eps
    return cluster


# -- the run ------------------------------------------------------------------


def run_simulation(
    plan: SimulationPlan, schedule: list[NemesisEvent] | None = None
) -> SimulationResult:
    """Execute one deterministic simulation run.

    With ``schedule=None`` the nemesis schedule is generated from the
    plan's seed; passing an explicit schedule (the shrinker does) reuses
    the identical workload stream, because the workload RNG derives from
    the seed independently of the nemesis draws.
    """
    from repro.net.simclock import SimClock

    nemesis_rng = random.Random((plan.seed << 4) ^ _NEMESIS_STREAM)
    workload_rng = random.Random((plan.seed << 4) ^ _WORKLOAD_STREAM)
    if schedule is None:
        schedule = generate_schedule(
            nemesis_rng,
            topology=plan.topology,
            events=plan.nemesis_events,
            clients=plan.clients,
            horizon_s=plan.horizon_s,
        )

    gap = plan.horizon_s / (plan.steps + 1)
    workload = [
        (
            round((i + 1) * gap, 9),
            workload_rng.randrange(plan.clients),
            workload_rng.random(),
            workload_rng.random(),
        )
        for i in range(plan.steps)
    ]

    clock = SimClock()
    recorder = HistoryRecorder(clock)
    cluster = _build_cluster(plan, recorder, clock)

    outcomes: dict[str, int] = {}
    applied: list[str] = []
    #: per-client view of live pointers (ptr -> last intended payload)
    views: list[dict[int, bytes]] = [dict() for _ in range(plan.clients)]
    pattern = 0

    def tally(outcome: str) -> None:
        outcomes[outcome] = outcomes.get(outcome, 0) + 1

    def epoch_of(client) -> int | None:
        try:
            value = client.leader_epoch
        except Exception:
            return None
        return int(value) if value else None

    def traced(cname: str, client, op: str, fn, **args):
        """Run one semantic op under history recording.

        Returns the op's value on success (``True`` for ``None``-valued
        successes) and ``None`` on any recorded failure.
        """
        op_id = recorder.invoke(cname, op, **args)
        rpc = client.stub.client
        # An ambiguous *attempt* (lost reply: the call may have executed)
        # can be followed by a typed refusal from a later attempt; the
        # final exception alone would then claim "provably not executed".
        # Track per-attempt ambiguity so the recorded event stays honest.
        attempt_ambiguous = False

        def on_attempt(_xid: int, _proc: int, exc: BaseException) -> None:
            nonlocal attempt_ambiguous
            if classify_outcome(exc)[1]:
                attempt_ambiguous = True

        rpc.attempt_observer = on_attempt
        try:
            value = fn()
        except Exception as exc:
            outcome, ambiguous = classify_outcome(exc)
            recorder.complete(
                op_id, cname, op, outcome,
                xid=rpc.last_xid,
                ambiguous=ambiguous or attempt_ambiguous,
                epoch=epoch_of(client),
            )
            tally(outcome)
            return None
        finally:
            rpc.attempt_observer = None
        recorder.complete(
            op_id, cname, op, OUTCOME_OK,
            xid=rpc.last_xid,
            value=value.hex() if isinstance(value, (bytes, bytearray)) else value,
            epoch=epoch_of(client),
        )
        tally(OUTCOME_OK)
        return value if value is not None else True

    def do_write(index: int) -> None:
        nonlocal pattern
        cname = cluster.client_names[index]
        client = cluster.clients[index]
        pattern = (pattern + 1) % 255
        payload = bytes([pattern + 1]) * min(plan.alloc_bytes, 256)
        ptr = traced(
            cname, client, "malloc",
            lambda: client.malloc(plan.alloc_bytes), size=plan.alloc_bytes,
        )
        if not isinstance(ptr, int):
            return
        views[index][ptr] = payload
        traced(
            cname, client, "h2d",
            lambda: client.memcpy_h2d(ptr, payload),
            ptr=ptr, data=payload.hex(),
        )

    def do_read(index: int, pick: float) -> None:
        cname = cluster.client_names[index]
        client = cluster.clients[index]
        ptrs = sorted(views[index])
        if not ptrs:
            do_write(index)
            return
        ptr = ptrs[int(pick * len(ptrs)) % len(ptrs)]
        size = min(plan.alloc_bytes, 256)
        traced(
            cname, client, "d2h",
            lambda: client.memcpy_d2h(ptr, size),
            ptr=ptr, size=size,
        )

    def do_free(index: int, pick: float) -> None:
        cname = cluster.client_names[index]
        client = cluster.clients[index]
        ptrs = sorted(views[index])
        if len(ptrs) < 2:
            do_write(index)
            return
        ptr = ptrs[int(pick * len(ptrs)) % len(ptrs)]
        result = traced(
            cname, client, "free", lambda: client.free(ptr), ptr=ptr
        )
        # Freed (ok) or maybe-freed (ambiguous): the workload must stop
        # touching the pointer -- the model moved it to limbo.  A typed
        # refusal provably did not free, so the pointer stays eligible.
        if result is not None or recorder.events[-1].ambiguous:
            views[index].pop(ptr, None)

    def do_checkpoint() -> None:
        name, server = cluster.leader()
        if not name or server.killed:
            return
        cluster.checkpoints_taken += 1
        try:
            cluster.store.save(server)
        except Exception:
            cluster.checkpoint_failures += 1

    def do_ping(index: int) -> None:
        cname = cluster.client_names[index]
        client = cluster.clients[index]
        traced(cname, client, "ping", lambda: client.ping())

    def run_step(index: int, op_r: float, pick_r: float) -> None:
        if op_r < 0.50:
            do_write(index)
        elif op_r < 0.75:
            do_read(index, pick_r)
        elif op_r < 0.87:
            do_free(index, pick_r)
        elif op_r < 0.93:
            do_checkpoint()
        else:
            do_ping(index)

    # -- merged virtual-time loop -------------------------------------------

    timeline: list[tuple[float, int, int, Any]] = []
    for seq, event in enumerate(schedule):
        timeline.append((event.at_s, 0, seq, event))
    for seq, step in enumerate(workload):
        timeline.append((step[0], 1, seq, step))
    # Nemesis events fire before workload steps at equal timestamps; the
    # (at_s, source, seq) key keeps the merge total and deterministic.
    timeline.sort(key=lambda entry: (entry[0], entry[1], entry[2]))

    for at_s, source, _, payload in timeline:
        target_ns = int(at_s * 1e9)
        if clock.now_ns < target_ns:
            clock.advance_to_ns(target_ns)
        cluster.heal_due(clock.now_ns / 1e9)
        if source == 0:
            applied.append(payload.kind)
            cluster.apply(payload)
        else:
            _, index, op_r, pick_r = payload
            run_step(index, op_r, pick_r)

    # -- heal, converge, audit ----------------------------------------------

    cluster.heal_all()
    clock.advance_s(max(plan.lease_s * 2, 0.5))

    # one converging write per client forces failover/reconnect to settle
    for index in range(plan.clients):
        do_write(index)

    final_name, final_server = cluster.leader()
    converged = bool(final_name)
    if plan.topology == "ha_pair" and final_name:
        fence = cluster.fences[final_name]
        converged = all(
            c.leader_epoch == fence.epoch
            and c.active_endpoint_name == final_name
            for c in cluster.clients
        )

    # Final read of every pointer each client still believes live: the
    # checker's read-your-writes property needs the evidence.
    for index in range(plan.clients):
        cname = cluster.client_names[index]
        client = cluster.clients[index]
        size = min(plan.alloc_bytes, 256)
        for ptr in sorted(views[index]):
            traced(
                cname, client, "d2h",
                lambda p=ptr: client.memcpy_d2h(p, size),
                ptr=ptr, size=size,
            )

    used = sum(d.allocator.used_bytes for d in final_server.devices)
    recorder.audit(final_name or "server", used)

    violations = HistoryChecker().check(recorder.events)
    return SimulationResult(
        plan=plan,
        schedule=list(schedule),
        violations=violations,
        fingerprint=recorder.fingerprint(),
        events=list(recorder.events),
        final_leader=final_name,
        converged=converged,
        outcomes=outcomes,
        applied=applied,
        counters=final_server.server_stats.as_dict(),
    )
