"""Client-edge history recording for deterministic simulation runs.

The recorder is the simulation's single source of truth: every semantic
operation a workload client performs becomes an ``invoke`` event at the
moment it is issued and a ``return`` event when it completes, stamped
with the virtual timestamp, the wire xid and a *typed* outcome --
``RPC_BUSY`` and ``RPC_NOT_LEADER`` sheds stay distinguishable from
ambiguous disconnects, because the checker must treat them completely
differently (a shed provably did not execute; a disconnect may have).
Server-side evidence rides in as ``execute`` events from
:attr:`repro.oncrpc.server.RpcServer.execution_taps`, one per *handler
execution* -- which is exactly what makes a double execution visible.

Raw xids come from a process-global counter, so two identical runs in
one process see different raw values; :meth:`HistoryRecorder.fingerprint`
therefore normalizes xids to per-client call ordinals (and server-side
identities to bound node names) before hashing.  Same ``(topology,
workload, seed)`` => same normalized history => same fingerprint,
byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.oncrpc.errors import (
    RpcBusyError,
    RpcCallExpired,
    RpcCancelled,
    RpcError,
    RpcNotLeaderError,
)

# -- typed outcomes -----------------------------------------------------------

#: the call completed and its reply decoded
OUTCOME_OK = "ok"
#: shed with RPC_BUSY (overload / brownout / migration pause): not executed
OUTCOME_BUSY = "busy"
#: shed with RPC_NOT_LEADER by a fenced non-leader: not executed there
OUTCOME_NOT_LEADER = "not_leader"
#: refused with CALL_EXPIRED before execution
OUTCOME_EXPIRED = "expired"
#: aborted with CALL_CANCELLED
OUTCOME_CANCELLED = "cancelled"
#: the server executed the call and returned a CUDA-level error
OUTCOME_CUDA_ERROR = "cuda_error"
#: transport-level loss (disconnect, timeout, retries exhausted): the
#: call *may or may not* have executed -- the checker's "maybe" set
OUTCOME_AMBIGUOUS = "ambiguous"

#: event kinds appearing in a history; ``crash`` marks a server process
#: dying abruptly, the point after which its acknowledged-but-never-
#: replicated effects may legitimately be lost (the sync -> async trade
#: the replication link makes deliberately)
EVENT_KINDS = ("invoke", "return", "execute", "audit", "crash")


def classify_outcome(exc: BaseException | None) -> tuple[str, bool]:
    """Map an exception from a client call to ``(outcome, ambiguous)``.

    ``ambiguous`` is True when the operation may have executed server-side
    even though the client saw a failure -- the property-checker must
    then accept either world.  Typed sheds are *not* ambiguous: the
    protocol guarantees a ``RPC_BUSY`` / ``RPC_NOT_LEADER`` /
    ``CALL_EXPIRED`` reply was produced instead of execution.
    """
    if exc is None:
        return OUTCOME_OK, False
    if isinstance(exc, RpcBusyError):
        return OUTCOME_BUSY, False
    if isinstance(exc, RpcNotLeaderError):
        return OUTCOME_NOT_LEADER, False
    if isinstance(exc, RpcCallExpired):
        return OUTCOME_EXPIRED, False
    if isinstance(exc, RpcCancelled):
        return OUTCOME_CANCELLED, False
    if type(exc).__name__ == "CudaError":
        # The server executed the handler and the device said no; checked
        # by name so this module never imports the Cricket/CUDA stack.
        return OUTCOME_CUDA_ERROR, False
    if isinstance(exc, RpcError):
        return OUTCOME_AMBIGUOUS, True
    return OUTCOME_AMBIGUOUS, True


@dataclass(frozen=True)
class HistoryEvent:
    """One entry of a simulation history.

    ``invoke``/``return`` pairs (linked by ``op_id``) are the client
    edge; ``execute`` events are the server edge; ``audit`` events carry
    end-of-run allocator totals for the byte accounting.  Fields not
    meaningful for a kind stay at their defaults so one flat record type
    serializes uniformly.
    """

    index: int
    t_ns: int
    kind: str
    node: str
    op: str = ""
    op_id: int = -1
    xid: int | None = None
    outcome: str | None = None
    ambiguous: bool = False
    args: dict[str, Any] = field(default_factory=dict)
    value: Any = None
    identity: str | None = None
    proc: int | None = None
    stat: int | None = None
    replica: bool = False
    epoch: int | None = None

    def to_jsonable(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "index": self.index,
            "t_ns": self.t_ns,
            "kind": self.kind,
            "node": self.node,
        }
        if self.op:
            out["op"] = self.op
        if self.op_id >= 0:
            out["op_id"] = self.op_id
        for key in ("xid", "outcome", "identity", "proc", "stat", "epoch"):
            val = getattr(self, key)
            if val is not None:
                out[key] = val
        if self.ambiguous:
            out["ambiguous"] = True
        if self.replica:
            out["replica"] = True
        if self.args:
            out["args"] = dict(self.args)
        if self.value is not None:
            out["value"] = self.value
        return out


class HistoryRecorder:
    """Accumulates :class:`HistoryEvent` records over virtual time."""

    def __init__(self, clock) -> None:
        self.clock = clock
        self.events: list[HistoryEvent] = []
        self._next_op = 0
        #: server identity string -> stable node name (see bind_identity)
        self._identity_nodes: dict[str, str] = {}

    # -- client edge --------------------------------------------------------

    def invoke(self, node: str, op: str, **args: Any) -> int:
        """Record the start of a client operation; returns its op_id."""
        op_id = self._next_op
        self._next_op += 1
        self._append(
            kind="invoke", node=node, op=op, op_id=op_id, args=dict(args)
        )
        return op_id

    def complete(
        self,
        op_id: int,
        node: str,
        op: str,
        outcome: str,
        *,
        xid: int | None = None,
        value: Any = None,
        ambiguous: bool = False,
        epoch: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record the completion of operation ``op_id``."""
        self._append(
            kind="return",
            node=node,
            op=op,
            op_id=op_id,
            xid=xid,
            outcome=outcome,
            value=value,
            ambiguous=ambiguous,
            epoch=epoch,
            args=dict(args) if args else {},
        )

    # -- server edge --------------------------------------------------------

    def bind_identity(self, identity: str, node: str) -> None:
        """Declare that server-side ``identity`` is client ``node``."""
        self._identity_nodes[identity] = node

    def execution_tap(self, server_node: str):
        """Build a tap for ``RpcServer.execution_taps`` feeding this history."""

        def tap(
            identity: str, xid: int, proc: int, stat: int, replica: bool
        ) -> None:
            self._append(
                kind="execute",
                node=server_node,
                identity=identity,
                xid=xid,
                proc=proc,
                stat=stat,
                replica=replica,
            )

        return tap

    def crash(self, server_node: str) -> None:
        """Record the abrupt death of ``server_node``.

        Wired to :attr:`repro.oncrpc.server.RpcServer.on_kill` so the
        event lands exactly when the process dies -- after the doomed
        server's last execution, before any failover traffic.
        """
        self._append(kind="crash", node=server_node)

    def audit(self, server_node: str, used_bytes: int, alignment: int = 256) -> None:
        """Record an end-of-run allocator audit for ``server_node``."""
        self._append(
            kind="audit",
            node=server_node,
            args={"used_bytes": used_bytes, "alignment": alignment},
        )

    # -- serialization ------------------------------------------------------

    def _append(self, **fields: Any) -> None:
        self.events.append(
            HistoryEvent(
                index=len(self.events), t_ns=self.clock.now_ns, **fields
            )
        )

    def normalized(self) -> list[dict[str, Any]]:
        """History as JSON-safe dicts with process-global state removed.

        Raw xids (from the process-wide counter) are rewritten to
        per-client call ordinals and execute-event identities to their
        bound node names, so two runs of the same seed in one process
        serialize identically.
        """
        # First pass: per client node, map raw xid -> issue ordinal.
        norm: dict[tuple[str, int], int] = {}
        counters: dict[str, int] = {}
        for event in self.events:
            if event.kind == "return" and event.xid is not None:
                key = (event.node, event.xid)
                if key not in norm:
                    counters[event.node] = counters.get(event.node, 0) + 1
                    norm[key] = counters[event.node]
        out = []
        for event in self.events:
            record = event.to_jsonable()
            if event.kind == "return" and event.xid is not None:
                record["xid"] = norm[(event.node, event.xid)]
            elif event.kind == "execute":
                node = self._identity_nodes.get(event.identity or "")
                if node is not None:
                    record["identity"] = node
                if (
                    node is not None
                    and event.xid is not None
                    and (node, event.xid) in norm
                ):
                    record["xid"] = norm[(node, event.xid)]
                elif event.xid is not None:
                    # Executed but never completed client-side (probe
                    # traffic, lost reply, run ended): normalize by
                    # dropping the raw value, keeping only its presence.
                    record["xid"] = -1
            out.append(record)
        return out

    def fingerprint(self) -> str:
        """SHA-256 over the normalized history -- the reproducibility bit."""
        payload = json.dumps(
            self.normalized(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()
