"""Composed nemesis: seeded schedule generation over every fault model.

``generate_schedule`` draws a whole adversary campaign -- kinds, firing
times and parameters -- from the *caller's* RNG, up front, as pure
data.  All randomness is consumed before the run starts: by the time
the first virtual-time event fires, the schedule (and the workload
drawn after it from the same master RNG) is frozen, which is the
determinism contract the shrinker depends on.
"""

from __future__ import annotations

import random

from repro.resilience.simulation.events import (
    BUG_DOUBLE_EXECUTE,
    DRAIN_RESTORE,
    GPU_FAULT,
    GPU_THROTTLE,
    HA_PAIR_KINDS,
    KILL_PRIMARY,
    LIMP_ENDPOINT,
    MIGRATE,
    PARTITION,
    PARTITION_SHAPES,
    SINGLE_KINDS,
    STORAGE_SLOW,
    STORAGE_TORN,
    TRANSPORT_FAULTS,
    NemesisEvent,
)


def _draw_params(
    rng: random.Random, kind: str, *, clients: int, horizon_s: float
) -> dict:
    """Draw one event's parameters.  Fixed draw order per kind."""
    if kind == PARTITION:
        return {
            "shape": rng.choice(PARTITION_SHAPES),
            "duration_s": round(rng.uniform(0.5, 0.12 * horizon_s + 0.5), 6),
        }
    if kind == KILL_PRIMARY:
        return {"dangerous": rng.random() < 0.5}
    if kind == GPU_FAULT:
        return {"fault": "ecc" if rng.random() < 0.5 else "context"}
    if kind == GPU_THROTTLE:
        return {"severity": round(rng.uniform(2.0, 6.0), 3)}
    if kind == TRANSPORT_FAULTS:
        return {
            "client": rng.randrange(clients),
            "duration_s": round(rng.uniform(0.2, 0.06 * horizon_s + 0.2), 6),
        }
    if kind == LIMP_ENDPOINT:
        return {
            "client": rng.randrange(clients),
            "duration_s": round(rng.uniform(0.2, 0.06 * horizon_s + 0.2), 6),
        }
    if kind == STORAGE_TORN:
        return {"count": rng.randrange(1, 3)}
    if kind == STORAGE_SLOW:
        return {"count": rng.randrange(1, 4), "delay_s": round(rng.uniform(0.05, 0.4), 6)}
    if kind in (DRAIN_RESTORE, MIGRATE):
        return {}
    if kind == BUG_DOUBLE_EXECUTE:
        return {"count": 1}
    raise ValueError(f"unknown nemesis event kind {kind!r}")


def generate_schedule(
    rng: random.Random,
    *,
    topology: str,
    events: int,
    clients: int,
    horizon_s: float,
) -> list[NemesisEvent]:
    """Draw ``events`` nemesis events for ``topology`` over ``horizon_s``.

    Every draw comes from ``rng`` in a fixed order (time, kind, params
    per event), so the schedule is a pure function of the RNG state --
    and the caller can keep drawing the workload from the same RNG
    afterwards without the two streams interleaving.
    """
    kinds = {"ha_pair": HA_PAIR_KINDS, "single": SINGLE_KINDS}[topology]
    drawn = []
    for _ in range(events):
        at_s = round(rng.uniform(0.05 * horizon_s, 0.85 * horizon_s), 6)
        kind = rng.choice(kinds)
        params = _draw_params(rng, kind, clients=clients, horizon_s=horizon_s)
        drawn.append(NemesisEvent(at_s=at_s, kind=kind, params=params))
    drawn.sort(key=lambda e: e.at_s)
    return drawn
