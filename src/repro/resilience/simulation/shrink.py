"""Fault-schedule shrinking: delta-debug a failing nemesis schedule.

When a seeded simulation run ends with checker violations, the full
nemesis schedule is rarely the story -- most of its events are noise.
:func:`shrink_schedule` applies ddmin (Zeller's delta debugging) over
the event *subsequence* lattice: re-running the simulation with a
candidate subset is cheap and exact, because the workload stream derives
from the seed independently of the schedule, so dropping nemesis events
never shifts a single workload draw.

The result is a 1-minimal subsequence: removing any one chunk at the
final granularity no longer reproduces the violation.  The trace helpers
persist ``(plan, shrunk schedule, expected verdicts, fingerprint)`` as
JSON; :func:`replay_trace` re-runs it and verifies the violation
reappears -- byte-for-byte, via the history fingerprint.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable

from repro.resilience.simulation.events import (
    NemesisEvent,
    events_from_jsonable,
    events_to_jsonable,
)
from repro.resilience.simulation.harness import (
    SimulationPlan,
    SimulationResult,
    run_simulation,
)

#: trace file format version
TRACE_VERSION = 1


def _reproduces(
    plan: SimulationPlan,
    candidate: list[NemesisEvent],
    kinds: set[str] | None,
) -> SimulationResult | None:
    """Run the candidate schedule; return the result if it still fails."""
    result = run_simulation(plan, schedule=candidate)
    if not result.violations:
        return None
    if kinds is not None and not (set(result.violation_kinds()) & kinds):
        return None
    return result


def shrink_schedule(
    plan: SimulationPlan,
    schedule: list[NemesisEvent],
    *,
    kinds: Iterable[str] | None = None,
    max_runs: int = 200,
    on_progress: Callable[[int, int], None] | None = None,
) -> tuple[list[NemesisEvent], SimulationResult]:
    """ddmin the schedule to a 1-minimal violating subsequence.

    ``kinds`` restricts what counts as "still failing" to those violation
    kinds (default: any violation).  ``max_runs`` bounds the number of
    simulation re-runs; the best subsequence found so far is returned if
    the budget runs out.  Returns ``(minimal schedule, its result)``.

    Raises ``ValueError`` if the full schedule does not reproduce any
    qualifying violation -- shrinking needs a failing input to start.
    """
    kind_set = set(kinds) if kinds is not None else None
    runs = 0

    def test(candidate: list[NemesisEvent]) -> SimulationResult | None:
        nonlocal runs
        runs += 1
        if on_progress is not None:
            on_progress(runs, len(candidate))
        return _reproduces(plan, candidate, kind_set)

    best_result = test(list(schedule))
    if best_result is None:
        raise ValueError(
            "full schedule does not reproduce a qualifying violation; "
            "nothing to shrink"
        )
    current = list(schedule)

    # Classic ddmin over subsequences: try removing chunks, doubling the
    # granularity when no chunk can be removed, until granularity
    # exceeds the sequence length.
    granularity = 2
    while len(current) >= 2 and runs < max_runs:
        chunk = max(1, len(current) // granularity)
        removed_any = False
        start = 0
        while start < len(current) and runs < max_runs:
            candidate = current[:start] + current[start + chunk:]
            if candidate:
                result = test(candidate)
                if result is not None:
                    current = candidate
                    best_result = result
                    granularity = max(granularity - 1, 2)
                    removed_any = True
                    # re-scan from the front at the same granularity
                    start = 0
                    continue
            start += chunk
        if not removed_any:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, best_result


# -- replayable traces --------------------------------------------------------


def trace_jsonable(
    plan: SimulationPlan,
    schedule: list[NemesisEvent],
    result: SimulationResult,
) -> dict[str, Any]:
    """The JSON body persisted for one shrunk repro trace."""
    return {
        "version": TRACE_VERSION,
        "plan": plan.to_jsonable(),
        "schedule": events_to_jsonable(schedule),
        "violations": [v.to_jsonable() for v in result.violations],
        "violation_kinds": list(result.violation_kinds()),
        "fingerprint": result.fingerprint,
        "applied": list(result.applied),
        "outcomes": dict(result.outcomes),
    }


def save_trace(
    path: str,
    plan: SimulationPlan,
    schedule: list[NemesisEvent],
    result: SimulationResult,
) -> None:
    """Persist a shrunk failing schedule as a replayable JSON trace."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_jsonable(plan, schedule, result), fh, indent=2)
        fh.write("\n")


def load_trace(path: str) -> tuple[SimulationPlan, list[NemesisEvent], dict[str, Any]]:
    """Load a trace: ``(plan, schedule, raw trace dict)``."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("version") != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {data.get('version')!r}")
    plan = SimulationPlan.from_jsonable(data["plan"])
    schedule = events_from_jsonable(data["schedule"])
    return plan, schedule, data


def replay_trace(path: str) -> SimulationResult:
    """Re-run a saved trace and verify it reproduces, byte-for-byte.

    Raises ``AssertionError`` if the replay's violations or history
    fingerprint deviate from what the trace recorded -- either means the
    run is no longer deterministic or the system under test changed.
    """
    plan, schedule, data = load_trace(path)
    result = run_simulation(plan, schedule=schedule)
    want_kinds = tuple(sorted(data["violation_kinds"]))
    got_kinds = result.violation_kinds()
    if got_kinds != want_kinds:
        raise AssertionError(
            f"trace replay diverged: expected violations {want_kinds}, "
            f"got {got_kinds}"
        )
    if result.fingerprint != data["fingerprint"]:
        raise AssertionError(
            "trace replay diverged: history fingerprint "
            f"{result.fingerprint[:16]}... != recorded "
            f"{data['fingerprint'][:16]}..."
        )
    return result
