"""Counters for retries, reconnections and recoveries.

One :class:`ResilienceStats` instance is shared by a client's retry loop,
its (optional) fault-injecting transport and its reconnecting transport, so
a single object answers "what did resilience cost this workload?".  The
tracer (:mod:`repro.core.tracing`) renders these counters in its summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ResilienceStats:
    """Mutable counter set describing one client's resilience activity."""

    #: retransmissions performed by the retry loop (excludes first attempts)
    retries: int = 0
    #: failures classified as timeouts (:class:`~repro.oncrpc.errors.RpcTimeoutError`)
    timeouts: int = 0
    #: successful transport reconnections
    reconnects: int = 0
    #: full session recoveries (:meth:`~repro.cricket.client.CricketClient.recover`)
    recoveries: int = 0
    #: replies discarded because their xid matched no outstanding call
    stale_replies_discarded: int = 0
    #: calls abandoned because the virtual-time deadline budget ran out
    deadlines_exceeded: int = 0
    #: calls that exhausted every retry attempt
    retries_exhausted: int = 0
    #: endpoint failovers performed by :class:`~repro.resilience.failover.FailoverTransport`
    failovers: int = 0
    #: records rejected client-side because their CRC32 trailer mismatched
    crc_rejected: int = 0
    #: calls shed by the server with RPC_BUSY (each one triggers backoff)
    busy_rejections: int = 0
    #: calls refused with RPC_NOT_LEADER by a fenced server
    not_leader_rejections: int = 0
    #: endpoint rotations triggered by a not-leader refusal or redirect
    leader_redirects: int = 0
    #: round-trip time of the most recent reconnect probe (gauge, ns)
    probe_rtt_last_ns: int = 0
    #: probe successes whose RTT exceeded the breaker's slow threshold
    slow_probes: int = 0
    #: hedged health-probe rounds raced across all endpoints
    hedged_probes: int = 0
    #: endpoints ejected from rotation as statistical latency outliers
    endpoints_ejected: int = 0
    #: ejected endpoints re-admitted on probation after the hold expired
    endpoints_readmitted: int = 0
    #: faults injected by kind (filled by :class:`FaultInjectingTransport`)
    faults_injected: dict[str, int] = field(default_factory=dict)

    def note_fault(self, kind: str) -> None:
        """Record one injected fault of ``kind``."""
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1

    @property
    def total_faults(self) -> int:
        """Total faults injected across all kinds."""
        return sum(self.faults_injected.values())

    def as_dict(self) -> dict[str, int]:
        """Flat counter mapping (fault kinds prefixed ``fault.``)."""
        out = {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "reconnects": self.reconnects,
            "recoveries": self.recoveries,
            "stale_replies_discarded": self.stale_replies_discarded,
            "deadlines_exceeded": self.deadlines_exceeded,
            "retries_exhausted": self.retries_exhausted,
            "failovers": self.failovers,
            "crc_rejected": self.crc_rejected,
            "busy_rejections": self.busy_rejections,
            "not_leader_rejections": self.not_leader_rejections,
            "leader_redirects": self.leader_redirects,
            "probe_rtt_last_ns": self.probe_rtt_last_ns,
            "slow_probes": self.slow_probes,
            "hedged_probes": self.hedged_probes,
            "endpoints_ejected": self.endpoints_ejected,
            "endpoints_readmitted": self.endpoints_readmitted,
        }
        for kind, count in sorted(self.faults_injected.items()):
            out[f"fault.{kind}"] = count
        return out

    def reset(self) -> None:
        """Zero every counter (between experiment repetitions)."""
        self.retries = 0
        self.timeouts = 0
        self.reconnects = 0
        self.recoveries = 0
        self.stale_replies_discarded = 0
        self.deadlines_exceeded = 0
        self.retries_exhausted = 0
        self.failovers = 0
        self.crc_rejected = 0
        self.busy_rejections = 0
        self.not_leader_rejections = 0
        self.leader_redirects = 0
        self.probe_rtt_last_ns = 0
        self.slow_probes = 0
        self.hedged_probes = 0
        self.endpoints_ejected = 0
        self.endpoints_readmitted = 0
        self.faults_injected.clear()


@dataclass
class ServerStats:
    """Server-side counterpart of :class:`ResilienceStats`.

    One instance is shared by an :class:`~repro.oncrpc.server.RpcServer`
    (reply-cache behaviour) and its
    :class:`~repro.cricket.sessions.SessionManager` (session lifecycle and
    resource governance), so the chaos harness and the tracer see one
    coherent view of what the server did on behalf of all clients.
    Counters are prefixed ``server.`` in :meth:`as_dict` so they sit next
    to the client-side counters in a tracer summary without colliding.
    """

    #: retransmitted calls answered from the at-most-once reply cache
    reply_cache_hits: int = 0
    #: cache entries evicted by the entry-count or byte budget
    reply_cache_evictions: int = 0
    #: bytes currently pinned by the reply cache (gauge, not a counter)
    reply_cache_bytes: int = 0
    #: sessions admitted (first call of a new client identity)
    sessions_opened: int = 0
    #: leases that expired, moving the session to the orphaned state
    sessions_expired: int = 0
    #: orphaned sessions whose grace period lapsed; ledger freed
    sessions_reclaimed: int = 0
    #: orphaned sessions reattached by a returning client within grace
    sessions_reattached: int = 0
    #: device bytes returned to the allocator by orphan reclamation
    bytes_reclaimed: int = 0
    #: new sessions refused (capacity reached or server draining)
    admission_denied: int = 0
    #: allocations refused by the per-client device-memory quota
    quota_denied: int = 0
    #: graceful drains that ran to completion
    drains_completed: int = 0
    #: state-mutating RPC records shipped to a standby (primary side)
    replication_ops_shipped: int = 0
    #: op-log records applied by a standby (standby side)
    replication_ops_applied: int = 0
    #: full checkpoint syncs sent to a standby (initial attach + resyncs)
    replication_full_syncs: int = 0
    #: primary_seq - applied_seq at the last ship (gauge; bounded by the link)
    replication_lag: int = 0
    #: standbys promoted to primary after a failure
    standby_promotions: int = 0
    #: sessions migrated off a faulted GPU onto a healthy spare
    device_failovers: int = 0
    #: records rejected server-side because their CRC32 trailer mismatched
    crc_rejected: int = 0
    #: calls shed with RPC_BUSY by queue bound, policy or concurrency limit
    overload_shed: int = 0
    #: calls shed specifically by a per-client token-bucket refusal
    rate_limited: int = 0
    #: calls refused/dropped because their deadline expired before execution
    deadline_expired_in_queue: int = 0
    #: calls whose deadline expired *while executing* (ran for nobody)
    deadline_expired_in_execution: int = 0
    #: queued calls aborted by rpc_cancel before execution started
    cancelled_in_queue: int = 0
    #: in-flight calls that observed their cancel token at a safe point
    cancelled_in_flight: int = 0
    #: high-water mark of the overload queue depth (gauge)
    queue_peak_depth: int = 0
    #: data-channel stripes that hit the slow-reader throttle window
    slow_readers_throttled: int = 0
    #: data-channel peers disconnected for persistently not draining
    slow_readers_disconnected: int = 0
    #: data-channel writes refused because staging memory was exhausted
    data_backpressure_rejected: int = 0
    #: calls shed with RPC_BUSY while serving was paused (stop-and-copy)
    paused_rejections: int = 0
    #: checkpoint generations written (full + delta)
    checkpoint_generations_written: int = 0
    #: delta generations among those (the rest are fulls)
    checkpoint_deltas_written: int = 0
    #: container bytes written across all generations
    checkpoint_bytes_written: int = 0
    #: corrupt/torn generations skipped while falling back to an older one
    checkpoint_fallbacks: int = 0
    #: pre-copy rounds driven across all migrations
    migration_rounds: int = 0
    #: migration chunks shipped (first transmissions)
    migration_chunks_sent: int = 0
    #: migration chunks re-shipped after a disconnect resume or CRC NAK
    migration_chunks_resent: int = 0
    #: duplicate chunks the receiver de-duplicated (idempotent redelivery)
    migration_chunks_duplicate: int = 0
    #: times a migration resumed from its cursor instead of restarting
    migration_resumes: int = 0
    #: virtual nanoseconds spent paused in stop-and-copy windows
    migration_pause_ns: int = 0
    #: migrations that reached cutover
    migrations_completed: int = 0
    #: migrations aborted with the source left serving
    migrations_aborted: int = 0
    #: sanitizer: out-of-bounds writes detected (sticky context poison)
    sanitizer_oob_writes: int = 0
    #: sanitizer: out-of-bounds reads detected (sticky context poison)
    sanitizer_oob_reads: int = 0
    #: sanitizer: accesses to freed (quarantined) memory detected
    sanitizer_use_after_free: int = 0
    #: sanitizer: double frees caught by the quarantine
    sanitizer_double_frees: int = 0
    #: sanitizer: redzone canaries found corrupted by wild device writes
    sanitizer_redzone_hits: int = 0
    #: leaked allocations reported (with sites) during ledger release
    sanitizer_leaks_reported: int = 0
    #: streams flagged hung by the kernel watchdog and handled by the ladder
    watchdog_hangs: int = 0
    #: ladder rung 1: hung kernels cancelled cooperatively
    ladder_cooperative_cancels: int = 0
    #: ladder rung 2: hard-hung streams aborted
    ladder_stream_aborts: int = 0
    #: ladder rung 3: contexts reset (culprit-only device state)
    ladder_context_resets: int = 0
    #: ladder rung 4: devices failed over to a spare to protect co-tenants
    ladder_device_failovers: int = 0
    #: ladder rung 5: culprit sessions reclaimed to salvage the device
    ladder_session_reclaims: int = 0
    #: leadership leases acquired from the witness (epoch bumps)
    fencing_leases_acquired: int = 0
    #: leadership leases renewed before expiry (same epoch)
    fencing_leases_renewed: int = 0
    #: leases that expired without renewal (witness unreachable or refused)
    fencing_leases_expired: int = 0
    #: times this server fenced itself off from mutations
    fencing_self_fences: int = 0
    #: mutating calls refused with RPC_NOT_LEADER while fenced
    fencing_not_leader_sheds: int = 0
    #: op-log ships rejected because they carried a stale epoch
    fencing_stale_epoch_rejections: int = 0
    #: current leadership epoch known to this server (gauge)
    fencing_epoch: int = 0
    #: times the server entered brownout (stage 0 -> degraded)
    brownout_entries: int = 0
    #: times the server fully exited brownout (stage -> 0)
    brownout_exits: int = 0
    #: calls shed with RPC_BUSY specifically by brownout staging
    brownout_sheds: int = 0
    #: sanitizer sweeps skipped because the server was in brownout
    sweeps_suspended: int = 0
    #: sync replication links demoted to async-lagged for limping
    replication_demotions: int = 0
    #: ladder rung 0: degraded devices preemptively failed over to a spare
    ladder_preemptive_failovers: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat counter mapping, ``server.``-prefixed for tracer merging."""
        return {
            "server.reply_cache_hits": self.reply_cache_hits,
            "server.reply_cache_evictions": self.reply_cache_evictions,
            "server.reply_cache_bytes": self.reply_cache_bytes,
            "server.sessions_opened": self.sessions_opened,
            "server.sessions_expired": self.sessions_expired,
            "server.sessions_reclaimed": self.sessions_reclaimed,
            "server.sessions_reattached": self.sessions_reattached,
            "server.bytes_reclaimed": self.bytes_reclaimed,
            "server.admission_denied": self.admission_denied,
            "server.quota_denied": self.quota_denied,
            "server.drains_completed": self.drains_completed,
            "server.replication_ops_shipped": self.replication_ops_shipped,
            "server.replication_ops_applied": self.replication_ops_applied,
            "server.replication_full_syncs": self.replication_full_syncs,
            "server.replication_lag": self.replication_lag,
            "server.standby_promotions": self.standby_promotions,
            "server.device_failovers": self.device_failovers,
            "server.crc_rejected": self.crc_rejected,
            "server.overload_shed": self.overload_shed,
            "server.rate_limited": self.rate_limited,
            "server.deadline_expired_in_queue": self.deadline_expired_in_queue,
            "server.deadline_expired_in_execution": self.deadline_expired_in_execution,
            "server.cancelled_in_queue": self.cancelled_in_queue,
            "server.cancelled_in_flight": self.cancelled_in_flight,
            "server.queue_peak_depth": self.queue_peak_depth,
            "server.slow_readers_throttled": self.slow_readers_throttled,
            "server.slow_readers_disconnected": self.slow_readers_disconnected,
            "server.data_backpressure_rejected": self.data_backpressure_rejected,
            "server.paused_rejections": self.paused_rejections,
            "server.checkpoint_generations_written": self.checkpoint_generations_written,
            "server.checkpoint_deltas_written": self.checkpoint_deltas_written,
            "server.checkpoint_bytes_written": self.checkpoint_bytes_written,
            "server.checkpoint_fallbacks": self.checkpoint_fallbacks,
            "server.migration_rounds": self.migration_rounds,
            "server.migration_chunks_sent": self.migration_chunks_sent,
            "server.migration_chunks_resent": self.migration_chunks_resent,
            "server.migration_chunks_duplicate": self.migration_chunks_duplicate,
            "server.migration_resumes": self.migration_resumes,
            "server.migration_pause_ns": self.migration_pause_ns,
            "server.migrations_completed": self.migrations_completed,
            "server.migrations_aborted": self.migrations_aborted,
            "server.sanitizer_oob_writes": self.sanitizer_oob_writes,
            "server.sanitizer_oob_reads": self.sanitizer_oob_reads,
            "server.sanitizer_use_after_free": self.sanitizer_use_after_free,
            "server.sanitizer_double_frees": self.sanitizer_double_frees,
            "server.sanitizer_redzone_hits": self.sanitizer_redzone_hits,
            "server.sanitizer_leaks_reported": self.sanitizer_leaks_reported,
            "server.watchdog_hangs": self.watchdog_hangs,
            "server.ladder_cooperative_cancels": self.ladder_cooperative_cancels,
            "server.ladder_stream_aborts": self.ladder_stream_aborts,
            "server.ladder_context_resets": self.ladder_context_resets,
            "server.ladder_device_failovers": self.ladder_device_failovers,
            "server.ladder_session_reclaims": self.ladder_session_reclaims,
            "server.fencing_leases_acquired": self.fencing_leases_acquired,
            "server.fencing_leases_renewed": self.fencing_leases_renewed,
            "server.fencing_leases_expired": self.fencing_leases_expired,
            "server.fencing_self_fences": self.fencing_self_fences,
            "server.fencing_not_leader_sheds": self.fencing_not_leader_sheds,
            "server.fencing_stale_epoch_rejections": (
                self.fencing_stale_epoch_rejections
            ),
            "server.fencing_epoch": self.fencing_epoch,
            "server.brownout_entries": self.brownout_entries,
            "server.brownout_exits": self.brownout_exits,
            "server.brownout_sheds": self.brownout_sheds,
            "server.sweeps_suspended": self.sweeps_suspended,
            "server.replication_demotions": self.replication_demotions,
            "server.ladder_preemptive_failovers": self.ladder_preemptive_failovers,
        }

    def reset(self) -> None:
        """Zero every counter (between experiment repetitions)."""
        self.reply_cache_hits = 0
        self.reply_cache_evictions = 0
        self.reply_cache_bytes = 0
        self.sessions_opened = 0
        self.sessions_expired = 0
        self.sessions_reclaimed = 0
        self.sessions_reattached = 0
        self.bytes_reclaimed = 0
        self.admission_denied = 0
        self.quota_denied = 0
        self.drains_completed = 0
        self.replication_ops_shipped = 0
        self.replication_ops_applied = 0
        self.replication_full_syncs = 0
        self.replication_lag = 0
        self.standby_promotions = 0
        self.device_failovers = 0
        self.crc_rejected = 0
        self.overload_shed = 0
        self.rate_limited = 0
        self.deadline_expired_in_queue = 0
        self.deadline_expired_in_execution = 0
        self.cancelled_in_queue = 0
        self.cancelled_in_flight = 0
        self.queue_peak_depth = 0
        self.slow_readers_throttled = 0
        self.slow_readers_disconnected = 0
        self.data_backpressure_rejected = 0
        self.paused_rejections = 0
        self.checkpoint_generations_written = 0
        self.checkpoint_deltas_written = 0
        self.checkpoint_bytes_written = 0
        self.checkpoint_fallbacks = 0
        self.migration_rounds = 0
        self.migration_chunks_sent = 0
        self.migration_chunks_resent = 0
        self.migration_chunks_duplicate = 0
        self.migration_resumes = 0
        self.migration_pause_ns = 0
        self.migrations_completed = 0
        self.migrations_aborted = 0
        self.sanitizer_oob_writes = 0
        self.sanitizer_oob_reads = 0
        self.sanitizer_use_after_free = 0
        self.sanitizer_double_frees = 0
        self.sanitizer_redzone_hits = 0
        self.sanitizer_leaks_reported = 0
        self.watchdog_hangs = 0
        self.ladder_cooperative_cancels = 0
        self.ladder_stream_aborts = 0
        self.ladder_context_resets = 0
        self.ladder_device_failovers = 0
        self.ladder_session_reclaims = 0
        self.fencing_leases_acquired = 0
        self.fencing_leases_renewed = 0
        self.fencing_leases_expired = 0
        self.fencing_self_fences = 0
        self.fencing_not_leader_sheds = 0
        self.fencing_stale_epoch_rejections = 0
        self.fencing_epoch = 0
        self.brownout_entries = 0
        self.brownout_exits = 0
        self.brownout_sheds = 0
        self.sweeps_suspended = 0
        self.replication_demotions = 0
        self.ladder_preemptive_failovers = 0
