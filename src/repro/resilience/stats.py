"""Counters for retries, reconnections and recoveries.

One :class:`ResilienceStats` instance is shared by a client's retry loop,
its (optional) fault-injecting transport and its reconnecting transport, so
a single object answers "what did resilience cost this workload?".  The
tracer (:mod:`repro.core.tracing`) renders these counters in its summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ResilienceStats:
    """Mutable counter set describing one client's resilience activity."""

    #: retransmissions performed by the retry loop (excludes first attempts)
    retries: int = 0
    #: failures classified as timeouts (:class:`~repro.oncrpc.errors.RpcTimeoutError`)
    timeouts: int = 0
    #: successful transport reconnections
    reconnects: int = 0
    #: full session recoveries (:meth:`~repro.cricket.client.CricketClient.recover`)
    recoveries: int = 0
    #: replies discarded because their xid matched no outstanding call
    stale_replies_discarded: int = 0
    #: calls abandoned because the virtual-time deadline budget ran out
    deadlines_exceeded: int = 0
    #: calls that exhausted every retry attempt
    retries_exhausted: int = 0
    #: faults injected by kind (filled by :class:`FaultInjectingTransport`)
    faults_injected: dict[str, int] = field(default_factory=dict)

    def note_fault(self, kind: str) -> None:
        """Record one injected fault of ``kind``."""
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1

    @property
    def total_faults(self) -> int:
        """Total faults injected across all kinds."""
        return sum(self.faults_injected.values())

    def as_dict(self) -> dict[str, int]:
        """Flat counter mapping (fault kinds prefixed ``fault.``)."""
        out = {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "reconnects": self.reconnects,
            "recoveries": self.recoveries,
            "stale_replies_discarded": self.stale_replies_discarded,
            "deadlines_exceeded": self.deadlines_exceeded,
            "retries_exhausted": self.retries_exhausted,
        }
        for kind, count in sorted(self.faults_injected.items()):
            out[f"fault.{kind}"] = count
        return out

    def reset(self) -> None:
        """Zero every counter (between experiment repetitions)."""
        self.retries = 0
        self.timeouts = 0
        self.reconnects = 0
        self.recoveries = 0
        self.stale_replies_discarded = 0
        self.deadlines_exceeded = 0
        self.retries_exhausted = 0
        self.faults_injected.clear()
