"""RPCL (Remote Procedure Call Language) compiler.

The Python analogue of RPC-Lib's build-time code generation: parse an RPCL
interface specification (the same language ``rpcgen`` consumes and Cricket's
``cpu_rpc_prot.x`` is written in) and produce callable client stubs and
server dispatch tables.

Pipeline::

    source (.x text)
      -> lexer  (repro.rpcl.lexer)
      -> parser (repro.rpcl.parser)    -> AST (repro.rpcl.ast)
      -> compiler (repro.rpcl.compiler) -> XDR codecs + signatures
      -> stubgen (repro.rpcl.stubgen)   -> dynamic ClientStub / server table
      -> codegen (repro.rpcl.codegen)   -> standalone Python source (rpcgen)
"""

from repro.rpcl.codegen import generate_module
from repro.rpcl.compiler import ProcedureSignature, SpecCompiler
from repro.rpcl.errors import RpclError, RpclSemanticError, RpclSyntaxError
from repro.rpcl.parser import parse
from repro.rpcl.stubgen import ClientStub, ProgramInterface, bind_client

__all__ = [
    "parse",
    "generate_module",
    "SpecCompiler",
    "ProcedureSignature",
    "ProgramInterface",
    "ClientStub",
    "bind_client",
    "RpclError",
    "RpclSyntaxError",
    "RpclSemanticError",
]
