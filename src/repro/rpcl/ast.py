"""Abstract syntax tree for RPCL specifications."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TypeSpec:
    """A reference to a type in declaration position.

    ``name`` is a primitive name (``int``, ``unsigned hyper``, ``float``,
    ``bool``, ``string``, ``opaque``, ``void``, ...) or a user-defined type
    identifier.  Array/optional decorations live on :class:`Declaration`.
    """

    name: str


@dataclass(frozen=True)
class Declaration:
    """A declared item: a struct field, union arm body, or typedef body.

    ``kind`` is one of:

    * ``"plain"``     -- ``T name``
    * ``"fixed"``     -- ``T name[n]`` (``opaque`` included)
    * ``"variable"``  -- ``T name<n>`` / ``T name<>`` (``opaque``/``string``)
    * ``"optional"``  -- ``T *name``
    * ``"void"``      -- the void declaration
    """

    type: TypeSpec
    name: str
    kind: str = "plain"
    size: int | None = None  # bound for fixed/variable kinds


@dataclass(frozen=True)
class ConstDef:
    """``const NAME = value;``"""

    name: str
    value: int


@dataclass(frozen=True)
class EnumDef:
    """``enum name { MEMBER = value, ... };``"""

    name: str
    members: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class StructDef:
    """``struct name { declarations };``"""

    name: str
    fields: tuple[Declaration, ...]


@dataclass(frozen=True)
class UnionCase:
    """One or more ``case`` labels sharing a declaration arm."""

    values: tuple[int, ...]
    declaration: Declaration


@dataclass(frozen=True)
class UnionDef:
    """``union name switch (disc) { cases... default: decl; };``"""

    name: str
    discriminant: Declaration
    cases: tuple[UnionCase, ...]
    default: Declaration | None = None


@dataclass(frozen=True)
class TypedefDef:
    """``typedef declaration;`` -- aliases the declared shape to its name."""

    declaration: Declaration

    @property
    def name(self) -> str:
        """The typedef's alias name."""
        return self.declaration.name


@dataclass(frozen=True)
class ProcDef:
    """One procedure of a program version."""

    name: str
    number: int
    result: TypeSpec
    args: tuple[TypeSpec, ...]


@dataclass(frozen=True)
class VersionDef:
    """One version block of a program."""

    name: str
    number: int
    procedures: tuple[ProcDef, ...]


@dataclass(frozen=True)
class ProgramDef:
    """``program NAME { versions } = number;``"""

    name: str
    number: int
    versions: tuple[VersionDef, ...]

    def version(self, number: int) -> VersionDef:
        """Return the version block with the given number."""
        for vers in self.versions:
            if vers.number == number:
                return vers
        raise KeyError(f"program {self.name} has no version {number}")


Definition = ConstDef | EnumDef | StructDef | UnionDef | TypedefDef | ProgramDef


@dataclass
class Specification:
    """A parsed RPCL file: ordered definitions plus lookup tables."""

    definitions: list[Definition] = field(default_factory=list)

    @property
    def constants(self) -> dict[str, int]:
        """All named integer constants (const defs and enum members)."""
        out: dict[str, int] = {}
        for d in self.definitions:
            if isinstance(d, ConstDef):
                out[d.name] = d.value
            elif isinstance(d, EnumDef):
                out.update(d.members)
        return out

    @property
    def programs(self) -> dict[str, ProgramDef]:
        """Program definitions keyed by name."""
        return {d.name: d for d in self.definitions if isinstance(d, ProgramDef)}

    def program(self, name: str) -> ProgramDef:
        """Return the program definition called ``name``."""
        try:
            return self.programs[name]
        except KeyError:
            raise KeyError(f"specification defines no program {name!r}") from None
