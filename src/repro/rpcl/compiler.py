"""Lower RPCL AST into XDR type descriptors and procedure signatures.

This is the semantic core of the stub generator: it builds a symbol table of
all named types in a specification and can produce the
:class:`~repro.xdr.types.XdrType` codec for any declaration, including
recursive structures (XDR optionals make linked lists expressible, and
rpcgen supports them, so we do too via lazy references).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.rpcl import ast
from repro.rpcl.errors import RpclSemanticError
from repro.xdr import (
    BOOL,
    DOUBLE,
    FLOAT,
    HYPER,
    INT,
    UHYPER,
    UINT,
    VOID,
    EnumType,
    FixedArray,
    FixedOpaque,
    OptionalType,
    StringType,
    StructField,
    StructType,
    UnionArm,
    UnionType,
    VarArray,
    VarOpaque,
)
from repro.xdr.decoder import XdrDecoder
from repro.xdr.encoder import XdrEncoder
from repro.xdr.types import XdrType, _BaseType

_PRIMITIVES: dict[str, XdrType] = {
    "int": INT,
    "long": INT,
    "short": INT,
    "char": INT,
    "unsigned int": UINT,
    "unsigned long": UINT,
    "unsigned short": UINT,
    "unsigned char": UINT,
    "hyper": HYPER,
    "unsigned hyper": UHYPER,
    "float": FLOAT,
    "double": DOUBLE,
    "bool": BOOL,
    "void": VOID,
}


class LazyRef(_BaseType):
    """A forward/recursive reference resolved against the symbol table."""

    __slots__ = ("name", "_table", "_resolved")

    def __init__(self, name: str, table: dict[str, XdrType]) -> None:
        self.name = name
        self._table = table
        self._resolved: XdrType | None = None

    def _target(self) -> XdrType:
        if self._resolved is None:
            try:
                self._resolved = self._table[self.name]
            except KeyError:
                raise RpclSemanticError(f"undefined type {self.name!r}") from None
        return self._resolved

    def encode(self, encoder: XdrEncoder, value: Any) -> None:
        """Encode through the resolved target type."""
        self._target().encode(encoder, value)

    def decode(self, decoder: XdrDecoder) -> Any:
        """Decode through the resolved target type."""
        return self._target().decode(decoder)


@dataclass(frozen=True)
class ProcedureSignature:
    """The wire signature of one remote procedure."""

    name: str
    number: int
    arg_types: tuple[XdrType, ...]
    result_type: XdrType

    def encode_args(self, values: tuple[Any, ...]) -> bytes:
        """Encode positional argument values back-to-back."""
        if len(values) != len(self.arg_types):
            raise TypeError(
                f"{self.name}() takes {len(self.arg_types)} argument(s), "
                f"got {len(values)}"
            )
        enc = XdrEncoder()
        for xdr_type, value in zip(self.arg_types, values):
            xdr_type.encode(enc, value)
        return enc.getvalue()

    def decode_args(self, data: bytes) -> tuple[Any, ...]:
        """Decode positional argument values (server side)."""
        dec = XdrDecoder(data)
        values = tuple(t.decode(dec) for t in self.arg_types)
        dec.assert_done()
        return values

    def encode_result(self, value: Any) -> bytes:
        """Encode the procedure result (server side)."""
        enc = XdrEncoder()
        self.result_type.encode(enc, value)
        return enc.getvalue()

    def decode_result(self, data: bytes) -> Any:
        """Decode the procedure result (client side)."""
        dec = XdrDecoder(data)
        value = self.result_type.decode(dec)
        dec.assert_done()
        return value


class SpecCompiler:
    """Compiles a parsed specification's types and program interfaces."""

    def __init__(self, spec: ast.Specification) -> None:
        self.spec = spec
        self.types: dict[str, XdrType] = {}
        self.constants = spec.constants
        self._compile_types()

    # -- type lowering ------------------------------------------------------

    def _compile_types(self) -> None:
        for definition in self.spec.definitions:
            if isinstance(definition, ast.EnumDef):
                self.types[definition.name] = EnumType(
                    definition.name, dict(definition.members)
                )
            elif isinstance(definition, ast.StructDef):
                self.types[definition.name] = StructType(
                    definition.name,
                    [
                        StructField(f.name, self.declaration_type(f))
                        for f in definition.fields
                    ],
                )
            elif isinstance(definition, ast.UnionDef):
                self.types[definition.name] = self._compile_union(definition)
            elif isinstance(definition, ast.TypedefDef):
                self.types[definition.name] = self.declaration_type(
                    definition.declaration
                )

    def _compile_union(self, definition: ast.UnionDef) -> UnionType:
        disc_type = self.declaration_type(definition.discriminant)
        arms = [
            UnionArm(value, self.declaration_type(case.declaration))
            for case in definition.cases
            for value in case.values
        ]
        default = (
            self.declaration_type(definition.default)
            if definition.default is not None
            else None
        )
        return UnionType(definition.name, disc_type, arms, default)

    def type_for(self, spec: ast.TypeSpec) -> XdrType:
        """Resolve a bare type specifier to its codec."""
        if spec.name in _PRIMITIVES:
            return _PRIMITIVES[spec.name]
        if spec.name == "quadruple":
            raise RpclSemanticError(
                "XDR 'quadruple' (128-bit float) is not supported: Python "
                "has no native quad type and no CUDA API uses it"
            )
        if spec.name == "string":
            # A bare `string` in procedure position means an unbounded string,
            # matching rpcgen's treatment.
            return StringType(None)
        if spec.name == "opaque":
            raise RpclSemanticError(
                "'opaque' requires a declaration context (size decoration)"
            )
        if spec.name in self.types:
            return self.types[spec.name]
        # Forward or recursive reference: resolve lazily.
        return LazyRef(spec.name, self.types)

    def declaration_type(self, decl: ast.Declaration) -> XdrType:
        """Resolve a full declaration (with array/optional decorations)."""
        if decl.kind == "void":
            return VOID
        name = decl.type.name
        if name == "string":
            if decl.kind != "variable":
                raise RpclSemanticError("string declarations must use <> bounds")
            return StringType(decl.size)
        if name == "opaque":
            if decl.kind == "fixed":
                if decl.size is None:
                    raise RpclSemanticError("fixed opaque requires a size")
                return FixedOpaque(decl.size)
            if decl.kind == "variable":
                return VarOpaque(decl.size)
            raise RpclSemanticError("opaque declarations must use [] or <> bounds")
        base = self.type_for(decl.type)
        if decl.kind == "plain":
            return base
        if decl.kind == "optional":
            return OptionalType(base)
        if decl.kind == "fixed":
            if decl.size is None:
                raise RpclSemanticError("fixed array requires a size")
            return FixedArray(base, decl.size)
        if decl.kind == "variable":
            return VarArray(base, decl.size)
        raise RpclSemanticError(f"unknown declaration kind {decl.kind!r}")

    # -- program lowering ----------------------------------------------------

    def signatures(
        self, program: str, version: int
    ) -> tuple[int, int, dict[str, ProcedureSignature]]:
        """Return (prog_number, vers_number, name -> signature) for a program."""
        prog = self.spec.program(program)
        vers = prog.version(version)
        table = {
            proc.name: ProcedureSignature(
                proc.name,
                proc.number,
                tuple(self.type_for(a) for a in proc.args),
                self.type_for(proc.result),
            )
            for proc in vers.procedures
        }
        return prog.number, vers.number, table
