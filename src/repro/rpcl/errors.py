"""Exception hierarchy for the RPCL compiler."""

from __future__ import annotations


class RpclError(Exception):
    """Base class for RPCL compilation failures."""


class RpclSyntaxError(RpclError):
    """The specification text violates the RPCL grammar."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class RpclSemanticError(RpclError):
    """The specification parses but is inconsistent.

    Examples: duplicate definitions, references to undefined types,
    duplicate procedure numbers, non-constant array bounds.
    """
