"""Tokenizer for the RPC Language (RPCL, RFC 5531 appendix / rpcgen dialect).

Handles C-style block comments, line comments, ``%`` passthrough lines
(which rpcgen copies into generated C and we simply skip), decimal, octal
and hexadecimal integer literals, identifiers/keywords and the punctuation
set used by the grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.rpcl.errors import RpclSyntaxError

KEYWORDS = frozenset(
    {
        "bool",
        "case",
        "char",
        "const",
        "default",
        "double",
        "enum",
        "float",
        "hyper",
        "int",
        "long",
        "opaque",
        "program",
        "quadruple",
        "short",
        "string",
        "struct",
        "switch",
        "typedef",
        "union",
        "unsigned",
        "version",
        "void",
    }
)

PUNCTUATION = frozenset("{}()[]<>*=,;:")


@dataclass(frozen=True)
class Token:
    """A lexical token with source position for diagnostics."""

    kind: str  # "ident", "keyword", "number", "punct", "eof"
    value: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}({self.value!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenize RPCL ``source`` into a list ending with an EOF token."""
    return list(_iter_tokens(source))


def _iter_tokens(source: str) -> Iterator[Token]:
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(message: str) -> RpclSyntaxError:
        return RpclSyntaxError(message, line, col)

    while i < n:
        ch = source[i]
        # whitespace
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # % passthrough lines (rpcgen copies these verbatim into C output)
        if ch == "%" and col == 1:
            while i < n and source[i] != "\n":
                i += 1
            continue
        # block comments
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in source[i : end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        # line comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        # numbers (decimal, hex, octal; optional leading minus)
        if ch.isdigit() or (
            ch == "-" and i + 1 < n and source[i + 1].isdigit()
        ):
            start = i
            start_col = col
            if ch == "-":
                i += 1
                col += 1
            if source.startswith(("0x", "0X"), i):
                i += 2
                col += 2
                digits = 0
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                    col += 1
                    digits += 1
                if digits == 0:
                    raise error("malformed hexadecimal literal")
            else:
                while i < n and source[i].isdigit():
                    i += 1
                    col += 1
            yield Token("number", source[start:i], line, start_col)
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
                col += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            yield Token(kind, word, line, start_col)
            continue
        # punctuation
        if ch in PUNCTUATION:
            yield Token("punct", ch, line, col)
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {ch!r}")
    yield Token("eof", "", line, col)


def parse_int_literal(text: str) -> int:
    """Parse an RPCL integer literal (decimal, 0x hex, or 0-prefixed octal)."""
    negative = text.startswith("-")
    body = text[1:] if negative else text
    if body.lower().startswith("0x"):
        value = int(body, 16)
    elif body.startswith("0") and len(body) > 1:
        value = int(body, 8)
    else:
        value = int(body, 10)
    return -value if negative else value
