"""Recursive-descent parser for RPCL (RFC 5531 appendix grammar).

The parser produces the AST of :mod:`repro.rpcl.ast`.  Constants referenced
in array bounds, enum values, case labels and program/version/procedure
numbers may be earlier ``const`` definitions or enum members, matching
rpcgen semantics.

Procedures may take multiple arguments (the rpcgen ``-N``/newstyle
convention, which Cricket's interface file uses); arguments are encoded
back-to-back in declaration order.
"""

from __future__ import annotations

from repro.rpcl import ast
from repro.rpcl.errors import RpclSemanticError, RpclSyntaxError
from repro.rpcl.lexer import Token, parse_int_literal, tokenize

_PRIMITIVE_STARTERS = {
    "int",
    "unsigned",
    "hyper",
    "long",
    "short",
    "char",
    "float",
    "double",
    "quadruple",
    "bool",
    "void",
    "string",
    "opaque",
}


class Parser:
    """Single-use parser over a token stream."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0
        self._constants: dict[str, int] = {}

    # -- token plumbing --------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _error(self, message: str) -> RpclSyntaxError:
        tok = self._peek()
        return RpclSyntaxError(message + f" (found {tok.value!r})", tok.line, tok.column)

    def _expect(self, kind: str, value: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            expected = value if value is not None else kind
            raise self._error(f"expected {expected!r}")
        return self._advance()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self._peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self._advance()
        return None

    # -- entry point ------------------------------------------------------

    def parse(self) -> ast.Specification:
        """Parse a full specification."""
        spec = ast.Specification()
        while self._peek().kind != "eof":
            spec.definitions.append(self._definition())
        self._check_semantics(spec)
        return spec

    # -- definitions -------------------------------------------------------

    def _definition(self) -> ast.Definition:
        tok = self._peek()
        if tok.kind != "keyword":
            raise self._error("expected a definition keyword")
        if tok.value == "const":
            return self._const_def()
        if tok.value == "enum":
            return self._enum_def()
        if tok.value == "struct":
            return self._struct_def()
        if tok.value == "union":
            return self._union_def()
        if tok.value == "typedef":
            return self._typedef_def()
        if tok.value == "program":
            return self._program_def()
        raise self._error(f"unexpected keyword {tok.value!r} at top level")

    def _const_def(self) -> ast.ConstDef:
        self._expect("keyword", "const")
        name = self._expect("ident").value
        self._expect("punct", "=")
        value = self._constant_value()
        self._expect("punct", ";")
        self._constants[name] = value
        return ast.ConstDef(name, value)

    def _constant_value(self) -> int:
        tok = self._peek()
        if tok.kind == "number":
            self._advance()
            return parse_int_literal(tok.value)
        if tok.kind == "ident":
            self._advance()
            try:
                return self._constants[tok.value]
            except KeyError:
                raise RpclSemanticError(
                    f"line {tok.line}: undefined constant {tok.value!r}"
                ) from None
        raise self._error("expected a constant")

    def _enum_def(self) -> ast.EnumDef:
        self._expect("keyword", "enum")
        name = self._expect("ident").value
        members = self._enum_body()
        self._expect("punct", ";")
        for member, value in members:
            self._constants[member] = value
        return ast.EnumDef(name, members)

    def _enum_body(self) -> tuple[tuple[str, int], ...]:
        self._expect("punct", "{")
        members: list[tuple[str, int]] = []
        while True:
            member = self._expect("ident").value
            self._expect("punct", "=")
            value = self._constant_value()
            members.append((member, value))
            if not self._accept("punct", ","):
                break
        self._expect("punct", "}")
        return tuple(members)

    def _struct_def(self) -> ast.StructDef:
        self._expect("keyword", "struct")
        name = self._expect("ident").value
        fields = self._struct_body()
        self._expect("punct", ";")
        return ast.StructDef(name, fields)

    def _struct_body(self) -> tuple[ast.Declaration, ...]:
        self._expect("punct", "{")
        fields: list[ast.Declaration] = []
        while not self._accept("punct", "}"):
            decl = self._declaration()
            self._expect("punct", ";")
            if decl.kind != "void":
                fields.append(decl)
        return tuple(fields)

    def _union_def(self) -> ast.UnionDef:
        self._expect("keyword", "union")
        name = self._expect("ident").value
        self._expect("keyword", "switch")
        self._expect("punct", "(")
        discriminant = self._declaration()
        self._expect("punct", ")")
        self._expect("punct", "{")
        cases: list[ast.UnionCase] = []
        default: ast.Declaration | None = None
        while not self._accept("punct", "}"):
            if self._accept("keyword", "default"):
                self._expect("punct", ":")
                default = self._declaration()
                self._expect("punct", ";")
                continue
            values: list[int] = []
            while self._accept("keyword", "case"):
                values.append(self._constant_value())
                self._expect("punct", ":")
            if not values:
                raise self._error("expected 'case' or 'default' in union body")
            decl = self._declaration()
            self._expect("punct", ";")
            cases.append(ast.UnionCase(tuple(values), decl))
        self._expect("punct", ";")
        if not cases and default is None:
            raise RpclSemanticError(f"union {name} has no cases")
        return ast.UnionDef(name, discriminant, tuple(cases), default)

    def _typedef_def(self) -> ast.TypedefDef:
        self._expect("keyword", "typedef")
        decl = self._declaration()
        self._expect("punct", ";")
        if decl.kind == "void":
            raise RpclSemanticError("cannot typedef void")
        return ast.TypedefDef(decl)

    # -- declarations -----------------------------------------------------

    def _type_spec(self) -> ast.TypeSpec:
        tok = self._peek()
        if tok.kind == "ident":
            self._advance()
            return ast.TypeSpec(tok.value)
        if tok.kind == "keyword":
            if tok.value == "unsigned":
                self._advance()
                nxt = self._peek()
                if nxt.kind == "keyword" and nxt.value in ("int", "hyper", "long", "short", "char"):
                    self._advance()
                    return ast.TypeSpec(f"unsigned {nxt.value}")
                return ast.TypeSpec("unsigned int")  # bare 'unsigned'
            if tok.value in _PRIMITIVE_STARTERS or tok.value in ("struct", "enum", "union"):
                if tok.value in ("struct", "enum", "union"):
                    # inline reference: 'struct foo' names a defined type
                    self._advance()
                    name = self._expect("ident").value
                    return ast.TypeSpec(name)
                self._advance()
                return ast.TypeSpec(tok.value)
        raise self._error("expected a type specifier")

    def _declaration(self) -> ast.Declaration:
        if self._accept("keyword", "void"):
            return ast.Declaration(ast.TypeSpec("void"), "", kind="void")
        spec = self._type_spec()
        if self._accept("punct", "*"):
            name = self._expect("ident").value
            return ast.Declaration(spec, name, kind="optional")
        name = self._expect("ident").value
        if self._accept("punct", "["):
            size = self._constant_value()
            self._expect("punct", "]")
            return ast.Declaration(spec, name, kind="fixed", size=size)
        if self._accept("punct", "<"):
            size: int | None = None
            nxt = self._peek()
            if not (nxt.kind == "punct" and nxt.value == ">"):
                size = self._constant_value()
            self._expect("punct", ">")
            return ast.Declaration(spec, name, kind="variable", size=size)
        return ast.Declaration(spec, name, kind="plain")

    # -- programs ----------------------------------------------------------

    def _program_def(self) -> ast.ProgramDef:
        self._expect("keyword", "program")
        name = self._expect("ident").value
        self._expect("punct", "{")
        versions: list[ast.VersionDef] = []
        while not self._accept("punct", "}"):
            versions.append(self._version_def())
        self._expect("punct", "=")
        number = self._constant_value()
        self._expect("punct", ";")
        if not versions:
            raise RpclSemanticError(f"program {name} defines no versions")
        return ast.ProgramDef(name, number, tuple(versions))

    def _version_def(self) -> ast.VersionDef:
        self._expect("keyword", "version")
        name = self._expect("ident").value
        self._expect("punct", "{")
        procedures: list[ast.ProcDef] = []
        while not self._accept("punct", "}"):
            procedures.append(self._proc_def())
        self._expect("punct", "=")
        number = self._constant_value()
        self._expect("punct", ";")
        return ast.VersionDef(name, number, tuple(procedures))

    def _proc_def(self) -> ast.ProcDef:
        result = self._type_spec()
        name = self._expect("ident").value
        self._expect("punct", "(")
        args: list[ast.TypeSpec] = []
        first = self._type_spec()
        if first.name != "void":
            args.append(first)
            while self._accept("punct", ","):
                args.append(self._type_spec())
        self._expect("punct", ")")
        self._expect("punct", "=")
        number = self._constant_value()
        self._expect("punct", ";")
        return ast.ProcDef(name, number, result, tuple(args))

    # -- semantic checks ---------------------------------------------------

    @staticmethod
    def _check_semantics(spec: ast.Specification) -> None:
        names: set[str] = set()
        for d in spec.definitions:
            if isinstance(d, (ast.EnumDef, ast.StructDef, ast.UnionDef, ast.TypedefDef)):
                if d.name in names:
                    raise RpclSemanticError(f"duplicate type definition {d.name!r}")
                names.add(d.name)
        for prog in spec.programs.values():
            vers_numbers = [v.number for v in prog.versions]
            if len(set(vers_numbers)) != len(vers_numbers):
                raise RpclSemanticError(
                    f"duplicate version numbers in program {prog.name}"
                )
            for vers in prog.versions:
                proc_numbers = [p.number for p in vers.procedures]
                if len(set(proc_numbers)) != len(proc_numbers):
                    raise RpclSemanticError(
                        f"duplicate procedure numbers in {prog.name}/{vers.name}"
                    )
                proc_names = [p.name for p in vers.procedures]
                if len(set(proc_names)) != len(proc_names):
                    raise RpclSemanticError(
                        f"duplicate procedure names in {prog.name}/{vers.name}"
                    )


def parse(source: str) -> ast.Specification:
    """Parse RPCL ``source`` text into a :class:`~repro.rpcl.ast.Specification`."""
    return Parser(source).parse()
