"""Client-stub and server-skeleton generation from RPCL specifications.

This mirrors RPC-Lib's procedural macros (client side) and rpcgen's server
skeletons (the Cricket server side):

* :func:`bind_client` returns a :class:`ClientStub` whose attributes are the
  program's procedures -- calling ``stub.rpc_cudagetdevicecount()`` encodes
  the arguments per the spec, performs the RPC and decodes the result.
* :func:`make_server_dispatch` adapts a plain Python object (one method per
  procedure name) into the handler table consumed by
  :class:`repro.oncrpc.server.RpcServer`.

Because stubs are derived entirely from the interface file, adding an RPC to
the specification makes it immediately callable with no hand-written client
code -- the property the paper highlights for RPC-Lib.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.oncrpc.client import RpcClient
from repro.oncrpc.server import CallContext, GarbageArgumentsError, Handler
from repro.oncrpc.transport import Transport
from repro.rpcl import ast
from repro.rpcl.compiler import ProcedureSignature, SpecCompiler
from repro.rpcl.errors import RpclSemanticError
from repro.rpcl.parser import parse
from repro.xdr.errors import XdrError


class ClientStub:
    """A program-version client with one bound method per procedure."""

    def __init__(
        self,
        client: RpcClient,
        signatures: Mapping[str, ProcedureSignature],
        constants: Mapping[str, int],
    ) -> None:
        self._client = client
        self._signatures = dict(signatures)
        #: constants (const defs and enum members) from the specification
        self.constants = dict(constants)

    @property
    def client(self) -> RpcClient:
        """The underlying :class:`~repro.oncrpc.client.RpcClient`."""
        return self._client

    def procedures(self) -> tuple[str, ...]:
        """Names of all callable procedures."""
        return tuple(self._signatures)

    def __getattr__(self, name: str) -> Callable[..., Any]:
        try:
            sig = self._signatures[name]
        except KeyError:
            raise AttributeError(f"no procedure {name!r} in this program") from None

        def invoke(*args: Any) -> Any:
            raw = self._client.call_raw(sig.number, sig.encode_args(args))
            return sig.decode_result(raw)

        invoke.__name__ = name
        invoke.__doc__ = f"Remote procedure {name} (proc {sig.number})."
        return invoke

    def call(self, name: str, *args: Any) -> Any:
        """Invoke a procedure by name (explicit form of attribute access)."""
        return getattr(self, name)(*args)

    def call_batched(self, name: str, *args: Any) -> int:
        """Issue a procedure call without waiting for its reply; return its xid.

        Collect (and error-check) outstanding replies with
        ``stub.client.flush_batch()``; any synchronous call flushes first.
        The xid is the handle ``rpc_cancel`` takes to abort the call.
        """
        try:
            sig = self._signatures[name]
        except KeyError:
            raise AttributeError(f"no procedure {name!r} in this program") from None
        return self._client.call_batched(sig.number, sig.encode_args(args))

    def close(self) -> None:
        """Close the underlying RPC client."""
        self._client.close()

    def __enter__(self) -> "ClientStub":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ProgramInterface:
    """A compiled (program, version) interface ready for binding."""

    def __init__(self, spec: ast.Specification, program: str, version: int) -> None:
        self.spec = spec
        self.compiler = SpecCompiler(spec)
        self.prog_number, self.vers_number, self.signatures = self.compiler.signatures(
            program, version
        )
        self.program_name = program

    @classmethod
    def from_source(cls, source: str, program: str, version: int) -> "ProgramInterface":
        """Parse RPCL source text and compile one program version."""
        return cls(parse(source), program, version)

    # -- client side ------------------------------------------------------

    def bind_client(self, transport: Transport, **rpc_kwargs: Any) -> ClientStub:
        """Create a client stub speaking this interface over ``transport``.

        Extra keyword arguments (``retry_policy``, ``clock``, ``stats``,
        ``cred``) are forwarded to the underlying
        :class:`~repro.oncrpc.client.RpcClient`.
        """
        client = RpcClient(transport, self.prog_number, self.vers_number, **rpc_kwargs)
        return ClientStub(client, self.signatures, self.compiler.constants)

    # -- server side ------------------------------------------------------

    def make_server_dispatch(self, implementation: Any) -> dict[int, Handler]:
        """Adapt ``implementation`` into an RpcServer handler table.

        ``implementation`` provides one callable per procedure name, either
        as attributes (an object) or items (a mapping).  Each callable takes
        the decoded argument values -- plus an optional trailing
        ``CallContext`` if the callable accepts it via a ``ctx`` keyword --
        and returns the result value to encode.
        """

        def lookup(name: str) -> Callable[..., Any]:
            if isinstance(implementation, Mapping):
                fn = implementation.get(name)
            else:
                fn = getattr(implementation, name, None)
            if fn is None:
                raise RpclSemanticError(
                    f"implementation provides no procedure {name!r}"
                )
            return fn

        table: dict[int, Handler] = {}
        for sig in self.signatures.values():
            table[sig.number] = _make_handler(sig, lookup(sig.name))
        return table


def _make_handler(sig: ProcedureSignature, fn: Callable[..., Any]) -> Handler:
    wants_ctx = _accepts_ctx(fn)

    def handler(args: bytes, ctx: CallContext) -> bytes:
        try:
            values = sig.decode_args(args)
        except XdrError as exc:
            raise GarbageArgumentsError(str(exc)) from exc
        result = fn(*values, ctx=ctx) if wants_ctx else fn(*values)
        return sig.encode_result(result)

    handler.__name__ = f"handle_{sig.name}"
    return handler


def _accepts_ctx(fn: Callable[..., Any]) -> bool:
    import inspect

    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    if "ctx" in params:
        return True
    return any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values())


def bind_client(
    source: str, program: str, version: int, transport: Transport
) -> ClientStub:
    """One-shot convenience: parse, compile and bind a client stub."""
    return ProgramInterface.from_source(source, program, version).bind_client(transport)
