"""Execution-platform models: unikernels, Linux VM, native Linux.

The paper cannot be reproduced on real unikernels from Python, so the
platforms are behavioural models of the mechanisms the paper measures and
explains: guest network-stack costs (:mod:`repro.unikernel.netstack`),
virtio feature negotiation (:mod:`repro.unikernel.virtio`), language/runtime
profiles (:mod:`repro.unikernel.language`), and the composed per-message
RPC path timing (:mod:`repro.unikernel.platform`).  Calibrated presets for
the paper's five configurations live in :mod:`repro.unikernel.presets`.
"""

from repro.unikernel.language import C_PROFILE, PROFILES, RUST_PROFILE, LanguageProfile
from repro.unikernel.netstack import CSUM_RATE_BPS, NetstackModel
from repro.unikernel.platform import Platform, PlatformMeter, RpcPathModel
from repro.unikernel.presets import (
    CRICKET_SERVER_DISPATCH_S,
    EVAL_LINK,
    HERMIT_STACK,
    LINUX_VM_STACK,
    NATIVE_STACK,
    UNIKRAFT_STACK,
    linux_vm,
    native_c,
    native_rust,
    path_for,
    rustyhermit,
    table1_platforms,
    unikraft,
)
from repro.unikernel.virtio import VirtioCosts, VirtioFeatures

__all__ = [
    "Platform",
    "PlatformMeter",
    "RpcPathModel",
    "NetstackModel",
    "VirtioFeatures",
    "VirtioCosts",
    "LanguageProfile",
    "C_PROFILE",
    "RUST_PROFILE",
    "PROFILES",
    "CSUM_RATE_BPS",
    "EVAL_LINK",
    "NATIVE_STACK",
    "LINUX_VM_STACK",
    "UNIKRAFT_STACK",
    "HERMIT_STACK",
    "native_c",
    "native_rust",
    "linux_vm",
    "unikraft",
    "rustyhermit",
    "table1_platforms",
    "path_for",
    "CRICKET_SERVER_DISPATCH_S",
]
