"""Application language/runtime profiles (the C vs. Rust dimension).

The paper compares C clients (libtirpc) with Rust clients (RPC-Lib) and
attributes the measured differences to two concrete mechanisms:

* **Kernel launches**: the C path keeps extra compatibility logic for the
  ``<<<...>>>`` launch operator; Rust omits it, making Rust launches
  ~6.3 % faster (§4.2, Figure 6c).
* **Initialization**: the C samples use a slower random number generator
  (glibc ``rand()``), which the paper found responsible for a large part of
  histogram's C-vs-Rust gap (§4.1).

A profile captures those per-client-call CPU costs; they are charged on the
client side of each RPC.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LanguageProfile:
    """Client-side runtime characteristics of one implementation language."""

    name: str
    #: fixed client CPU cost to marshal/issue any RPC, seconds
    call_overhead_s: float
    #: extra client CPU per *kernel launch* call (C's <<<>>> compatibility
    #: logic; zero for Rust), seconds
    launch_extra_s: float
    #: random-number generation throughput for input initialization, bytes/s
    rng_rate_Bps: float


#: libtirpc-based C client.  glibc rand() produces ~4 bytes per ~10ns-ish
#: call chain; measured C samples initialize at a few hundred MiB/s.
C_PROFILE = LanguageProfile(
    name="C",
    call_overhead_s=1.6e-6,
    launch_extra_s=1.35e-6,
    rng_rate_Bps=0.30e9,
)

#: RPC-Lib-based Rust client: same marshalling work, no launch-compat
#: logic, and a fast PRNG (SmallRng-class) for initialization.
RUST_PROFILE = LanguageProfile(
    name="Rust",
    call_overhead_s=1.6e-6,
    launch_extra_s=0.0,
    rng_rate_Bps=1.6e9,
)

PROFILES = {p.name: p for p in (C_PROFILE, RUST_PROFILE)}
