"""Guest network-stack cost model.

Computes the *CPU time a guest spends* to transmit or receive a message of
``n`` bytes, from the mechanisms the paper holds responsible for the
observed platform differences (§4.2):

* a fixed per-operation entry cost (socket syscall + kernel path on Linux;
  a plain function call in a single-address-space unikernel -- "no classic
  context switches within the guest are necessary"),
* internal buffer copies (the paper reduced RustyHermit's copies; fractional
  values express partial-path copies such as ring-buffer staging),
* software checksumming when the virtio checksum offload is not negotiated,
* per-segment streaming costs when TCP segmentation offload is absent: the
  guest cuts MTU-sized segments itself and pays protocol processing,
  notification and ACK-handling per segment instead of per 64 KiB chunk,
* virtio kick (tx) / interrupt (rx) and descriptor costs for virtualized
  configurations,
* a receive-side inefficiency factor -- the paper measures that reading
  from the network degrades much more than writing ("significant
  inefficiencies when reading from the network").

The *first* segment's processing is folded into the entry cost so that
small-message latency (Figure 6) and bulk throughput (Figure 7) are
controlled by separate, independently calibratable parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.net.link import LinkModel
from repro.unikernel.virtio import VirtioCosts, VirtioFeatures

#: Software checksum throughput on one EPYC-class core, bytes/s.
CSUM_RATE_BPS = 4.5e9

#: Chunk size handed to the device per operation when TSO is available.
TSO_CHUNK = 65536


@dataclass(frozen=True)
class NetstackModel:
    """Parameters of one guest network stack."""

    name: str
    #: fixed cost to enter the stack and emit one message (tx), seconds
    tx_entry_s: float
    #: fixed cost to deliver one message to the application (rx), seconds
    rx_entry_s: float
    #: payload copies on the transmit path (fractional = partial-path copy)
    tx_copies: float
    #: payload copies on the receive path
    rx_copies: float
    #: single-core copy throughput, bytes/s
    copy_rate_Bps: float
    #: per tx segment on *sustained bulk* flows: protocol processing,
    #: device notification and ACK-stall handling once send buffers and the
    #: TCP window are exhausted, seconds
    tx_segment_s: float
    #: per rx wire segment on sustained bulk flows, seconds
    rx_segment_s: float
    #: multiplier on receive-side per-byte work (>= 1.0)
    rx_inefficiency: float = 1.0
    #: bytes a flow may move before per-segment bulk penalties apply
    #: (models TCP window growth / socket buffering; 0 = from the second
    #: chunk onwards).  Messages smaller than this -- e.g. the ~6.5 MiB
    #: matrices of cuSolverDn_LinearSolver -- ride the window without
    #: stalling, which is how the paper's Hermit shows only ~27 % overhead
    #: on the most transfer-heavy application while collapsing to ~10 % on
    #: the 512 MiB bandwidthTest streams.
    bulk_threshold_bytes: int = 0
    #: virtio features; ``None`` for bare-metal (real NIC with full offloads)
    virtio: VirtioFeatures | None = None
    virtio_costs: VirtioCosts = field(default_factory=VirtioCosts)

    # -- feature helpers ------------------------------------------------------

    def _tso(self) -> bool:
        return True if self.virtio is None else self.virtio.host_tso4

    def _tx_csum_offload(self) -> bool:
        return True if self.virtio is None else self.virtio.csum

    def _rx_csum_offload(self) -> bool:
        return True if self.virtio is None else self.virtio.guest_csum

    def _sg(self) -> bool:
        return True if self.virtio is None else self.virtio.sg

    def tx_chunk_bytes(self, link: LinkModel) -> int:
        """Bytes handed to the device per tx operation (TSO chunk or MTU)."""
        return TSO_CHUNK if self._tso() else link.mtu - 40

    # -- main costs -------------------------------------------------------------

    def tx_time_s(self, nbytes: int, link: LinkModel) -> float:
        """Guest CPU time to transmit one ``nbytes`` message."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        copies = self.tx_copies + (0.0 if self._sg() else 0.6)
        per_byte = copies / self.copy_rate_Bps
        if not self._tx_csum_offload():
            per_byte += 1.0 / CSUM_RATE_BPS
        chunk = self.tx_chunk_bytes(link)
        chunks = max(1, -(-nbytes // chunk))
        free_chunks = max(1, self.bulk_threshold_bytes // chunk)
        penalized = max(0, chunks - free_chunks)
        cost = self.tx_entry_s + nbytes * per_byte + penalized * self.tx_segment_s
        if self.virtio is not None:
            cost += self.virtio_costs.kick_s
            cost += chunks * self.virtio_costs.descriptor_s
        return cost

    def rx_time_s(self, nbytes: int, link: LinkModel) -> float:
        """Guest CPU time to receive one ``nbytes`` message."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        per_byte = self.rx_copies / self.copy_rate_Bps
        if not self._rx_csum_offload():
            per_byte += 1.0 / CSUM_RATE_BPS
        per_byte *= self.rx_inefficiency
        segments = link.segments(nbytes)
        segment_cost = self.rx_segment_s
        if self.virtio is not None and not self.virtio.mrg_rxbuf:
            segment_cost *= 2.0  # one rx buffer per packet, extra recycling
        free_segments = max(1, self.bulk_threshold_bytes // max(1, link.mtu - 40))
        penalized = max(0, segments - free_segments)
        cost = self.rx_entry_s + nbytes * per_byte + penalized * segment_cost
        if self.virtio is not None:
            cost += self.virtio_costs.irq_s
            cost += max(1, segments // 8) * self.virtio_costs.descriptor_s
        return cost

    def effective_tx_rate_Bps(self, link: LinkModel, nbytes: int = 64 << 20) -> float:
        """Asymptotic transmit throughput of this stack (ignoring the wire)."""
        return nbytes / self.tx_time_s(nbytes, link)

    def with_virtio(self, features: VirtioFeatures) -> "NetstackModel":
        """Copy of this stack with different negotiated virtio features."""
        return replace(self, virtio=features)
