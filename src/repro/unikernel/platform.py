"""Execution-platform models and the end-to-end RPC path timing.

A :class:`Platform` bundles what Table 1 of the paper calls a
*configuration*: guest OS, hypervisor presence, network plumbing and the
application language.  :class:`RpcPathModel` composes a client platform, the
physical link and the (always native-Linux) GPU-node server into per-message
latency charges, and :class:`PlatformMeter` plugs that model into the
transport layer so every record crossing the wire advances the experiment's
virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.net.link import LinkModel
from repro.net.simclock import SimClock
from repro.unikernel.language import LanguageProfile
from repro.unikernel.netstack import NetstackModel


@dataclass(frozen=True)
class Platform:
    """One evaluated configuration (a row of Table 1)."""

    name: str
    #: operating system label ("Rocky Linux", "Fedora VM", "Unikraft", "Hermit")
    os_name: str
    #: hypervisor label or None for bare metal
    hypervisor: str | None
    #: network plumbing label ("native" or "virtio")
    network: str
    netstack: NetstackModel
    language: LanguageProfile

    @property
    def virtualized(self) -> bool:
        """True when a hypervisor sits under this platform."""
        return self.hypervisor is not None

    def with_language(self, language: LanguageProfile) -> "Platform":
        """Copy of this platform with a different application language."""
        return replace(self, language=language)

    def with_netstack(self, netstack: NetstackModel) -> "Platform":
        """Copy of this platform with a different network stack model."""
        return replace(self, netstack=netstack)


@dataclass(frozen=True)
class RpcPathModel:
    """Timing of one message along client -> link -> server (and back).

    The server side is the Cricket server's host: the GPU node running
    native Linux, so its stack is always the native model.  Request and
    reply charges are:

    ``request(n) = client.tx(n) + link.latency + wire(n) + server.rx(n)``
    ``reply(n)   = server.tx(n) + link.latency + wire(n) + client.rx(n)``

    Summing CPU time and wire time (instead of overlapping them) models a
    single-threaded RPC implementation that cannot pipeline marshalling
    with transmission -- the paper's explanation for why Cricket's
    RPC-argument transfers are CPU-bound (§4.2).
    """

    client: Platform
    link: LinkModel
    server_stack: NetstackModel

    def request_components_s(self, nbytes: int) -> dict[str, float]:
        """Per-component seconds of the request path (for cost attribution)."""
        return {
            "client_stack": self.client.netstack.tx_time_s(nbytes, self.link),
            "wire": self.link.one_way_s(nbytes),
            "server_stack": self.server_stack.rx_time_s(nbytes, self.link),
        }

    def reply_components_s(self, nbytes: int) -> dict[str, float]:
        """Per-component seconds of the reply path."""
        return {
            "server_stack": self.server_stack.tx_time_s(nbytes, self.link),
            "wire": self.link.one_way_s(nbytes),
            "client_stack": self.client.netstack.rx_time_s(nbytes, self.link),
        }

    def request_time_s(self, nbytes: int) -> float:
        """Seconds for a request record of ``nbytes`` to reach the server."""
        return sum(self.request_components_s(nbytes).values())

    def reply_time_s(self, nbytes: int) -> float:
        """Seconds for a reply record of ``nbytes`` to reach the client."""
        return sum(self.reply_components_s(nbytes).values())

    def round_trip_s(self, request_bytes: int, reply_bytes: int) -> float:
        """Convenience: request plus reply (no server processing)."""
        return self.request_time_s(request_bytes) + self.reply_time_s(reply_bytes)


class PlatformMeter:
    """Transport meter charging RPC path time to a virtual clock.

    Attached to a client transport
    (:class:`repro.oncrpc.transport.TcpTransport` or
    :class:`~repro.oncrpc.transport.LoopbackTransport`); every sent record
    charges the request path, every received record the reply path, plus
    the language profile's per-call marshalling overhead on sends.
    """

    def __init__(self, path: RpcPathModel, clock: SimClock) -> None:
        self.path = path
        self.clock = clock
        #: cumulative bytes, for bandwidth reporting
        self.bytes_sent = 0
        self.bytes_received = 0
        #: extra client CPU to charge on the next send (e.g. C launch logic)
        self._pending_extra_s = 0.0
        self._batched_sends = 0
        self._batched_recvs = 0
        #: cost attribution, seconds per component (client_cpu includes the
        #: language marshalling overhead and app-charged extras)
        self.breakdown_s: dict[str, float] = {
            "client_cpu": 0.0,
            "client_stack": 0.0,
            "wire": 0.0,
            "server_stack": 0.0,
        }

    def add_client_cpu_s(self, seconds: float) -> None:
        """Charge additional client CPU before the next message (launch
        compatibility logic, input generation, ...)."""
        self._pending_extra_s += seconds

    def mark_batched(self, sends: int = 0, recvs: int = 0) -> None:
        """Declare upcoming messages as pipelined (ONC RPC batching).

        A batched send charges only the client's transmit CPU (the wire and
        server work overlap with the client's next operation); a batched
        reply charges only the client's receive CPU.
        """
        self._batched_sends += sends
        self._batched_recvs += recvs

    def on_send(self, nbytes: int) -> None:
        """Charge the request path for one outbound record."""
        extra, self._pending_extra_s = self._pending_extra_s, 0.0
        cpu = self.path.client.language.call_overhead_s + extra
        self.breakdown_s["client_cpu"] += cpu
        if self._batched_sends > 0:
            self._batched_sends -= 1
            stack = self.path.client.netstack.tx_time_s(nbytes, self.path.link)
            self.breakdown_s["client_stack"] += stack
            cost = cpu + stack
        else:
            components = self.path.request_components_s(nbytes)
            for key, value in components.items():
                self.breakdown_s[key] += value
            cost = cpu + sum(components.values())
        self.clock.advance_s(cost)
        self.bytes_sent += nbytes

    def on_recv(self, nbytes: int) -> None:
        """Charge the reply path for one inbound record."""
        if self._batched_recvs > 0:
            self._batched_recvs -= 1
            # Pipelined replies arrive back to back: interrupts coalesce and
            # per-segment work overlaps, leaving entry cost plus copies.
            stack = self.path.client.netstack
            cost = stack.rx_entry_s + nbytes * stack.rx_copies / stack.copy_rate_Bps
            self.breakdown_s["client_stack"] += cost
        else:
            components = self.path.reply_components_s(nbytes)
            for key, value in components.items():
                self.breakdown_s[key] += value
            cost = sum(components.values())
        self.clock.advance_s(cost)
        self.bytes_received += nbytes
