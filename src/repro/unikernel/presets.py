"""Calibrated platform presets: the five configurations of Table 1.

Every constant in this file is a *calibration parameter* of the
reproduction, anchored to the mechanisms and ratios the paper reports (see
DESIGN.md §5):

* **C / Rust native** (Rocky Linux, no hypervisor, kernel TCP on the real
  NIC): one payload copy per direction, full hardware offloads.
* **Linux VM** (Fedora guest under QEMU/KVM, virtio-net with all offloads
  negotiated): guest-kernel syscall/softirq entry costs plus VM-exit and
  interrupt-injection costs; retains >= 80 % of native bulk bandwidth but
  pays the largest per-call latency (Figure 6).
* **Unikraft** (lwIP): cheap entries (single address space) but no checksum
  offload (paper footnote 4), lwIP per-segment processing, several internal
  copies.
* **RustyHermit** (smoltcp, with the paper's improvements: CSUM,
  GUEST_CSUM and MRG_RXBUF negotiated, fewer internal copies): the best
  virtualized per-call latency, but no TSO and expensive per-segment
  streaming -- reproducing the ~10 % bulk bandwidth of Figure 7.

Absolute values are plausible for EPYC-7301-class cores; only the resulting
*ratios* carry scientific weight, and those are asserted by the benchmark
suite.
"""

from __future__ import annotations

from repro.net.fabric import Node
from repro.net.link import LinkModel
from repro.unikernel.language import C_PROFILE, RUST_PROFILE, LanguageProfile
from repro.unikernel.netstack import NetstackModel
from repro.unikernel.platform import Platform, RpcPathModel
from repro.unikernel.virtio import VirtioCosts, VirtioFeatures

#: The evaluation link: 100 Gbit/s Ethernet (IPoIB, ConnectX-5), MTU 9000.
#: One-way latency ~5 us is typical for IPoIB through one switch.
EVAL_LINK = LinkModel(name="100GbE-IPoIB", line_rate_bps=100e9, latency_s=5e-6, mtu=9000)

# ---------------------------------------------------------------------------
# Network stacks
# ---------------------------------------------------------------------------

#: Bare-metal Linux on the real NIC: the client stack of the native
#: configurations and the server stack of the GPU node in *all*
#: configurations.
NATIVE_STACK = NetstackModel(
    name="linux-native",
    tx_entry_s=1.4e-6,
    rx_entry_s=1.9e-6,
    tx_copies=1.0,
    rx_copies=1.0,
    copy_rate_Bps=5.0e9,
    tx_segment_s=0.5e-6,   # per 64 KiB TSO chunk
    rx_segment_s=0.08e-6,  # GRO amortizes per-wire-segment work
    rx_inefficiency=1.0,
    virtio=None,
)

#: Fedora guest under QEMU/KVM with every virtio-net offload negotiated.
LINUX_VM_STACK = NetstackModel(
    name="linux-vm-virtio",
    tx_entry_s=5.0e-6,
    rx_entry_s=11.0e-6,
    tx_copies=1.4,
    rx_copies=1.3,
    copy_rate_Bps=4.5e9,
    tx_segment_s=0.6e-6,
    rx_segment_s=0.10e-6,
    rx_inefficiency=1.05,
    virtio=VirtioFeatures(),  # all offloads on
    virtio_costs=VirtioCosts(kick_s=12e-6, irq_s=18e-6, descriptor_s=0.3e-6),
)

#: Unikraft with lwIP: no syscall boundary, but no checksum offload and
#: lwIP's per-segment processing; several internal copies.
UNIKRAFT_STACK = NetstackModel(
    name="unikraft-lwip",
    tx_entry_s=1.2e-6,
    rx_entry_s=1.8e-6,
    # lwIP folds checksumming into its copy pass (copy-and-checksum), so the
    # explicit software-checksum term below carries most of the per-byte cost
    # and the residual copy term stays below one full pass.
    tx_copies=0.85,
    rx_copies=0.9,
    copy_rate_Bps=4.0e9,
    tx_segment_s=11.5e-6,
    rx_segment_s=8.0e-6,
    rx_inefficiency=1.8,
    bulk_threshold_bytes=8 << 20,
    virtio=VirtioFeatures(csum=False, guest_csum=False, host_tso4=False, mrg_rxbuf=True, sg=True),
    virtio_costs=VirtioCosts(kick_s=10e-6, irq_s=12e-6, descriptor_s=0.3e-6),
)

#: RustyHermit with smoltcp, including this paper's improvements:
#: CSUM/GUEST_CSUM and MRG_RXBUF negotiated, fewer internal copies.
HERMIT_STACK = NetstackModel(
    name="hermit-smoltcp",
    tx_entry_s=0.7e-6,
    rx_entry_s=1.1e-6,
    tx_copies=1.1,
    rx_copies=1.2,
    copy_rate_Bps=4.0e9,
    tx_segment_s=38.0e-6,  # per-packet processing + ACK stalls past the window
    rx_segment_s=16.0e-6,
    rx_inefficiency=2.3,
    bulk_threshold_bytes=8 << 20,
    virtio=VirtioFeatures(csum=True, guest_csum=True, host_tso4=False, mrg_rxbuf=True, sg=True),
    virtio_costs=VirtioCosts(kick_s=10e-6, irq_s=13e-6, descriptor_s=0.25e-6),
)

# ---------------------------------------------------------------------------
# Platforms (rows of Table 1)
# ---------------------------------------------------------------------------


def native_c() -> Platform:
    """C application, Rocky Linux, no hypervisor, native network."""
    return Platform("C", "Rocky Linux", None, "native", NATIVE_STACK, C_PROFILE)


def native_rust() -> Platform:
    """Rust application, Rocky Linux, no hypervisor, native network."""
    return Platform("Rust", "Rocky Linux", None, "native", NATIVE_STACK, RUST_PROFILE)


def linux_vm(*, offloads: bool = True) -> Platform:
    """Rust application in a Fedora VM under QEMU with virtio networking.

    ``offloads=False`` reproduces the paper's ablation: TSO, transmit
    checksum offload and scatter-gather disabled (§4.2's 923.9 MiB/s
    observation).
    """
    stack = LINUX_VM_STACK
    if not offloads:
        stack = stack.with_virtio(
            VirtioFeatures(csum=False, guest_csum=True, host_tso4=False, mrg_rxbuf=True, sg=False)
        )
    return Platform("Linux VM", "Fedora VM", "QEMU", "virtio", stack, RUST_PROFILE)


def unikraft() -> Platform:
    """Rust application in a Unikraft unikernel under QEMU."""
    return Platform("Unikraft", "Unikraft", "QEMU", "virtio", UNIKRAFT_STACK, RUST_PROFILE)


def rustyhermit() -> Platform:
    """Rust application in a RustyHermit unikernel under QEMU."""
    return Platform("Hermit", "Hermit", "QEMU", "virtio", HERMIT_STACK, RUST_PROFILE)


def table1_platforms() -> list[Platform]:
    """The five evaluated configurations, in the paper's row order."""
    return [native_c(), native_rust(), linux_vm(), unikraft(), rustyhermit()]


def path_for(platform: Platform, link: LinkModel = EVAL_LINK) -> RpcPathModel:
    """RPC path from ``platform``'s node to the (native Linux) GPU node."""
    return RpcPathModel(client=platform, link=link, server_stack=NATIVE_STACK)


#: Per-RPC CPU cost of the Cricket server's dispatch loop (rpcgen skeleton,
#: argument demarshalling, CUDA call issue) on a GPU-node core.
CRICKET_SERVER_DISPATCH_S = 2.0e-6

#: The application node of the testbed (dual EPYC 7301).
APP_NODE = Node("app-node", has_gpu=False, core_copy_rate_Bps=3.0e9)
#: The GPU node of the testbed (dual EPYC 7313, A100 + 2xT4 + P40).
GPU_NODE = Node("gpu-node", has_gpu=True, core_copy_rate_Bps=3.4e9)


# ---------------------------------------------------------------------------
# Outlook configurations (the paper's §5 future work)
# ---------------------------------------------------------------------------


def rustyhermit_with_tso() -> Platform:
    """RustyHermit with TCP segmentation offload negotiated.

    The conclusion: "For both, RustyHermit and Unikraft, there are ongoing
    efforts to support TCP segmentation offloading, which we expect to
    increase performance significantly."  Flipping ``HOST_TSO4`` hands
    64 KiB chunks to the device instead of MTU-sized segments, so the
    per-segment streaming cost amortizes ~7x better -- the projection
    falls out of the same mechanistic model used everywhere else.
    """
    stack = HERMIT_STACK.with_virtio(
        VirtioFeatures(csum=True, guest_csum=True, host_tso4=True, mrg_rxbuf=True, sg=True)
    )
    return Platform("Hermit+TSO", "Hermit", "QEMU", "virtio", stack, RUST_PROFILE)


def unikraft_with_csum_offload() -> Platform:
    """Unikraft with the proposed checksum offload (paper footnote 4).

    Models https://github.com/unikraft/lib-lwip/pull/12 being merged:
    software checksumming leaves the per-byte path.
    """
    stack = UNIKRAFT_STACK.with_virtio(
        VirtioFeatures(csum=True, guest_csum=True, host_tso4=False, mrg_rxbuf=True, sg=True)
    )
    return Platform("Unikraft+CSUM", "Unikraft", "QEMU", "virtio", stack, RUST_PROFILE)


def rustyhermit_vdpa() -> Platform:
    """RustyHermit over vDPA (virtio data path acceleration).

    The paper's other outlook: "vDPA ... removes the virtualization
    overhead from the data path by allowing direct access to hardware
    queues for VMs and unikernels."  Modelled as near-zero kick/interrupt
    costs (hardware doorbells, no VM exits on the data path) on the
    otherwise unchanged RustyHermit stack.
    """
    from dataclasses import replace as _replace

    stack = _replace(
        HERMIT_STACK,
        virtio_costs=VirtioCosts(kick_s=0.8e-6, irq_s=1.2e-6, descriptor_s=0.15e-6),
    )
    return Platform("Hermit+vDPA", "Hermit", "QEMU", "virtio", stack, RUST_PROFILE)
