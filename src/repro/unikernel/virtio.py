"""Virtio-net device model: feature negotiation and per-operation costs.

The paper's virtualized configurations (Linux VM, Unikraft, RustyHermit)
reach the network through a QEMU/KVM virtio-net device on a TAP backend.
Which virtio features a guest negotiates decides how much per-byte and
per-segment work stays in software:

* ``VIRTIO_NET_F_CSUM`` / ``VIRTIO_NET_F_GUEST_CSUM`` -- transmit/receive
  checksum offload.  The paper *added* these to RustyHermit; Unikraft's
  lwIP port lacked checksum offload at the time (their footnote 4).
* ``VIRTIO_NET_F_HOST_TSO4`` -- TCP segmentation offload.  Neither unikernel
  supported it; its absence is the paper's main explanation for the
  bandwidth collapse in Figure 7.
* ``VIRTIO_NET_F_MRG_RXBUF`` -- mergeable receive buffers, reducing
  receive-side buffer management (added to RustyHermit by the paper).
* Scatter-gather (``VIRTIO_NET_F_SG`` in the historical naming) -- avoids
  linearizing skbs before transmission.

Costs below are per *operation* on the virtual device: a queue notification
("kick") costs a VM exit; each descriptor costs ring-processing work.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VirtioFeatures:
    """Negotiated virtio-net feature bits (the subset the paper discusses)."""

    csum: bool = True          # VIRTIO_NET_F_CSUM (transmit csum offload)
    guest_csum: bool = True    # VIRTIO_NET_F_GUEST_CSUM (receive csum offload)
    host_tso4: bool = True     # VIRTIO_NET_F_HOST_TSO4 (segmentation offload)
    mrg_rxbuf: bool = True     # VIRTIO_NET_F_MRG_RXBUF
    sg: bool = True            # scatter-gather transmission

    def describe(self) -> str:
        """Human-readable feature list (for Table 1-style reports)."""
        bits = [
            ("CSUM", self.csum),
            ("GUEST_CSUM", self.guest_csum),
            ("HOST_TSO4", self.host_tso4),
            ("MRG_RXBUF", self.mrg_rxbuf),
            ("SG", self.sg),
        ]
        on = [name for name, enabled in bits if enabled]
        return "+".join(on) if on else "none"


@dataclass(frozen=True)
class VirtioCosts:
    """CPU costs of driving the virtual device."""

    #: one guest->host queue notification (VM exit + vhost wakeup), seconds
    kick_s: float = 1.8e-6
    #: one host->guest interrupt (injection + guest handler + wakeup), seconds
    irq_s: float = 2.5e-6
    #: ring descriptor processing, per descriptor/chunk, seconds
    descriptor_s: float = 0.25e-6

    def __post_init__(self) -> None:  # pragma: no cover - dataclass guard
        if self.kick_s < 0 or self.irq_s < 0 or self.descriptor_s < 0:
            raise ValueError("virtio costs cannot be negative")
