"""External Data Representation (XDR, RFC 4506).

This subpackage implements the XDR serialization standard used by ONC RPC
(RFC 5531).  It provides three layers:

* :class:`~repro.xdr.encoder.XdrEncoder` / :class:`~repro.xdr.decoder.XdrDecoder`
  -- imperative pack/unpack primitives operating on a growing byte buffer,
  mirroring the classic ``xdrmem_create`` streams of Sun RPC.
* :mod:`repro.xdr.types` -- declarative type descriptors (structs, unions,
  variable arrays, optionals, ...) composed by the RPCL compiler
  (:mod:`repro.rpcl`) into full message codecs.
* :mod:`repro.xdr.errors` -- the exception hierarchy.

All quantities are encoded big-endian and padded to 4-byte alignment as the
RFC requires.
"""

from repro.xdr.decoder import XdrDecoder
from repro.xdr.encoder import XdrEncoder
from repro.xdr.errors import XdrDecodeError, XdrEncodeError, XdrError, XdrLimitError
from repro.xdr.types import (
    BOOL,
    DOUBLE,
    FLOAT,
    HYPER,
    INT,
    UHYPER,
    UINT,
    VOID,
    EnumType,
    FixedArray,
    FixedOpaque,
    OptionalType,
    StringType,
    StructField,
    StructType,
    UnionArm,
    UnionType,
    VarArray,
    VarOpaque,
    XdrType,
)

__all__ = [
    "XdrEncoder",
    "XdrDecoder",
    "XdrError",
    "XdrEncodeError",
    "XdrDecodeError",
    "XdrLimitError",
    "XdrType",
    "INT",
    "UINT",
    "HYPER",
    "UHYPER",
    "FLOAT",
    "DOUBLE",
    "BOOL",
    "VOID",
    "StringType",
    "VarOpaque",
    "FixedOpaque",
    "FixedArray",
    "VarArray",
    "OptionalType",
    "EnumType",
    "StructField",
    "StructType",
    "UnionArm",
    "UnionType",
]
