"""Imperative XDR unpacking (RFC 4506 section 4).

The decoder walks a bytes-like buffer with an explicit cursor.  Every unpack
method raises :class:`~repro.xdr.errors.XdrDecodeError` on truncation or
malformed padding rather than returning partial data.
"""

from __future__ import annotations

import struct

from repro.xdr.errors import XdrDecodeError, XdrLimitError

#: Hostile-input ceiling on a single declared string/opaque length when the
#: caller passes no explicit ``max_size``.  1 GiB covers the largest real
#: Cricket payloads (the paper's bandwidth runs memcpy 512 MiB in one call)
#: while still making a forged 4-byte length prefix (up to 4 GiB) harmless.
DEFAULT_MAX_ITEM_BYTES = 1 << 30

#: Hostile-input ceiling on a declared variable-array element count when the
#: caller passes no explicit ``max_size``.
DEFAULT_MAX_ARRAY_ITEMS = 1 << 20


class XdrDecoder:
    """Unpacks Python values from an XDR byte stream.

    Parameters
    ----------
    data:
        The encoded bytes.  The buffer is not copied; a ``memoryview`` is
        taken so slicing during decode is cheap.
    strict_padding:
        When true (the default), non-zero padding bytes are rejected as the
        RFC requires of conforming decoders.
    max_item_bytes:
        Ceiling applied to declared string/opaque lengths when the unpack
        call itself passes no ``max_size``.  Defaults to
        :data:`DEFAULT_MAX_ITEM_BYTES`; pass ``None`` to disable.
    max_array_items:
        Ceiling applied to declared variable-array element counts when the
        unpack call itself passes no ``max_size``.  Defaults to
        :data:`DEFAULT_MAX_ARRAY_ITEMS`; pass ``None`` to disable.
    """

    __slots__ = ("_mv", "_pos", "_strict", "_max_item_bytes", "_max_array_items")

    def __init__(
        self,
        data: bytes,
        *,
        strict_padding: bool = True,
        max_item_bytes: int | None = DEFAULT_MAX_ITEM_BYTES,
        max_array_items: int | None = DEFAULT_MAX_ARRAY_ITEMS,
    ) -> None:
        self._mv = memoryview(bytes(data))
        self._pos = 0
        self._strict = strict_padding
        self._max_item_bytes = max_item_bytes
        self._max_array_items = max_array_items

    @property
    def position(self) -> int:
        """Current cursor offset into the buffer."""
        return self._pos

    def remaining(self) -> int:
        """Number of not-yet-consumed bytes."""
        return len(self._mv) - self._pos

    def done(self) -> bool:
        """True when the whole buffer has been consumed."""
        return self._pos == len(self._mv)

    def assert_done(self) -> None:
        """Raise unless the buffer was fully consumed (trailing-bytes check)."""
        if not self.done():
            raise XdrDecodeError(
                f"{self.remaining()} trailing byte(s) after XDR message"
            )

    def _take(self, n: int) -> memoryview:
        if self.remaining() < n:
            raise XdrDecodeError(
                f"buffer exhausted: need {n} byte(s), have {self.remaining()}"
            )
        chunk = self._mv[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def _skip_padding(self, data_len: int) -> None:
        pad = (4 - data_len % 4) % 4
        if pad:
            padding = bytes(self._take(pad))
            if self._strict and padding != b"\x00" * pad:
                raise XdrDecodeError(f"non-zero XDR padding {padding!r}")

    # -- integral types ---------------------------------------------------

    def unpack_int(self) -> int:
        """Unpack a 32-bit signed integer."""
        return int.from_bytes(self._take(4), "big", signed=True)

    def unpack_uint(self) -> int:
        """Unpack a 32-bit unsigned integer."""
        return int.from_bytes(self._take(4), "big")

    def unpack_hyper(self) -> int:
        """Unpack a 64-bit signed integer."""
        return int.from_bytes(self._take(8), "big", signed=True)

    def unpack_uhyper(self) -> int:
        """Unpack a 64-bit unsigned integer."""
        return int.from_bytes(self._take(8), "big")

    def unpack_bool(self) -> bool:
        """Unpack an XDR boolean, rejecting values other than 0 and 1."""
        value = self.unpack_int()
        if value == 0:
            return False
        if value == 1:
            return True
        raise XdrDecodeError(f"invalid boolean encoding {value}")

    def unpack_enum(self) -> int:
        """Unpack an enum value (wire-identical to a signed int)."""
        return self.unpack_int()

    # -- floating point ----------------------------------------------------

    def unpack_float(self) -> float:
        """Unpack an IEEE 754 single-precision float."""
        return struct.unpack(">f", self._take(4))[0]

    def unpack_double(self) -> float:
        """Unpack an IEEE 754 double-precision float."""
        return struct.unpack(">d", self._take(8))[0]

    # -- opaque data and strings -------------------------------------------

    def unpack_fixed_opaque(self, size: int) -> bytes:
        """Unpack exactly ``size`` opaque bytes, consuming padding."""
        data = bytes(self._take(size))
        self._skip_padding(size)
        return data

    def unpack_opaque(self, max_size: int | None = None) -> bytes:
        """Unpack variable-length opaque data."""
        length = self.unpack_uint()
        if max_size is not None and length > max_size:
            raise XdrDecodeError(
                f"opaque longer than declared maximum ({length} > {max_size})"
            )
        if (
            max_size is None
            and self._max_item_bytes is not None
            and length > self._max_item_bytes
        ):
            raise XdrLimitError(
                f"opaque length {length} exceeds decoder limit "
                f"({self._max_item_bytes} bytes)"
            )
        if length > self.remaining():
            raise XdrDecodeError(
                f"opaque length {length} exceeds remaining buffer "
                f"({self.remaining()} bytes)"
            )
        return self.unpack_fixed_opaque(length)

    def unpack_string(self, max_size: int | None = None) -> str:
        """Unpack a UTF-8 string."""
        raw = self.unpack_opaque(max_size)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XdrDecodeError(f"invalid UTF-8 in XDR string: {exc}") from exc

    # -- structural helpers --------------------------------------------------

    def unpack_array_header(self, max_size: int | None = None) -> int:
        """Unpack and validate the element count of a variable-length array."""
        length = self.unpack_uint()
        if max_size is not None and length > max_size:
            raise XdrDecodeError(
                f"array longer than declared maximum ({length} > {max_size})"
            )
        if (
            max_size is None
            and self._max_array_items is not None
            and length > self._max_array_items
        ):
            raise XdrLimitError(
                f"array count {length} exceeds decoder limit "
                f"({self._max_array_items} items)"
            )
        return length

    def unpack_optional_flag(self) -> bool:
        """Unpack the presence flag of an XDR optional value."""
        return self.unpack_bool()
