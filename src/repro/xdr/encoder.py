"""Imperative XDR packing (RFC 4506 section 4).

The encoder appends to an internal :class:`bytearray`; call
:meth:`XdrEncoder.getvalue` to obtain the encoded bytes.  All multi-byte
quantities are big-endian and every item is padded to a multiple of four
bytes, as the standard mandates.
"""

from __future__ import annotations

import struct

from repro.xdr.errors import XdrEncodeError

_INT_MIN = -(2**31)
_INT_MAX = 2**31 - 1
_UINT_MAX = 2**32 - 1
_HYPER_MIN = -(2**63)
_HYPER_MAX = 2**63 - 1
_UHYPER_MAX = 2**64 - 1

_PAD = (b"", b"\x00\x00\x00", b"\x00\x00", b"\x00")


class XdrEncoder:
    """Packs Python values into an XDR byte stream.

    The pack methods mirror RFC 4506's primitive types.  Composite types
    (structs, unions, arrays of typed elements) are layered on top by
    :mod:`repro.xdr.types`.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def getvalue(self) -> bytes:
        """Return everything packed so far as immutable bytes."""
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def reset(self) -> None:
        """Discard all packed data, making the encoder reusable."""
        self._buf.clear()

    # -- integral types ---------------------------------------------------

    def pack_int(self, value: int) -> None:
        """Pack a 32-bit signed integer."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise XdrEncodeError(f"int expected, got {type(value).__name__}")
        if not _INT_MIN <= value <= _INT_MAX:
            raise XdrEncodeError(f"value {value} out of range for XDR int")
        self._buf += value.to_bytes(4, "big", signed=True)

    def pack_uint(self, value: int) -> None:
        """Pack a 32-bit unsigned integer."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise XdrEncodeError(f"int expected, got {type(value).__name__}")
        if not 0 <= value <= _UINT_MAX:
            raise XdrEncodeError(f"value {value} out of range for XDR unsigned int")
        self._buf += value.to_bytes(4, "big")

    def pack_hyper(self, value: int) -> None:
        """Pack a 64-bit signed integer (XDR ``hyper``)."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise XdrEncodeError(f"int expected, got {type(value).__name__}")
        if not _HYPER_MIN <= value <= _HYPER_MAX:
            raise XdrEncodeError(f"value {value} out of range for XDR hyper")
        self._buf += value.to_bytes(8, "big", signed=True)

    def pack_uhyper(self, value: int) -> None:
        """Pack a 64-bit unsigned integer (XDR ``unsigned hyper``)."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise XdrEncodeError(f"int expected, got {type(value).__name__}")
        if not 0 <= value <= _UHYPER_MAX:
            raise XdrEncodeError(f"value {value} out of range for XDR unsigned hyper")
        self._buf += value.to_bytes(8, "big")

    def pack_bool(self, value: bool) -> None:
        """Pack an XDR boolean (encoded as int 0 or 1)."""
        if not isinstance(value, (bool, int)):
            raise XdrEncodeError(f"bool expected, got {type(value).__name__}")
        self._buf += (b"\x00\x00\x00\x01" if value else b"\x00\x00\x00\x00")

    def pack_enum(self, value: int) -> None:
        """Pack an enum value (wire-identical to a signed int)."""
        self.pack_int(int(value))

    # -- floating point ----------------------------------------------------

    def pack_float(self, value: float) -> None:
        """Pack an IEEE 754 single-precision float."""
        try:
            self._buf += struct.pack(">f", value)
        except (struct.error, TypeError) as exc:
            raise XdrEncodeError(f"cannot pack {value!r} as float: {exc}") from exc

    def pack_double(self, value: float) -> None:
        """Pack an IEEE 754 double-precision float."""
        try:
            self._buf += struct.pack(">d", value)
        except (struct.error, TypeError) as exc:
            raise XdrEncodeError(f"cannot pack {value!r} as double: {exc}") from exc

    # -- opaque data and strings -------------------------------------------

    def pack_fixed_opaque(self, value: bytes, size: int) -> None:
        """Pack exactly ``size`` opaque bytes plus alignment padding."""
        data = bytes(value)
        if len(data) != size:
            raise XdrEncodeError(
                f"fixed opaque of size {size} expected, got {len(data)} bytes"
            )
        self._buf += data
        self._buf += _PAD[len(data) % 4]

    def pack_opaque(self, value: bytes, max_size: int | None = None) -> None:
        """Pack variable-length opaque data: a length word then padded bytes."""
        data = bytes(value)
        if max_size is not None and len(data) > max_size:
            raise XdrEncodeError(
                f"opaque longer than declared maximum ({len(data)} > {max_size})"
            )
        self.pack_uint(len(data))
        self._buf += data
        self._buf += _PAD[len(data) % 4]

    def pack_string(self, value: str, max_size: int | None = None) -> None:
        """Pack a string as UTF-8 encoded variable-length opaque data."""
        if not isinstance(value, str):
            raise XdrEncodeError(f"str expected, got {type(value).__name__}")
        self.pack_opaque(value.encode("utf-8"), max_size)

    # -- structural helpers --------------------------------------------------

    def pack_array_header(self, length: int, max_size: int | None = None) -> None:
        """Pack the element count of a variable-length array."""
        if length < 0:
            raise XdrEncodeError("array length cannot be negative")
        if max_size is not None and length > max_size:
            raise XdrEncodeError(
                f"array longer than declared maximum ({length} > {max_size})"
            )
        self.pack_uint(length)

    def pack_optional_flag(self, present: bool) -> None:
        """Pack the presence flag of an XDR optional (``*``) value."""
        self.pack_bool(present)

    def append_raw(self, data: bytes) -> None:
        """Append pre-encoded XDR bytes verbatim.

        ``data`` must already be 4-byte aligned; this is used to splice
        separately produced encodings (e.g. RPC body after RPC header).
        """
        if len(data) % 4 != 0:
            raise XdrEncodeError("raw XDR splice must be 4-byte aligned")
        self._buf += data
