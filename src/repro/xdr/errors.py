"""Exception hierarchy for the XDR codec."""


class XdrError(Exception):
    """Base class for all XDR serialization failures."""


class XdrEncodeError(XdrError):
    """A Python value cannot be represented in the requested XDR type.

    Raised for out-of-range integers, over-long strings/opaques, unknown enum
    members, and similar schema violations discovered while packing.
    """


class XdrDecodeError(XdrError):
    """The byte stream does not contain a valid encoding of the XDR type.

    Raised for truncated buffers, non-zero padding, out-of-range booleans,
    unknown enum values and over-long counted items discovered while
    unpacking.
    """
