"""Exception hierarchy for the XDR codec."""


class XdrError(Exception):
    """Base class for all XDR serialization failures."""


class XdrEncodeError(XdrError):
    """A Python value cannot be represented in the requested XDR type.

    Raised for out-of-range integers, over-long strings/opaques, unknown enum
    members, and similar schema violations discovered while packing.
    """


class XdrDecodeError(XdrError):
    """The byte stream does not contain a valid encoding of the XDR type.

    Raised for truncated buffers, non-zero padding, out-of-range booleans,
    unknown enum values and over-long counted items discovered while
    unpacking.
    """


class XdrLimitError(XdrDecodeError):
    """A declared length exceeds the decoder's hostile-input ceiling.

    Distinct from an ordinary :class:`XdrDecodeError` so servers can tell
    "the peer declared a 2 GiB string" (an attack or a grossly broken
    client -- map to GARBAGE_ARGS and move on) apart from garden-variety
    truncation.  Subclassing :class:`XdrDecodeError` keeps every existing
    ``except XdrError`` mapping (GARBAGE_ARGS in the server skeleton)
    working unchanged.
    """
