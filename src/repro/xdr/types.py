"""Declarative XDR type descriptors.

These objects describe a wire format once and provide symmetric
``encode``/``decode`` operations.  The RPCL compiler (:mod:`repro.rpcl`)
lowers interface specifications into compositions of these descriptors, and
the ONC RPC layer uses them for message headers.

Every descriptor implements the small :class:`XdrType` interface:

* ``encode(encoder, value)`` -- pack ``value`` onto an ``XdrEncoder``.
* ``decode(decoder)`` -- unpack and return a value from an ``XdrDecoder``.
* ``to_bytes(value)`` / ``from_bytes(data)`` -- one-shot conveniences.

Structs decode to dictionaries keyed by field name, unions to
``(discriminant, value)`` tuples, optionals to ``value | None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Protocol, Sequence, runtime_checkable

from repro.xdr.decoder import XdrDecoder
from repro.xdr.encoder import XdrEncoder
from repro.xdr.errors import XdrDecodeError, XdrEncodeError


@runtime_checkable
class XdrType(Protocol):
    """Minimal protocol every XDR type descriptor satisfies."""

    def encode(self, encoder: XdrEncoder, value: Any) -> None:
        """Pack ``value`` onto ``encoder``."""
        ...

    def decode(self, decoder: XdrDecoder) -> Any:
        """Unpack one value from ``decoder``."""
        ...


class _BaseType:
    """Shared conveniences for all descriptors."""

    def to_bytes(self, value: Any) -> bytes:
        """Encode ``value`` into a standalone byte string."""
        enc = XdrEncoder()
        self.encode(enc, value)
        return enc.getvalue()

    def from_bytes(self, data: bytes, *, exact: bool = True) -> Any:
        """Decode a value from ``data``.

        With ``exact`` (the default) trailing bytes raise
        :class:`~repro.xdr.errors.XdrDecodeError`.
        """
        dec = XdrDecoder(data)
        value = self.decode(dec)
        if exact:
            dec.assert_done()
        return value


class _Primitive(_BaseType):
    """A primitive type delegating to one encoder/decoder method pair."""

    __slots__ = ("name", "_enc", "_dec")

    def __init__(self, name: str, enc: str, dec: str) -> None:
        self.name = name
        self._enc = enc
        self._dec = dec

    def encode(self, encoder: XdrEncoder, value: Any) -> None:
        getattr(encoder, self._enc)(value)

    def decode(self, decoder: XdrDecoder) -> Any:
        return getattr(decoder, self._dec)()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<xdr {self.name}>"


class _Void(_BaseType):
    """The XDR ``void`` type: zero bytes on the wire, value is ``None``."""

    name = "void"

    def encode(self, encoder: XdrEncoder, value: Any) -> None:
        if value is not None:
            raise XdrEncodeError(f"void takes None, got {value!r}")

    def decode(self, decoder: XdrDecoder) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<xdr void>"


INT = _Primitive("int", "pack_int", "unpack_int")
UINT = _Primitive("unsigned int", "pack_uint", "unpack_uint")
HYPER = _Primitive("hyper", "pack_hyper", "unpack_hyper")
UHYPER = _Primitive("unsigned hyper", "pack_uhyper", "unpack_uhyper")
FLOAT = _Primitive("float", "pack_float", "unpack_float")
DOUBLE = _Primitive("double", "pack_double", "unpack_double")
BOOL = _Primitive("bool", "pack_bool", "unpack_bool")
VOID = _Void()


class StringType(_BaseType):
    """``string<max>`` -- a UTF-8 string with an optional length bound."""

    __slots__ = ("max_size",)

    def __init__(self, max_size: int | None = None) -> None:
        self.max_size = max_size

    def encode(self, encoder: XdrEncoder, value: str) -> None:
        encoder.pack_string(value, self.max_size)

    def decode(self, decoder: XdrDecoder) -> str:
        return decoder.unpack_string(self.max_size)


class VarOpaque(_BaseType):
    """``opaque<max>`` -- counted bytes with an optional length bound."""

    __slots__ = ("max_size",)

    def __init__(self, max_size: int | None = None) -> None:
        self.max_size = max_size

    def encode(self, encoder: XdrEncoder, value: bytes) -> None:
        encoder.pack_opaque(value, self.max_size)

    def decode(self, decoder: XdrDecoder) -> bytes:
        return decoder.unpack_opaque(self.max_size)


class FixedOpaque(_BaseType):
    """``opaque[n]`` -- exactly ``n`` bytes, padded to 4-byte alignment."""

    __slots__ = ("size",)

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("fixed opaque size cannot be negative")
        self.size = size

    def encode(self, encoder: XdrEncoder, value: bytes) -> None:
        encoder.pack_fixed_opaque(value, self.size)

    def decode(self, decoder: XdrDecoder) -> bytes:
        return decoder.unpack_fixed_opaque(self.size)


class FixedArray(_BaseType):
    """``T value[n]`` -- a fixed-length array of a homogeneous element type."""

    __slots__ = ("element", "size")

    def __init__(self, element: XdrType, size: int) -> None:
        if size < 0:
            raise ValueError("fixed array size cannot be negative")
        self.element = element
        self.size = size

    def encode(self, encoder: XdrEncoder, value: Sequence[Any]) -> None:
        if len(value) != self.size:
            raise XdrEncodeError(
                f"fixed array of {self.size} expected, got {len(value)} elements"
            )
        for item in value:
            self.element.encode(encoder, item)

    def decode(self, decoder: XdrDecoder) -> list[Any]:
        return [self.element.decode(decoder) for _ in range(self.size)]


class VarArray(_BaseType):
    """``T value<max>`` -- a counted array of a homogeneous element type."""

    __slots__ = ("element", "max_size")

    def __init__(self, element: XdrType, max_size: int | None = None) -> None:
        self.element = element
        self.max_size = max_size

    def encode(self, encoder: XdrEncoder, value: Sequence[Any]) -> None:
        encoder.pack_array_header(len(value), self.max_size)
        for item in value:
            self.element.encode(encoder, item)

    def decode(self, decoder: XdrDecoder) -> list[Any]:
        length = decoder.unpack_array_header(self.max_size)
        return [self.element.decode(decoder) for _ in range(length)]


class OptionalType(_BaseType):
    """``T *value`` -- XDR's optional, i.e. a bool-prefixed maybe-value."""

    __slots__ = ("element",)

    def __init__(self, element: XdrType) -> None:
        self.element = element

    def encode(self, encoder: XdrEncoder, value: Any | None) -> None:
        encoder.pack_optional_flag(value is not None)
        if value is not None:
            self.element.encode(encoder, value)

    def decode(self, decoder: XdrDecoder) -> Any | None:
        if decoder.unpack_optional_flag():
            return self.element.decode(decoder)
        return None


class EnumType(_BaseType):
    """``enum { NAME = value, ... }`` -- validated against the member set."""

    __slots__ = ("name", "members", "_values")

    def __init__(self, name: str, members: Mapping[str, int]) -> None:
        self.name = name
        self.members = dict(members)
        self._values = frozenset(self.members.values())

    def encode(self, encoder: XdrEncoder, value: int | str) -> None:
        if isinstance(value, str):
            try:
                value = self.members[value]
            except KeyError:
                raise XdrEncodeError(
                    f"{value!r} is not a member of enum {self.name}"
                ) from None
        if int(value) not in self._values:
            raise XdrEncodeError(f"{value} is not a member of enum {self.name}")
        encoder.pack_enum(int(value))

    def decode(self, decoder: XdrDecoder) -> int:
        value = decoder.unpack_enum()
        if value not in self._values:
            raise XdrDecodeError(f"{value} is not a member of enum {self.name}")
        return value

    def name_of(self, value: int) -> str:
        """Return the symbolic name of ``value`` within this enum."""
        for name, member in self.members.items():
            if member == value:
                return name
        raise KeyError(value)


@dataclass(frozen=True)
class StructField:
    """One named field of a :class:`StructType`."""

    name: str
    type: XdrType


class StructType(_BaseType):
    """``struct { ... }`` -- encodes/decodes as a field-name-keyed dict."""

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: Sequence[StructField]) -> None:
        self.name = name
        self.fields = tuple(fields)
        seen: set[str] = set()
        for field in self.fields:
            if field.name in seen:
                raise ValueError(f"duplicate field {field.name!r} in {name}")
            seen.add(field.name)

    def encode(self, encoder: XdrEncoder, value: Mapping[str, Any]) -> None:
        for field in self.fields:
            try:
                item = value[field.name]
            except (KeyError, TypeError):
                raise XdrEncodeError(
                    f"struct {self.name} missing field {field.name!r}"
                ) from None
            field.type.encode(encoder, item)

    def decode(self, decoder: XdrDecoder) -> dict[str, Any]:
        return {field.name: field.type.decode(decoder) for field in self.fields}


@dataclass(frozen=True)
class UnionArm:
    """One case of a discriminated union."""

    discriminant: int
    type: XdrType


class UnionType(_BaseType):
    """``union switch (T disc) { case ...; default: ... }``.

    Values are ``(discriminant, payload)`` tuples; ``payload`` is ``None``
    for void arms.
    """

    __slots__ = ("name", "discriminant_type", "arms", "default")

    def __init__(
        self,
        name: str,
        discriminant_type: XdrType,
        arms: Sequence[UnionArm],
        default: XdrType | None = None,
    ) -> None:
        self.name = name
        self.discriminant_type = discriminant_type
        self.arms = {arm.discriminant: arm.type for arm in arms}
        if len(self.arms) != len(arms):
            raise ValueError(f"duplicate union case in {name}")
        self.default = default

    def _arm_for(self, disc: int, *, decoding: bool) -> XdrType:
        arm = self.arms.get(disc, self.default)
        if arm is None:
            exc = XdrDecodeError if decoding else XdrEncodeError
            raise exc(f"union {self.name} has no arm for discriminant {disc}")
        return arm

    def encode(self, encoder: XdrEncoder, value: tuple[int, Any]) -> None:
        try:
            disc, payload = value
        except (TypeError, ValueError):
            raise XdrEncodeError(
                f"union {self.name} expects a (discriminant, value) tuple"
            ) from None
        arm = self._arm_for(int(disc), decoding=False)
        self.discriminant_type.encode(encoder, disc)
        arm.encode(encoder, payload)

    def decode(self, decoder: XdrDecoder) -> tuple[int, Any]:
        disc = self.discriminant_type.decode(decoder)
        arm = self._arm_for(int(disc), decoding=True)
        return int(disc), arm.decode(decoder)


class TransparentType(_BaseType):
    """Adapter mapping a custom Python object to/from an underlying type.

    Used by generated code to expose dataclasses instead of raw dicts while
    keeping the wire format defined by ``inner``.
    """

    __slots__ = ("inner", "_to_wire", "_from_wire")

    def __init__(
        self,
        inner: XdrType,
        to_wire: Callable[[Any], Any],
        from_wire: Callable[[Any], Any],
    ) -> None:
        self.inner = inner
        self._to_wire = to_wire
        self._from_wire = from_wire

    def encode(self, encoder: XdrEncoder, value: Any) -> None:
        self.inner.encode(encoder, self._to_wire(value))

    def decode(self, decoder: XdrDecoder) -> Any:
        return self._from_wire(self.inner.decode(decoder))
