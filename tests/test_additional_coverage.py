"""Additional edge-case coverage across the stack."""

import numpy as np
import pytest

from repro.gpu import A100, GpuDevice
from repro.gpu.kernels import DEFAULT_REGISTRY, Kernel, KernelCost, build_default_registry
from repro.oncrpc import LoopbackTransport, RpcServer
from repro.oncrpc.auth import AUTH_SYS, AuthSysParams
from repro.oncrpc.client import RpcClient
from repro.rpcl import ProgramInterface, generate_module, parse
from repro.rpcl.errors import RpclSemanticError

MIB = 1 << 20


class TestCodegenCorners:
    def test_python_keyword_identifiers_are_mangled(self):
        spec = """
        const class = 5;
        struct lambda { int import; };
        program PASS {
            version IF { lambda YIELD(lambda) = 1; } = 1;
        } = 0x20001111;
        """
        source = generate_module(spec)
        namespace: dict = {}
        exec(compile(source, "kw_gen.py", "exec"), namespace)
        assert namespace["class_"] == 5
        assert "lambda_" in namespace

    def test_generated_union_with_default(self):
        spec = """
        union maybe switch (int tag) {
        case 0: void;
        default: int value;
        };
        program P { version V { maybe GET(int) = 1; } = 1; } = 0x20001112;
        """
        source = generate_module(spec)
        namespace: dict = {}
        exec(compile(source, "u_gen.py", "exec"), namespace)
        maybe = namespace["maybe"]
        assert maybe.from_bytes(maybe.to_bytes((7, 42))) == (7, 42)
        assert maybe.from_bytes(maybe.to_bytes((0, None))) == (0, None)

    def test_generated_recursive_type(self):
        spec = """
        struct cell { int head; cell *tail; };
        program P { version V { int LEN(cell) = 1; } = 1; } = 0x20001113;
        """
        source = generate_module(spec)
        namespace: dict = {}
        exec(compile(source, "rec_gen.py", "exec"), namespace)
        cell = namespace["cell"]
        value = {"head": 1, "tail": {"head": 2, "tail": None}}
        assert cell.from_bytes(cell.to_bytes(value)) == value

    def test_generated_fixed_array_field(self):
        spec = "struct vec4 { float v[4]; };"
        source = generate_module(spec)
        namespace: dict = {}
        exec(compile(source, "arr_gen.py", "exec"), namespace)
        vec4 = namespace["vec4"]
        out = vec4.from_bytes(vec4.to_bytes({"v": [1.0, 2.0, 3.0, 4.0]}))
        assert out["v"] == [1.0, 2.0, 3.0, 4.0]

    def test_generated_client_multiple_versions(self):
        spec = """
        program MULTI {
            version V1 { int PING(void) = 1; } = 1;
            version V2 { int PING(void) = 1; int PONG(void) = 2; } = 2;
        } = 0x20001114;
        """
        source = generate_module(spec)
        namespace: dict = {}
        exec(compile(source, "mv_gen.py", "exec"), namespace)
        assert "MultiV1Client" in namespace
        assert "MultiV2Client" in namespace
        assert hasattr(namespace["MultiV2Client"], "PONG")


class TestAuthPropagation:
    def test_authsys_credential_reaches_handler(self):
        spec = """
        program WHO { version V { string WHOAMI(void) = 1; } = 1; } = 0x20001120;
        """
        iface = ProgramInterface.from_source(spec, "WHO", 1)

        def WHOAMI(ctx=None):
            params = AuthSysParams.from_opaque(ctx.cred)
            return f"{params.machinename}:{params.uid}"

        server = RpcServer()
        server.register_program(
            iface.prog_number, iface.vers_number,
            iface.make_server_dispatch({"WHOAMI": WHOAMI}),
        )
        cred = AuthSysParams(machinename="hermit-vm", uid=1234).to_opaque()
        client = RpcClient(
            LoopbackTransport(server.dispatch_record),
            iface.prog_number, iface.vers_number, cred=cred,
        )
        from repro.xdr import StringType, VOID

        assert client.call_typed(1, VOID, StringType(), None) == "hermit-vm:1234"

    def test_session_dict_persists_across_calls(self):
        server = RpcServer()

        def bump(args, ctx):
            ctx.session["n"] = ctx.session.get("n", 0) + 1
            return ctx.session["n"].to_bytes(4, "big")

        server.register_program(77, 1, {1: bump})
        session: dict = {}
        client = RpcClient(
            LoopbackTransport(lambda r: server.dispatch_record(r, session=session)),
            77, 1,
        )
        assert client.call_raw(1, b"") == (1).to_bytes(4, "big")
        assert client.call_raw(1, b"") == (2).to_bytes(4, "big")


class TestKernelCostModels:
    @pytest.fixture()
    def device(self):
        return GpuDevice(A100, mem_bytes=64 * MIB)

    def test_costs_scale_with_problem_size(self, device):
        from repro.gpu.kernels import LaunchContext

        registry = build_default_registry()
        kernel = registry.get("vectorAdd")
        small = LaunchContext(device, (1, 1, 1), (256, 1, 1), 0, (0, 0, 0, 1000))
        large = LaunchContext(device, (1, 1, 1), (256, 1, 1), 0, (0, 0, 0, 100_000))
        assert kernel.cost(large).flops > kernel.cost(small).flops
        assert kernel.cost(large).bytes_moved > kernel.cost(small).bytes_moved

    def test_nop_kernel_is_free(self, device):
        from repro.gpu.kernels import LaunchContext

        kernel = device.registry.get("_Z9nopKernelv")
        ctx = LaunchContext(device, (1, 1, 1), (1, 1, 1), 0, ())
        cost = kernel.cost(ctx)
        assert cost.flops == 0 and cost.bytes_moved == 0

    def test_registry_duplicate_rejected(self):
        registry = build_default_registry()
        with pytest.raises(ValueError):
            registry.register(Kernel("vectorAdd", ("ptr",), lambda ctx: None))

    def test_registry_replace_allowed(self):
        registry = build_default_registry()
        replacement = Kernel("vectorAdd", ("ptr", "ptr", "ptr", "i32"), lambda ctx: None)
        registry.register(replacement, replace=True)
        assert registry.get("vectorAdd") is replacement

    def test_registry_clone_is_independent(self):
        registry = build_default_registry()
        clone = registry.clone()
        clone.register(Kernel("extra", (), lambda ctx: None))
        assert "extra" in clone
        assert "extra" not in registry

    def test_default_registry_not_mutated_by_devices(self):
        before = set(DEFAULT_REGISTRY.names())
        device = GpuDevice(A100, mem_bytes=MIB)
        device.registry.register(Kernel("private", (), lambda ctx: None))
        assert set(DEFAULT_REGISTRY.names()) == before

    def test_invalid_param_kind_rejected(self):
        with pytest.raises(ValueError):
            Kernel("bad", ("blob",), lambda ctx: None)


class TestRpclMisc:
    def test_proc_with_void_result_and_args(self):
        spec = "program P { version V { void NOP(void) = 1; } = 1; } = 99;"
        iface = ProgramInterface.from_source(spec, "P", 1)
        server = RpcServer()
        server.register_program(
            iface.prog_number, iface.vers_number,
            iface.make_server_dispatch({"NOP": lambda: None}),
        )
        stub = iface.bind_client(LoopbackTransport(server.dispatch_record))
        assert stub.NOP() is None

    def test_opaque_as_bare_proc_type_rejected(self):
        spec = "program P { version V { opaque GET(void) = 1; } = 1; } = 99;"
        iface_spec = parse(spec)
        from repro.rpcl.compiler import SpecCompiler

        compiler = SpecCompiler(iface_spec)
        with pytest.raises(RpclSemanticError):
            compiler.signatures("P", 1)

    def test_quadruple_unsupported(self):
        spec = "struct q { quadruple x; };"
        parsed = parse(spec)
        from repro.rpcl.compiler import SpecCompiler
        from repro.rpcl.errors import RpclError

        with pytest.raises((RpclError, KeyError, Exception)):
            compiler = SpecCompiler(parsed)
            t = compiler.types["q"]
            t.to_bytes({"x": 1.0})


class TestDeviceEdgeCases:
    def test_memcpy_zero_bytes(self):
        device = GpuDevice(A100, mem_bytes=MIB)
        ptr = device.alloc(16)
        assert device.memcpy_h2d(ptr, b"") >= 0
        data, _ = device.memcpy_d2h(ptr, 0)
        assert data == b""

    def test_snapshot_of_empty_device(self):
        device = GpuDevice(A100, mem_bytes=MIB)
        blob = device.snapshot()
        target = GpuDevice(A100, mem_bytes=MIB)
        target.restore(blob)
        assert target.allocator.used_bytes == 0

    def test_view_dtype_convenience(self):
        device = GpuDevice(A100, mem_bytes=MIB)
        from repro.gpu.kernels import LaunchContext

        ptr = device.alloc(64)
        ctx = LaunchContext(device, (1, 1, 1), (1, 1, 1), 0, ())
        view = ctx.view(ptr, 64, np.float32)
        assert view.dtype == np.float32 and view.size == 16
