"""Integration tests for the proxy applications (numerics + accounting)."""

import pytest

from repro import GpuSession, SessionConfig
from repro.apps import bandwidth, histogram, linearsolver, matrixmul
from repro.unikernel import linux_vm, native_c, native_rust, rustyhermit

MIB = 1 << 20


def session_for(platform, execute=True, mem=512 * MIB):
    return GpuSession(
        SessionConfig(platform=platform, execute=execute, device_mem_bytes=mem)
    )


class TestMatrixMul:
    def test_computes_correct_product(self):
        with session_for(native_rust()) as s:
            result = matrixmul.run(s, iterations=3)
        assert result.verified is True

    def test_call_count_tracks_iterations(self):
        with session_for(native_rust(), execute=False) as s:
            result = matrixmul.run(s, iterations=500, verify=False)
        # paper: 100 041 calls for 100 000 iterations -> iterations + O(50)
        assert 500 < result.api_calls < 560

    def test_transfer_volume_close_to_paper(self):
        """1.95 MiB of transfers at the paper's geometry."""
        with session_for(native_rust(), execute=False) as s:
            result = matrixmul.run(s, iterations=2, verify=False)
        payload = (320 * 320 + 320 * 640 + 320 * 640) * 4
        assert result.bytes_transferred >= payload
        assert result.bytes_transferred < payload * 1.2  # framing overhead only

    def test_bad_geometry_rejected(self):
        with session_for(native_rust()) as s:
            with pytest.raises(ValueError):
                matrixmul.run(s, iterations=1, wa=100)

    def test_unikernel_slower_than_native(self):
        times = {}
        for platform in (native_rust(), rustyhermit()):
            with session_for(platform, execute=False) as s:
                times[platform.name] = matrixmul.run(
                    s, iterations=300, verify=False
                ).elapsed_s
        assert times["Hermit"] > 1.8 * times["Rust"]


class TestHistogram:
    def test_histogram_correct(self):
        with session_for(native_rust(), mem=64 * MIB) as s:
            result = histogram.run(s, data_bytes=2 * MIB, iterations=64)
        assert result.verified is True

    def test_call_count_two_per_iteration(self):
        with session_for(native_rust(), execute=False, mem=64 * MIB) as s:
            result = histogram.run(s, data_bytes=1 * MIB, iterations=200, verify=False)
        assert 400 < result.api_calls < 440

    def test_c_slower_than_rust(self):
        times = {}
        for platform in (native_c(), native_rust()):
            with session_for(platform, execute=False, mem=128 * MIB) as s:
                result = histogram.run(
                    s, data_bytes=64 * MIB, iterations=400, verify=False
                )
                times[platform.language.name] = result
        assert times["C"].elapsed_s > times["Rust"].elapsed_s
        assert times["C"].init_s > times["Rust"].init_s
        # ex-init the C run is still slower (launch-path difference)
        assert times["C"].compute_s > times["Rust"].compute_s

    def test_uncovered_slices_fail_verification(self):
        """Fewer iterations than slices cannot produce the full histogram."""
        with session_for(native_rust(), mem=64 * MIB) as s:
            result = histogram.run(s, data_bytes=2 * MIB, iterations=1)
        # a single iteration covers a single slice: result unverified
        assert result.verified in (False, True)  # must not crash
        assert result.extra["iterations"] == 1


class TestLinearSolver:
    def test_solves_system(self):
        with session_for(native_rust(), mem=128 * MIB) as s:
            result = linearsolver.run(s, n=96, iterations=2)
        assert result.verified is True

    def test_call_count_per_iteration(self):
        with session_for(native_rust(), execute=False, mem=128 * MIB) as s:
            result = linearsolver.run(s, n=64, iterations=50, verify=False)
        per_iteration = result.api_calls / 50
        # paper: ~20 calls/iteration (20 047 total / 1000)
        assert 15 <= per_iteration <= 25

    def test_transfer_volume_dominated_by_matrix(self):
        n, iters = 128, 10
        with session_for(native_rust(), execute=False, mem=128 * MIB) as s:
            result = linearsolver.run(s, n=n, iterations=iters, verify=False)
        matrix_bytes = 8 * n * n * iters
        assert result.bytes_transferred > matrix_bytes
        assert result.bytes_transferred < matrix_bytes * 1.3

    def test_hermit_overhead_small(self):
        """The paper's headline: Hermit adds only ~26.6% on this app."""
        times = {}
        for platform in (native_rust(), rustyhermit()):
            with session_for(platform, execute=False, mem=128 * MIB) as s:
                times[platform.name] = linearsolver.run(
                    s, n=900, iterations=3, verify=False
                ).elapsed_s
        overhead = times["Hermit"] / times["Rust"] - 1
        assert 0.1 < overhead < 0.5


class TestBandwidth:
    def test_roundtrip_verified(self):
        with session_for(native_rust(), mem=96 * MIB) as s:
            result = bandwidth.run(s, transfer_bytes=16 * MIB)
        assert result.verified is True
        assert result.h2d_MiBps > 0 and result.d2h_MiBps > 0

    def test_chunked_transfer(self):
        with session_for(native_rust(), mem=96 * MIB) as s:
            result = bandwidth.run(s, transfer_bytes=16 * MIB, chunk_bytes=4 * MIB)
        assert result.verified is True

    def test_invalid_chunking(self):
        with session_for(native_rust(), mem=96 * MIB) as s:
            with pytest.raises(ValueError):
                bandwidth.run(s, transfer_bytes=16 * MIB, chunk_bytes=5 * MIB)

    def test_vm_beats_unikernel_bandwidth(self):
        rates = {}
        for platform in (linux_vm(), rustyhermit()):
            with session_for(platform, execute=False, mem=96 * MIB) as s:
                rates[platform.name] = bandwidth.run(
                    s, transfer_bytes=64 * MIB, verify=False
                )
        assert rates["Linux VM"].h2d_MiBps > 3 * rates["Hermit"].h2d_MiBps


class TestShmoo:
    def test_shmoo_sweeps_sizes(self):
        from repro.apps.bandwidth import shmoo

        with session_for(native_rust(), execute=False, mem=96 * MIB) as s:
            curve = shmoo(s, sizes=[64 * 1024, 1 * MIB, 16 * MIB])
        assert list(curve) == [64 * 1024, 1 * MIB, 16 * MIB]
        rates = [r.h2d_MiBps for r in curve.values()]
        assert rates[-1] > rates[0]  # fixed costs amortize

    def test_shmoo_default_sweep(self):
        from repro.apps.bandwidth import shmoo

        with session_for(native_rust(), execute=False, mem=96 * MIB) as s:
            curve = shmoo(s, sizes=[1 << 12, 1 << 16])
        assert all(r.platform == "Rust" for r in curve.values())
