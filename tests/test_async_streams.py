"""Tests for stream-ordered operations: waits and async memcpys."""

import numpy as np
import pytest

from repro.cricket import CricketClient, CricketServer
from repro.cuda import constants as C
from repro.cuda.errors import CudaError
from repro.cuda.runtime import CudaRuntime
from repro.gpu import A100, GpuDevice
from repro.net import SimClock

MIB = 1 << 20


@pytest.fixture()
def rt():
    return CudaRuntime([GpuDevice(A100, mem_bytes=128 * MIB)], SimClock())


class TestStreamWaitEvent:
    def test_stream_waits_for_event(self, rt):
        device = rt.devices[0]
        _, s1 = rt.cudaStreamCreate()
        _, s2 = rt.cudaStreamCreate()
        _, ev = rt.cudaEventCreate()
        # long work on s1, record event at its tail
        n = 1 << 22
        _, a = rt.cudaMalloc(4 * n)
        _, b = rt.cudaMalloc(4 * n)
        _, c = rt.cudaMalloc(4 * n)
        rt.cudaLaunchKernel("vectorAdd", (n // 256, 1, 1), (256, 1, 1), (a, b, c, n), stream=s1)
        rt.cudaEventRecord(ev, s1)
        tail_s1 = device.streams.stream(s1).tail_ns
        # s2 is idle; after the wait its work cannot start before s1's tail
        assert rt.cudaStreamWaitEvent(s2, ev) == C.cudaSuccess
        rt.cudaLaunchKernel("_Z9nopKernelv", (1, 1, 1), (1, 1, 1), (), stream=s2)
        assert device.streams.stream(s2).tail_ns >= tail_s1

    def test_wait_on_unrecorded_event_is_noop(self, rt):
        _, s = rt.cudaStreamCreate()
        _, ev = rt.cudaEventCreate()
        before = rt.devices[0].streams.stream(s).tail_ns
        assert rt.cudaStreamWaitEvent(s, ev) == C.cudaSuccess
        assert rt.devices[0].streams.stream(s).tail_ns == before

    def test_wait_bad_handles(self, rt):
        assert rt.cudaStreamWaitEvent(99, 1) == C.cudaErrorInvalidResourceHandle
        _, s = rt.cudaStreamCreate()
        assert rt.cudaStreamWaitEvent(s, 99) == C.cudaErrorInvalidResourceHandle


class TestMemcpyAsync:
    def test_h2d_async_does_not_advance_clock(self, rt):
        _, ptr = rt.cudaMalloc(4 * MIB)
        _, stream = rt.cudaStreamCreate()
        before = rt.clock.now_ns
        err, _ = rt.cudaMemcpyAsync(ptr, b"\x01" * (4 * MIB), 4 * MIB,
                                    C.cudaMemcpyHostToDevice, stream)
        assert err == C.cudaSuccess
        assert rt.clock.now_ns == before
        # synchronizing charges the queued copy time
        rt.cudaStreamSynchronize(stream)
        assert rt.clock.now_ns > before

    def test_h2d_async_moves_data(self, rt):
        _, ptr = rt.cudaMalloc(1024)
        _, stream = rt.cudaStreamCreate()
        rt.cudaMemcpyAsync(ptr, b"\x2a" * 1024, 1024, C.cudaMemcpyHostToDevice, stream)
        rt.cudaStreamSynchronize(stream)
        _, data = rt.cudaMemcpy(0, ptr, 1024, C.cudaMemcpyDeviceToHost)
        assert data == b"\x2a" * 1024

    def test_d2h_async_returns_data(self, rt):
        _, ptr = rt.cudaMalloc(512)
        rt.cudaMemcpy(ptr, b"\x11" * 512, 512, C.cudaMemcpyHostToDevice)
        _, stream = rt.cudaStreamCreate()
        err, data = rt.cudaMemcpyAsync(0, ptr, 512, C.cudaMemcpyDeviceToHost, stream)
        assert err == C.cudaSuccess
        assert data == b"\x11" * 512

    def test_async_copies_queue_in_stream_order(self, rt):
        _, ptr = rt.cudaMalloc(8 * MIB)
        _, stream = rt.cudaStreamCreate()
        rt.cudaMemcpyAsync(ptr, b"\x00" * (8 * MIB), 8 * MIB,
                           C.cudaMemcpyHostToDevice, stream)
        tail1 = rt.devices[0].streams.stream(stream).tail_ns
        rt.cudaMemcpyAsync(ptr, b"\x00" * (8 * MIB), 8 * MIB,
                           C.cudaMemcpyHostToDevice, stream)
        tail2 = rt.devices[0].streams.stream(stream).tail_ns
        assert tail2 > tail1 * 1.5

    def test_async_invalid_direction(self, rt):
        err, _ = rt.cudaMemcpyAsync(1, 2, 4, 9, 0)
        assert err == C.cudaErrorInvalidMemcpyDirection

    def test_async_bad_stream(self, rt):
        _, ptr = rt.cudaMalloc(16)
        err, _ = rt.cudaMemcpyAsync(ptr, b"\x00" * 16, 16,
                                    C.cudaMemcpyHostToDevice, 42)
        assert err == C.cudaErrorInvalidResourceHandle


class TestAsyncOverRpc:
    def test_full_async_pipeline(self):
        """Upload, compute and download, all stream-ordered, over RPC."""
        server = CricketServer([GpuDevice(A100, mem_bytes=64 * MIB)])
        client = CricketClient.loopback(server)
        from repro.cubin import build_cubin_for_registry
        from repro.cubin.metadata import KernelMeta

        cubin = build_cubin_for_registry(server.device.registry, ["saxpy"])
        module = client.module_load(cubin)
        fn = client.get_function(
            module, "saxpy", KernelMeta.from_kinds("saxpy", ("ptr", "ptr", "f32", "i32"))
        )
        stream = client.stream_create()
        n = 1024
        x = client.malloc(4 * n)
        y = client.malloc(4 * n)
        client.memcpy_h2d_async(x, np.full(n, 3.0, np.float32).tobytes(), stream)
        client.memcpy_h2d_async(y, np.full(n, 1.0, np.float32).tobytes(), stream)
        client.launch_kernel(fn, (n // 256, 1, 1), (256, 1, 1), (y, x, 2.0, n), stream=stream)
        client.stream_synchronize(stream)
        out = np.frombuffer(client.memcpy_d2h_async(y, 4 * n, stream), np.float32)
        np.testing.assert_allclose(out, 7.0)

    def test_stream_wait_event_over_rpc(self):
        server = CricketServer()
        client = CricketClient.loopback(server)
        s1 = client.stream_create()
        s2 = client.stream_create()
        ev = client.event_create()
        client.event_record(ev, s1)
        client.stream_wait_event(s2, ev)  # no error
        with pytest.raises(CudaError):
            client.stream_wait_event(77, ev)
