"""Tests for ONC RPC batching and batched kernel launches."""

import numpy as np
import pytest

from repro.cricket import CricketClient, CricketServer
from repro.cubin import build_cubin_for_registry
from repro.cubin.metadata import KernelMeta
from repro.cuda.errors import CudaError
from repro.gpu import A100, GpuDevice
from repro.oncrpc import LoopbackTransport, RpcClient, RpcServer
from repro.unikernel import rustyhermit
from repro.xdr import XdrDecoder, XdrEncoder

MIB = 1 << 20

PROG, VERS = 0x20000042, 1


@pytest.fixture()
def counter_client():
    server = RpcServer()
    state = {"count": 0}

    def bump(args, ctx):
        dec = XdrDecoder(args)
        state["count"] += dec.unpack_int()
        return b""

    def get(args, ctx):
        enc = XdrEncoder()
        enc.pack_int(state["count"])
        return enc.getvalue()

    server.register_program(PROG, VERS, {1: bump, 2: get})
    return RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)


class TestRpcBatching:
    def test_batched_calls_execute_in_order(self, counter_client):
        for value in (1, 2, 3):
            enc = XdrEncoder()
            enc.pack_int(value)
            counter_client.call_batched(1, enc.getvalue())
        assert counter_client.pending_batched == 3
        counter_client.flush_batch()
        assert counter_client.pending_batched == 0
        raw = counter_client.call_raw(2, b"")
        assert XdrDecoder(raw).unpack_int() == 6

    def test_synchronous_call_flushes_pending(self, counter_client):
        enc = XdrEncoder()
        enc.pack_int(10)
        counter_client.call_batched(1, enc.getvalue())
        # synchronous call must drain the outstanding reply first
        raw = counter_client.call_raw(2, b"")
        assert XdrDecoder(raw).unpack_int() == 10
        assert counter_client.pending_batched == 0

    def test_flush_returns_results_in_order(self, counter_client):
        enc = XdrEncoder()
        enc.pack_int(5)
        counter_client.call_batched(1, enc.getvalue())
        counter_client.call_batched(2, b"")
        results = counter_client.flush_batch()
        assert results[0] == b""
        assert XdrDecoder(results[1]).unpack_int() == 5

    def test_flush_empty_is_noop(self, counter_client):
        assert counter_client.flush_batch() == []

    def test_batched_error_raises_at_flush(self, counter_client):
        from repro.oncrpc import RpcProcUnavailable

        counter_client.call_batched(99, b"")
        with pytest.raises(RpcProcUnavailable):
            counter_client.flush_batch()


class TestBatchedLaunches:
    def _setup(self, platform=None):
        server = CricketServer([GpuDevice(A100, mem_bytes=64 * MIB)])
        client = CricketClient.loopback(server, platform=platform)
        cubin = build_cubin_for_registry(server.device.registry, ["vectorAdd"])
        module = client.module_load(cubin)
        meta = KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))
        fn = client.get_function(module, "vectorAdd", meta)
        return server, client, fn

    def test_batched_launches_compute_correctly(self):
        server, client, fn = self._setup()
        n = 128
        a, b, c = (client.malloc(4 * n) for _ in range(3))
        client.memcpy_h2d(a, np.full(n, 1.0, np.float32).tobytes())
        client.memcpy_h2d(b, np.full(n, 1.0, np.float32).tobytes())
        for _ in range(10):
            # c = a + b, then a = b + c, alternating: still deterministic
            client.launch_kernel_batched(fn, (1, 1, 1), (128, 1, 1), (a, b, c, n))
        client.flush()
        client.device_synchronize()
        out = np.frombuffer(client.memcpy_d2h(c, 4 * n), np.float32)
        np.testing.assert_allclose(out, 2.0)

    def test_batching_cuts_unikernel_launch_latency(self):
        calls = 200

        def run(batched: bool) -> int:
            server, client, fn = self._setup(platform=rustyhermit())
            n = 64
            a, b, c = (client.malloc(4 * n) for _ in range(3))
            start = server.clock.now_ns
            for _ in range(calls):
                if batched:
                    client.launch_kernel_batched(fn, (1, 1, 1), (64, 1, 1), (a, b, c, n))
                else:
                    client.launch_kernel(fn, (1, 1, 1), (64, 1, 1), (a, b, c, n))
            if batched:
                client.flush()
            return server.clock.now_ns - start

        sync_ns = run(batched=False)
        batched_ns = run(batched=True)
        assert batched_ns < 0.6 * sync_ns

    def test_batched_launch_unknown_function(self):
        _server, client, _fn = self._setup()
        with pytest.raises(CudaError):
            client.launch_kernel_batched(999, (1, 1, 1), (1, 1, 1), ())

    def test_flush_surfaces_cuda_launch_error(self):
        server, client, fn = self._setup()
        # bad geometry -> launch fails on the server; flush must raise
        client._function_meta[fn] = client._function_meta[fn]
        client.launch_kernel_batched(fn, (0, 1, 1), (1, 1, 1), (1, 2, 3, 4))
        with pytest.raises(CudaError):
            client.flush()

    def test_flush_noop_without_pending(self):
        _server, client, _fn = self._setup()
        client.flush()  # nothing batched: no error
