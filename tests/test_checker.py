"""History checker against hand-crafted histories.

The simulation's end-to-end runs exercise the checker on real
histories; these tests pin its semantics on *constructed* ones, where
every event is explicit: valid histories (including the ambiguous
"maybe" worlds) must pass, and each seeded bug class must produce
exactly its violation kind.
"""

import pytest

from repro.cuda.errors import CudaError
from repro.oncrpc.errors import (
    RpcBusyError,
    RpcCallExpired,
    RpcCancelled,
    RpcNotLeaderError,
    RpcTransportError,
)
from repro.resilience.simulation import (
    BYTES_UNACCOUNTED,
    DOUBLE_EXECUTION,
    EPOCH_REGRESSION,
    LOST_ACKED_WRITE,
    OUTCOME_AMBIGUOUS,
    OUTCOME_BUSY,
    OUTCOME_CANCELLED,
    OUTCOME_CUDA_ERROR,
    OUTCOME_EXPIRED,
    OUTCOME_NOT_LEADER,
    OUTCOME_OK,
    POINTER_REUSE,
    USE_AFTER_FREE,
    HistoryChecker,
    HistoryEvent,
    classify_outcome,
)

PTR = 0x7000


class _History:
    """Tiny builder so each test reads as the story it checks."""

    def __init__(self):
        self.events = []
        self._op = 0

    def _append(self, **fields):
        self.events.append(
            HistoryEvent(index=len(self.events), t_ns=len(self.events), **fields)
        )

    def call(self, op, *, node="c0", outcome=OUTCOME_OK, value=None,
             ambiguous=False, epoch=None, **args):
        """An invoke/return pair for one client operation."""
        op_id = self._op
        self._op += 1
        self._append(kind="invoke", node=node, op=op, op_id=op_id, args=args)
        self._append(
            kind="return", node=node, op=op, op_id=op_id, outcome=outcome,
            value=value, ambiguous=ambiguous, epoch=epoch,
        )
        return self

    def execute(self, *, node="server", identity="c0", xid=1, replica=False):
        self._append(
            kind="execute", node=node, identity=identity, xid=xid,
            proc=6, stat=0, replica=replica,
        )
        return self

    def audit(self, used_bytes, *, node="server", alignment=256):
        self._append(
            kind="audit", node=node,
            args={"used_bytes": used_bytes, "alignment": alignment},
        )
        return self

    def check(self):
        return HistoryChecker().check(self.events)

    def kinds(self):
        return sorted({v.kind for v in self.check()})


class TestValidHistories:
    def test_empty_history(self):
        assert _History().check() == []

    def test_full_lifecycle_is_clean(self):
        h = (_History()
             .call("malloc", size=4096, value=PTR)
             .call("h2d", ptr=PTR, data="aa" * 64)
             .call("d2h", ptr=PTR, size=128, value="aa" * 64)
             .call("free", ptr=PTR)
             .audit(0))
        assert h.check() == []

    def test_distinct_executions_are_clean(self):
        h = (_History()
             .execute(xid=1).execute(xid=2)
             .execute(xid=1, identity="c1")
             .execute(xid=1, node="standby"))
        assert h.check() == []

    def test_replica_applies_are_exempt(self):
        h = _History().execute(xid=1).execute(xid=1, node="standby", replica=True)
        assert h.check() == []
        h.execute(xid=1, node="standby", replica=True)
        assert h.check() == []

    def test_ambiguous_write_widens_readback_set(self):
        # The torn world: the second write may or may not have landed, so
        # a readback of either payload is acceptable.
        old, new = "aa" * 64, "bb" * 64
        for readback in (old, new):
            h = (_History()
                 .call("malloc", size=4096, value=PTR)
                 .call("h2d", ptr=PTR, data=old)
                 .call("h2d", ptr=PTR, data=new,
                       outcome=OUTCOME_AMBIGUOUS, ambiguous=True)
                 .call("d2h", ptr=PTR, size=128, value=readback))
            assert h.check() == []

    def test_ambiguous_free_allows_both_worlds(self):
        # Freed-or-not limbo: neither a later successful write (proves
        # un-freed) nor a later successful free (proves the free landed
        # now) is a violation, and the audit accepts either byte count.
        write_after = (_History()
                       .call("malloc", size=4096, value=PTR)
                       .call("free", ptr=PTR,
                             outcome=OUTCOME_AMBIGUOUS, ambiguous=True)
                       .call("h2d", ptr=PTR, data="cc" * 16)
                       .audit(4096))
        assert write_after.check() == []
        free_after = (_History()
                      .call("malloc", size=4096, value=PTR)
                      .call("free", ptr=PTR,
                            outcome=OUTCOME_AMBIGUOUS, ambiguous=True)
                      .call("free", ptr=PTR)
                      .audit(0))
        assert free_after.check() == []

    def test_failed_ops_against_freed_pointer_are_clean(self):
        # A *refused* use-after-free is the system working.
        h = (_History()
             .call("malloc", size=4096, value=PTR)
             .call("free", ptr=PTR)
             .call("free", ptr=PTR, outcome=OUTCOME_CUDA_ERROR)
             .call("d2h", ptr=PTR, size=64, outcome=OUTCOME_CUDA_ERROR))
        assert h.check() == []

    def test_audit_accepts_ambiguous_alloc_slack(self):
        h = (_History()
             .call("malloc", size=4096, value=PTR)
             .call("malloc", size=4096, outcome=OUTCOME_AMBIGUOUS,
                   ambiguous=True)
             .audit(8192))
        assert h.check() == []
        assert _History().call(
            "malloc", size=4096, outcome=OUTCOME_AMBIGUOUS, ambiguous=True
        ).audit(0).check() == []


class TestInvalidHistories:
    def test_double_execution(self):
        h = _History().execute(xid=7).execute(xid=7)
        violations = h.check()
        assert [v.kind for v in violations] == [DOUBLE_EXECUTION]
        assert "xid 7" in violations[0].detail
        assert violations[0].node == "server"

    def test_lost_acked_write(self):
        h = (_History()
             .call("malloc", size=4096, value=PTR)
             .call("h2d", ptr=PTR, data="aa" * 64)
             .call("d2h", ptr=PTR, size=128, value="bb" * 64))
        assert h.kinds() == [LOST_ACKED_WRITE]

    def test_read_your_writes_across_reads(self):
        # A read is a linearization point: two successful reads with no
        # intervening write must agree.
        h = (_History()
             .call("malloc", size=4096, value=PTR)
             .call("d2h", ptr=PTR, size=64, value="11" * 16)
             .call("d2h", ptr=PTR, size=64, value="22" * 16))
        assert h.kinds() == [LOST_ACKED_WRITE]

    def test_use_after_free_read(self):
        h = (_History()
             .call("malloc", size=4096, value=PTR)
             .call("free", ptr=PTR)
             .call("d2h", ptr=PTR, size=64, value="aa"))
        assert h.kinds() == [USE_AFTER_FREE]

    def test_use_after_free_write_and_double_free(self):
        write = (_History()
                 .call("malloc", size=4096, value=PTR)
                 .call("free", ptr=PTR)
                 .call("h2d", ptr=PTR, data="aa"))
        assert write.kinds() == [USE_AFTER_FREE]
        double = (_History()
                  .call("malloc", size=4096, value=PTR)
                  .call("free", ptr=PTR)
                  .call("free", ptr=PTR))
        assert double.kinds() == [USE_AFTER_FREE]

    def test_pointer_reuse(self):
        h = (_History()
             .call("malloc", size=4096, value=PTR)
             .call("malloc", size=4096, value=PTR))
        assert h.kinds() == [POINTER_REUSE]

    def test_epoch_regression(self):
        h = (_History()
             .call("ping", epoch=2)
             .call("ping", epoch=1))
        violations = h.check()
        assert [v.kind for v in violations] == [EPOCH_REGRESSION]
        assert violations[0].node == "c0"

    def test_epoch_only_checked_on_ok(self):
        # A stale NOT_LEADER reply naming an old epoch is not regression.
        h = (_History()
             .call("ping", epoch=2)
             .call("ping", epoch=1, outcome=OUTCOME_NOT_LEADER))
        assert h.check() == []

    def test_bytes_unaccounted_above_and_below(self):
        leak = _History().call("malloc", size=4096, value=PTR).audit(8192)
        assert leak.kinds() == [BYTES_UNACCOUNTED]
        vanished = _History().call("malloc", size=4096, value=PTR).audit(0)
        assert vanished.kinds() == [BYTES_UNACCOUNTED]

    def test_violation_is_jsonable_and_anchored(self):
        violation = _History().execute(xid=3).execute(xid=3).check()[0]
        record = violation.to_jsonable()
        assert record["kind"] == DOUBLE_EXECUTION
        assert record["index"] == violation.index == 1


class TestClassifyOutcome:
    @pytest.mark.parametrize("exc,outcome", [
        (None, OUTCOME_OK),
        (RpcBusyError("shed"), OUTCOME_BUSY),
        (RpcNotLeaderError("fenced"), OUTCOME_NOT_LEADER),
        (RpcCallExpired("late"), OUTCOME_EXPIRED),
        (RpcCancelled("aborted"), OUTCOME_CANCELLED),
        (CudaError(2), OUTCOME_CUDA_ERROR),
    ])
    def test_unambiguous_outcomes(self, exc, outcome):
        got, ambiguous = classify_outcome(exc)
        assert got == outcome
        assert ambiguous is False

    @pytest.mark.parametrize("exc", [
        RpcTransportError("reset"),
        RuntimeError("anything else"),
    ])
    def test_transport_loss_is_ambiguous(self, exc):
        got, ambiguous = classify_outcome(exc)
        assert got == OUTCOME_AMBIGUOUS
        assert ambiguous is True
