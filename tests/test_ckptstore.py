"""Tests for the crash-consistent checkpoint store and blob validation."""

import os
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cricket import (
    CheckpointFormatError,
    CheckpointStore,
    CricketClient,
    CricketServer,
    FileStorage,
    load_checkpoint,
    save_checkpoint,
)
from repro.cricket.checkpoint import (
    FORMAT_VERSION,
    capture_server_state,
    restore_server,
    restore_server_state,
    snapshot_server,
    validate_checkpoint_blob,
)
from repro.cricket.ckptstore import (
    KIND_DELTA,
    KIND_FULL,
    decode_container,
    encode_container,
    _generation_name,
)
from repro.cricket.errors import CheckpointError
from repro.cricket.replication import state_fingerprint
from repro.gpu import A100, GpuDevice
from repro.resilience.faults import (
    FaultyStorage,
    StorageCrashError,
    StorageFaultPlan,
)

MIB = 1 << 20


def small_server() -> CricketServer:
    return CricketServer([GpuDevice(A100, mem_bytes=128 * MIB)])


def populated_server() -> tuple[CricketServer, CricketClient, int]:
    server = small_server()
    client = CricketClient.loopback(server)
    ptr = client.malloc(256 * 1024)
    client.memcpy_h2d(ptr, b"\x42" * 4096)
    return server, client, ptr


class TestContainerFormat:
    def test_roundtrip(self):
        sections = [("state", b"hello state"), ("extra", b"\x00" * 100)]
        blob = encode_container(KIND_FULL, 7, 0, sections)
        container = decode_container(blob)
        assert container.kind == KIND_FULL
        assert container.generation == 7
        assert container.base_generation == 0
        assert not container.is_delta
        assert container.sections["state"] == b"hello state"
        assert container.sections["extra"] == b"\x00" * 100
        assert container.manifest["sections"]["state"] == len(b"hello state")

    def test_delta_kind(self):
        blob = encode_container(KIND_DELTA, 3, 2, [("meta", b"m")])
        container = decode_container(blob)
        assert container.is_delta
        assert container.base_generation == 2

    def test_empty_blob_offset(self):
        with pytest.raises(CheckpointFormatError) as err:
            decode_container(b"")
        assert err.value.offset == 0

    def test_bad_magic_offset_zero(self):
        blob = bytearray(encode_container(KIND_FULL, 1, 0, [("state", b"x")]))
        blob[:4] = b"JUNK"
        with pytest.raises(CheckpointFormatError) as err:
            decode_container(bytes(blob))
        assert err.value.offset == 0
        assert "magic" in str(err.value)

    def test_torn_tail_offset_near_end(self):
        blob = encode_container(KIND_FULL, 1, 0, [("state", b"y" * 500)])
        torn = blob[: len(blob) // 2]
        with pytest.raises(CheckpointFormatError) as err:
            decode_container(torn)
        # a torn tail is located at/near the end of what remains
        assert err.value.offset >= len(torn) - 8

    def test_flipped_bit_is_located_midfile(self):
        blob = bytearray(encode_container(KIND_FULL, 1, 0, [("state", b"z" * 500)]))
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(CheckpointFormatError) as err:
            decode_container(bytes(blob))
        # whole-file CRC catches it first, pointing at the trailer
        assert err.value.offset > 0

    def test_error_message_carries_offset(self):
        err = CheckpointFormatError("boom", offset=17)
        assert "17" in str(err)
        assert err.offset == 17


class TestBlobValidation:
    def test_empty_blob(self):
        with pytest.raises(CheckpointFormatError) as err:
            validate_checkpoint_blob(b"")
        assert err.value.offset == 0

    def test_garbage_magic(self):
        with pytest.raises(CheckpointFormatError) as err:
            validate_checkpoint_blob(b"not a checkpoint")
        assert err.value.offset == 0

    def test_truncated_pickle_offset_is_length(self):
        server, _client, _ptr = populated_server()
        blob = snapshot_server(server)
        torn = blob[: len(blob) // 2]
        with pytest.raises(CheckpointFormatError) as err:
            validate_checkpoint_blob(torn)
        assert err.value.offset == len(torn)

    def test_restore_server_rejects_torn_blob_typed(self):
        server, _client, _ptr = populated_server()
        blob = snapshot_server(server)
        with pytest.raises(CheckpointFormatError):
            restore_server(small_server(), blob[:-10])

    def test_valid_blob_passes(self):
        server, _client, _ptr = populated_server()
        validate_checkpoint_blob(snapshot_server(server))


class TestBlobVersions:
    def test_v2_roundtrip(self):
        server, _client, ptr = populated_server()
        state = capture_server_state(server)
        assert state["version"] == FORMAT_VERSION
        restored = small_server()
        restore_server_state(restored, state)
        assert state_fingerprint(restored) == state_fingerprint(server)

    def test_v1_blob_still_restores(self):
        server, _client, ptr = populated_server()
        state = capture_server_state(server)
        # a version-1 blob predates the reply cache and session table
        state["version"] = 1
        state.pop("reply_cache", None)
        state.pop("sessions", None)
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        restored = small_server()
        restore_server(restored, blob)
        client = CricketClient.loopback(restored)
        assert client.memcpy_d2h(ptr, 4096) == b"\x42" * 4096

    def test_unknown_version_rejected(self):
        server, _client, _ptr = populated_server()
        state = capture_server_state(server)
        state["version"] = 99
        with pytest.raises(CheckpointFormatError) as err:
            restore_server_state(small_server(), state)
        assert err.value.offset == 1


class TestAtomicSave:
    def test_no_temp_files_left_behind(self, tmp_path):
        server, _client, _ptr = populated_server()
        path = str(tmp_path / "cricket.ckpt")
        save_checkpoint(server, path)
        assert sorted(os.listdir(tmp_path)) == ["cricket.ckpt"]

    def test_failed_replace_preserves_old_checkpoint(self, tmp_path, monkeypatch):
        server, client, ptr = populated_server()
        path = str(tmp_path / "cricket.ckpt")
        save_checkpoint(server, path)
        good = open(path, "rb").read()
        client.memcpy_h2d(ptr, b"\x99" * 4096)

        def exploding_replace(src, dst):
            raise OSError("injected crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_checkpoint(server, path)
        monkeypatch.undo()
        # the old checkpoint is untouched and no temp files linger
        assert open(path, "rb").read() == good
        assert sorted(os.listdir(tmp_path)) == ["cricket.ckpt"]
        restored = small_server()
        load_checkpoint(restored, path)
        client2 = CricketClient.loopback(restored)
        assert client2.memcpy_d2h(ptr, 4096) == b"\x42" * 4096


class TestCheckpointStore:
    def test_full_save_restore(self, tmp_path):
        server, _client, _ptr = populated_server()
        store = CheckpointStore(str(tmp_path))
        generation = store.save_full(server)
        assert generation == 1
        restored = small_server()
        assert CheckpointStore(str(tmp_path)).restore_latest(restored) == 1
        assert state_fingerprint(restored) == state_fingerprint(server)

    def test_delta_chain_restores_exactly(self, tmp_path):
        server, client, ptr = populated_server()
        store = CheckpointStore(str(tmp_path))
        store.save_full(server)
        client.memset(ptr + 128, 0xAB, 64)
        ptr2 = client.malloc(64 * 1024)
        client.memcpy_h2d(ptr2, b"\x11" * 1024)
        store.save_delta(server)
        client.free(ptr2)  # the next delta must drop it again
        store.save_delta(server)
        restored = small_server()
        CheckpointStore(str(tmp_path)).restore_latest(restored)
        assert state_fingerprint(restored) == state_fingerprint(server)

    def test_delta_without_base_raises(self, tmp_path):
        server, _client, _ptr = populated_server()
        with pytest.raises(CheckpointError):
            CheckpointStore(str(tmp_path)).save_delta(server)

    def test_save_picks_delta_after_full(self, tmp_path):
        server, _client, _ptr = populated_server()
        store = CheckpointStore(str(tmp_path))
        g1 = store.save(server)
        g2 = store.save(server)
        first = decode_container(store.storage.read(_generation_name(g1)))
        second = decode_container(store.storage.read(_generation_name(g2)))
        assert not first.is_delta
        assert second.is_delta
        assert second.base_generation == g1

    def test_delta_is_smaller_than_full(self, tmp_path):
        server, client, ptr = populated_server()
        client.memcpy_h2d(ptr, b"\x55" * (256 * 1024))  # bulk payload
        store = CheckpointStore(str(tmp_path))
        g1 = store.save_full(server)
        client.memset(ptr, 0x01, 16)  # dirty a single page
        g2 = store.save_delta(server)
        full_size = len(store.storage.read(_generation_name(g1)))
        delta_size = len(store.storage.read(_generation_name(g2)))
        assert delta_size < full_size

    def test_torn_newest_falls_back_to_previous(self, tmp_path):
        server, client, ptr = populated_server()
        store = CheckpointStore(str(tmp_path))
        g1 = store.save_full(server)
        fingerprint = state_fingerprint(server)
        client.memset(ptr, 0xEE, 256)
        g2 = store.save_full(server)
        # tear the newest generation in half
        name = _generation_name(g2)
        blob = store.storage.read(name)
        path = tmp_path / name
        path.write_bytes(blob[: len(blob) // 2])
        restored = small_server()
        recovery = CheckpointStore(str(tmp_path), stats=restored.server_stats)
        assert recovery.restore_latest(restored) == g1
        assert state_fingerprint(restored) == fingerprint
        assert restored.server_stats.checkpoint_fallbacks == 1

    def test_all_generations_corrupt_raises(self, tmp_path):
        server, _client, _ptr = populated_server()
        store = CheckpointStore(str(tmp_path))
        store.save_full(server)
        for name in os.listdir(tmp_path):
            (tmp_path / name).write_bytes(b"JUNK")
        with pytest.raises(CheckpointError):
            CheckpointStore(str(tmp_path)).load_state()

    def test_compaction_equivalent_and_prunes(self, tmp_path):
        server, client, ptr = populated_server()
        store = CheckpointStore(str(tmp_path))
        store.save_full(server)
        client.memset(ptr, 0x01, 32)
        store.save_delta(server)
        client.memset(ptr + 4096, 0x02, 32)
        store.save_delta(server)
        fingerprint = state_fingerprint(server)
        compacted = store.compact()
        assert store.generations() == [compacted]
        restored = small_server()
        CheckpointStore(str(tmp_path)).restore_latest(restored)
        assert state_fingerprint(restored) == fingerprint

    def test_retention_keeps_delta_bases(self, tmp_path):
        server, client, ptr = populated_server()
        store = CheckpointStore(str(tmp_path), retain=2)
        base = store.save_full(server)
        for i in range(4):
            client.memset(ptr + i * 4096, i + 1, 32)
            store.save_delta(server)
        kept = store.generations()
        # the newest two plus the transitive bases of any kept delta
        assert len(kept) >= 2
        assert base in kept  # every delta chains back to the only full
        restored = small_server()
        CheckpointStore(str(tmp_path)).restore_latest(restored)
        assert state_fingerprint(restored) == state_fingerprint(server)

    def test_failed_delta_remarks_dirty_pages(self, tmp_path):
        server, client, ptr = populated_server()
        faulty = FaultyStorage(
            FileStorage(str(tmp_path)), StorageFaultPlan(seed=1)
        )
        store = CheckpointStore(storage=faulty)
        store.save_full(server)
        client.memset(ptr, 0x77, 8192)
        dirty_before = server.device.dirty_bytes
        assert dirty_before > 0
        faulty._enospc_left = 1
        with pytest.raises(OSError):
            store.save_delta(server)
        # the failed save must not have narrowed the next checkpoint
        assert server.device.dirty_bytes == dirty_before
        generation = store.save_delta(server)
        restored = small_server()
        CheckpointStore(str(tmp_path)).restore_latest(restored)
        assert state_fingerprint(restored) == state_fingerprint(server)
        assert generation == 2


class TestStorageFaults:
    def test_torn_write_leaves_prefix(self, tmp_path):
        faulty = FaultyStorage(
            FileStorage(str(tmp_path)), StorageFaultPlan(torn_write_next=1, seed=3)
        )
        with pytest.raises(StorageCrashError):
            faulty.write_atomic("f", b"A" * 1000)
        torn = faulty.read("f")
        assert 0 < len(torn) < 1000
        assert torn == b"A" * len(torn)

    def test_crash_before_rename_keeps_old(self, tmp_path):
        faulty = FaultyStorage(FileStorage(str(tmp_path)), StorageFaultPlan(seed=3))
        faulty.write_atomic("f", b"old content")
        faulty._crash_left = 1
        with pytest.raises(StorageCrashError):
            faulty.write_atomic("f", b"new content")
        assert faulty.read("f") == b"old content"

    def test_enospc_writes_nothing(self, tmp_path):
        faulty = FaultyStorage(
            FileStorage(str(tmp_path)), StorageFaultPlan(enospc_next=1, seed=3)
        )
        with pytest.raises(OSError):
            faulty.write_atomic("f", b"data")
        assert not faulty.exists("f")

    def test_bit_flip_detected_by_store(self, tmp_path):
        server, client, ptr = populated_server()
        faulty = FaultyStorage(FileStorage(str(tmp_path)), StorageFaultPlan(seed=3))
        store = CheckpointStore(storage=faulty)
        g1 = store.save_full(server)
        client.memset(ptr, 0x31, 64)
        faulty._flip_left = 1
        g2 = store.save_full(server)  # silently corrupted on disk
        assert g2 > g1
        restored = small_server()
        recovery = CheckpointStore(str(tmp_path), stats=restored.server_stats)
        assert recovery.restore_latest(restored) == g1
        assert restored.server_stats.checkpoint_fallbacks == 1

    def test_partial_read_detected(self, tmp_path):
        server, _client, _ptr = populated_server()
        store = CheckpointStore(str(tmp_path))
        store.save_full(server)
        faulty = FaultyStorage(
            FileStorage(str(tmp_path)),
            StorageFaultPlan(partial_read_next=1, seed=3),
        )
        with pytest.raises((CheckpointError, CheckpointFormatError)):
            CheckpointStore(storage=faulty).load_state()


class TestDirtyTracking:
    def test_writes_mark_pages_dirty(self):
        server, client, ptr = populated_server()
        server.device.allocator.clear_dirty()
        assert server.device.dirty_bytes == 0
        client.memset(ptr, 0x01, 64)
        assert server.device.dirty_bytes > 0

    def test_reads_do_not_mark(self):
        server, client, ptr = populated_server()
        server.device.allocator.clear_dirty()
        client.memcpy_d2h(ptr, 4096)
        assert server.device.dirty_bytes == 0

    def test_fragments_cover_only_live_allocations(self):
        server, client, _ptr = populated_server()
        ptr2 = client.malloc(64 * 1024)
        client.memcpy_h2d(ptr2, b"\x01" * 1024)
        client.free(ptr2)
        fragments = server.device.delta_fragments()
        for addr, data in fragments:
            assert not (ptr2 <= addr < ptr2 + 64 * 1024) or addr < ptr2

    def test_restore_marks_everything_dirty(self):
        server, _client, _ptr = populated_server()
        blob = snapshot_server(server)
        restored = small_server()
        restore_server(restored, blob)
        # the next delta after a restore must cover all live memory
        assert restored.device.dirty_bytes > 0


# -- hypothesis property: snapshot -> restore reproduces the fingerprint --

_OPS = st.lists(
    st.one_of(
        # allocations are at least 16 bytes so the fixed-size memset fits
        st.tuples(st.just("malloc"), st.integers(16, 64 * 1024)),
        st.tuples(st.just("memset"), st.integers(0, 255)),
        st.tuples(st.just("free"), st.integers(0, 7)),
        st.tuples(st.just("stream"), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)


class TestSnapshotProperty:
    @given(ops=_OPS, use_store=st.booleans())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_restore_reproduces_fingerprint(self, tmp_path_factory, ops, use_store):
        server = small_server()
        client = CricketClient.loopback(server)
        live: list[int] = []
        for op, arg in ops:
            if op == "malloc":
                live.append(client.malloc(arg))
            elif op == "memset" and live:
                client.memset(live[-1], arg, 16)
            elif op == "free" and live:
                client.free(live.pop(arg % len(live)))
            elif op == "stream":
                client.stream_create()
        fingerprint = state_fingerprint(server)
        restored = small_server()
        if use_store:
            directory = str(tmp_path_factory.mktemp("store"))
            store = CheckpointStore(directory)
            store.save_full(server)
            CheckpointStore(directory).restore_latest(restored)
        else:
            restore_server(restored, snapshot_server(server))
        assert state_fingerprint(restored) == fingerprint
