"""Tests for generated server skeletons and CUDA sticky-error semantics."""

import pytest

from repro.cricket import CricketClient, CricketServer
from repro.cuda import constants as C
from repro.cuda.runtime import CudaRuntime
from repro.gpu import A100, GpuDevice
from repro.oncrpc import LoopbackTransport, RpcServer
from repro.rpcl import generate_module

MIB = 1 << 20

SPEC = """
struct point { int x; int y; };
program GEO {
    version V1 {
        int    MANHATTAN(point, point) = 1;
        point  MIDPOINT(point, point)  = 2;
        void   PING(void)              = 3;
    } = 1;
} = 0x20003002;
"""


class GeoImpl:
    def MANHATTAN(self, a, b):
        return abs(a["x"] - b["x"]) + abs(a["y"] - b["y"])

    def MIDPOINT(self, a, b):
        return {"x": (a["x"] + b["x"]) // 2, "y": (a["y"] + b["y"]) // 2}

    def PING(self):
        return None


@pytest.fixture()
def generated():
    namespace: dict = {}
    exec(compile(generate_module(SPEC), "geo_gen.py", "exec"), namespace)
    return namespace


class TestGeneratedServerSkeleton:
    def test_server_class_emitted(self, generated):
        assert "GeoV1Server" in generated
        assert generated["GeoV1Server"].PROGRAM == 0x20003002

    def test_end_to_end_generated_both_sides(self, generated):
        server = RpcServer()
        generated["GeoV1Server"].register(server, GeoImpl())
        client = generated["GeoV1Client"](LoopbackTransport(server.dispatch_record))
        assert client.MANHATTAN({"x": 0, "y": 0}, {"x": 3, "y": 4}) == 7
        assert client.MIDPOINT({"x": 0, "y": 0}, {"x": 10, "y": 20}) == {"x": 5, "y": 10}
        assert client.PING() is None
        client.close()

    def test_generated_handler_rejects_garbage_args(self, generated):
        from repro.oncrpc import RpcGarbageArgs, RpcClient

        server = RpcServer()
        generated["GeoV1Server"].register(server, GeoImpl())
        raw = RpcClient(LoopbackTransport(server.dispatch_record), 0x20003002, 1)
        with pytest.raises(RpcGarbageArgs):
            raw.call_raw(1, b"\x00\x00\x00\x01")  # half a point

    def test_multiple_registrations_coexist(self, generated):
        server = RpcServer()
        generated["GeoV1Server"].register(server, GeoImpl())
        server.register_program(42, 1, {1: lambda a, c: a})
        client = generated["GeoV1Client"](LoopbackTransport(server.dispatch_record))
        assert client.MANHATTAN({"x": 1, "y": 1}, {"x": 1, "y": 1}) == 0


class TestStickyErrors:
    @pytest.fixture()
    def rt(self):
        return CudaRuntime([GpuDevice(A100, mem_bytes=MIB)])

    def test_initially_success(self, rt):
        assert rt.cudaGetLastError() == C.cudaSuccess

    def test_failed_launch_sets_error(self, rt):
        rt.cudaLaunchKernel("ghostKernel", (1, 1, 1), (1, 1, 1), ())
        assert rt.cudaPeekAtLastError() == C.cudaErrorInvalidKernelImage
        # peek does not clear
        assert rt.cudaPeekAtLastError() == C.cudaErrorInvalidKernelImage
        # get clears
        assert rt.cudaGetLastError() == C.cudaErrorInvalidKernelImage
        assert rt.cudaGetLastError() == C.cudaSuccess

    def test_failed_free_sets_error(self, rt):
        rt.cudaFree(0xBAD)
        assert rt.cudaGetLastError() == C.cudaErrorInvalidDevicePointer

    def test_success_does_not_clear_sticky(self, rt):
        rt.cudaLaunchKernel("ghostKernel", (1, 1, 1), (1, 1, 1), ())
        rt.cudaGetDeviceCount()  # a successful call in between
        assert rt.cudaPeekAtLastError() == C.cudaErrorInvalidKernelImage

    def test_over_rpc(self):
        server = CricketServer()
        client = CricketClient.loopback(server)
        assert client.get_last_error() == C.cudaSuccess
        from repro.cuda.errors import CudaError

        with pytest.raises(CudaError):
            client.free(0xBAD)
        assert client.peek_last_error() == C.cudaErrorInvalidDevicePointer
        assert client.get_last_error() == C.cudaErrorInvalidDevicePointer
        assert client.get_last_error() == C.cudaSuccess
