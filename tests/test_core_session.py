"""Unit and integration tests for the core public API (GpuSession)."""

import numpy as np
import pytest

from repro import (
    DeviceBuffer,
    DoubleFreeClientError,
    GpuSession,
    SessionConfig,
    UseAfterFreeError,
)
from repro.unikernel import linux_vm, native_rust, rustyhermit

MIB = 1 << 20


@pytest.fixture()
def session():
    with GpuSession(SessionConfig(device_mem_bytes=128 * MIB)) as s:
        yield s


class TestSessionBasics:
    def test_default_config_is_native_rust(self, session):
        assert session.config.platform.name == "Rust"
        assert session.client.get_device_count() == 1

    def test_platform_selection(self):
        with GpuSession(SessionConfig(platform=rustyhermit(), device_mem_bytes=MIB)) as s:
            assert s.config.platform.os_name == "Hermit"
            s.client.get_device_count()
            assert s.clock.now_ns > 0

    def test_api_call_counter(self, session):
        session.client.get_device_count()
        session.client.get_device_count()
        assert session.api_calls == 2

    def test_measure_spans_virtual_time(self, session):
        with session.measure() as span:
            session.client.get_device_count()
        assert span.elapsed_ns > 0

    def test_charge_host_cpu(self, session):
        before = session.clock.now_ns
        session.charge_host_cpu(1e-3)
        assert session.clock.now_ns - before == pytest.approx(1e6)
        with pytest.raises(ValueError):
            session.charge_host_cpu(-1)

    def test_generate_input_uses_language_rate(self):
        from repro.unikernel import native_c

        times = {}
        for platform in (native_c(), native_rust()):
            with GpuSession(SessionConfig(platform=platform, device_mem_bytes=MIB)) as s:
                before = s.clock.now_ns
                s.generate_input(64 * MIB)
                times[platform.language.name] = s.clock.now_ns - before
        assert times["C"] > 3 * times["Rust"]


class TestDeviceBufferLifetimes:
    def test_alloc_write_read(self, session):
        buffer = session.alloc(1024)
        buffer.write(b"\xab" * 1024)
        assert buffer.read() == b"\xab" * 1024
        buffer.free()

    def test_upload_helper(self, session):
        data = np.arange(100, dtype=np.float32)
        buffer = session.upload(data)
        np.testing.assert_array_equal(buffer.read_array(np.float32), data)

    def test_use_after_free(self, session):
        buffer = session.alloc(64)
        buffer.free()
        with pytest.raises(UseAfterFreeError):
            buffer.read()
        with pytest.raises(UseAfterFreeError):
            buffer.write(b"x" * 64)
        with pytest.raises(UseAfterFreeError):
            _ = buffer.ptr

    def test_double_free(self, session):
        buffer = session.alloc(64)
        buffer.free()
        with pytest.raises(DoubleFreeClientError):
            buffer.free()

    def test_lifetime_errors_raised_client_side(self, session):
        """No RPC reaches the server for a lifetime violation."""
        buffer = session.alloc(64)
        buffer.free()
        calls = session.api_calls
        with pytest.raises(UseAfterFreeError):
            buffer.read()
        assert session.api_calls == calls

    def test_context_manager_frees(self, session):
        with session.alloc(64) as buffer:
            buffer.write(b"y" * 64)
        assert buffer.freed

    def test_context_manager_no_double_free_after_explicit(self, session):
        with session.alloc(64) as buffer:
            buffer.free()
        assert buffer.freed

    def test_offset_bounds_checked(self, session):
        buffer = session.alloc(100)
        with pytest.raises(ValueError):
            buffer.write(b"x" * 50, offset=60)
        with pytest.raises(ValueError):
            buffer.read(50, offset=60)

    def test_fill_and_copy_to(self, session):
        a = session.alloc(256)
        b = session.alloc(256)
        a.fill(0x5A)
        a.copy_to(b)
        assert b.read() == b"\x5a" * 256

    def test_size_readable_after_free(self, session):
        buffer = session.alloc(128)
        buffer.free()
        assert buffer.size == 128
        assert buffer.freed


class TestModules:
    def test_builtin_module_flow(self, session):
        module = session.load_builtin_module(["vectorAdd", "saxpy"])
        assert set(module.kernel_names()) == {"vectorAdd", "saxpy"}
        kernel = module.function("vectorAdd")
        n = 128
        a = session.upload(np.full(n, 2.0, np.float32))
        b = session.upload(np.full(n, 5.0, np.float32))
        c = session.alloc(4 * n)
        kernel.launch((1, 1, 1), (128, 1, 1), a, b, c, n)
        session.synchronize()
        np.testing.assert_allclose(c.read_array(np.float32), 7.0)

    def test_function_cache(self, session):
        module = session.load_builtin_module(["vectorAdd"])
        assert module.function("vectorAdd") is module.function("vectorAdd")

    def test_missing_kernel(self, session):
        module = session.load_builtin_module(["vectorAdd"])
        with pytest.raises(KeyError):
            module.function("nope")

    def test_unload(self, session):
        module = session.load_builtin_module(["vectorAdd"])
        module.unload()
        from repro.cuda.errors import CudaError

        with pytest.raises(CudaError):
            session.client.get_function(
                module.handle, "vectorAdd", module.image.metadata.kernel("vectorAdd")
            )

    def test_buffers_accepted_as_launch_args(self, session):
        module = session.load_builtin_module(["fillValue"])
        kernel = module.function("fillValue")
        buffer = session.alloc(4 * 64)
        kernel.launch((1, 1, 1), (64, 1, 1), buffer, 9.0, 64)
        session.synchronize()
        np.testing.assert_allclose(buffer.read_array(np.float32), 9.0)


class TestTimingOnlySessions:
    def test_execute_false_still_counts_time_and_calls(self):
        config = SessionConfig(platform=linux_vm(), execute=False, device_mem_bytes=MIB)
        with GpuSession(config) as s:
            module = s.load_builtin_module(["_Z9nopKernelv"])
            kernel = module.function("_Z9nopKernelv")
            for _ in range(10):
                kernel.launch((1, 1, 1), (1, 1, 1))
            s.synchronize()
            assert s.api_calls >= 12
            assert s.clock.now_ns > 0
