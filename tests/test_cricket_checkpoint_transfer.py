"""Integration tests for checkpoint/restart and memory-transfer methods."""

import numpy as np
import pytest

from repro.cricket import (
    CricketClient,
    CricketServer,
    TransferEngine,
    TransferMethod,
    TransferTimingModel,
    load_checkpoint,
    save_checkpoint,
    supported_on,
)
from repro.cubin import build_cubin_for_registry
from repro.cubin.metadata import KernelMeta
from repro.gpu import A100, GpuDevice
from repro.unikernel import EVAL_LINK, linux_vm, native_c, native_rust, rustyhermit, unikraft

MIB = 1 << 20


def small_server() -> CricketServer:
    return CricketServer([GpuDevice(A100, mem_bytes=128 * MIB)])


class TestCheckpointRestart:
    def _populate(self, client, server):
        cubin = build_cubin_for_registry(server.device.registry, ["vectorAdd"])
        module = client.module_load(cubin)
        meta = KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))
        fn = client.get_function(module, "vectorAdd", meta)
        n = 256
        a, b, c = (client.malloc(4 * n) for _ in range(3))
        client.memcpy_h2d(a, np.full(n, 1.5, np.float32).tobytes())
        client.memcpy_h2d(b, np.full(n, 2.5, np.float32).tobytes())
        client.launch_kernel(fn, (1, 1, 1), (256, 1, 1), (a, b, c, n))
        client.device_synchronize()
        return module, fn, (a, b, c, n)

    def test_resume_on_fresh_server(self):
        server = small_server()
        client = CricketClient.loopback(server)
        _module, fn, (a, b, c, n) = self._populate(client, server)
        blob = client.checkpoint()

        # new GPU node, same device model
        server2 = small_server()
        client2 = CricketClient.loopback(server2)
        client2.restore(blob)
        # resume: read results computed before the checkpoint
        out = np.frombuffer(client2.memcpy_d2h(c, 4 * n), np.float32)
        np.testing.assert_allclose(out, 4.0)
        # resume: launch with the *old* function handle -- it must survive
        meta = KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))
        client2._function_meta[fn] = meta
        client2.launch_kernel(fn, (1, 1, 1), (256, 1, 1), (c, a, b, n))
        client2.device_synchronize()
        out2 = np.frombuffer(client2.memcpy_d2h(b, 4 * n), np.float32)
        np.testing.assert_allclose(out2, 5.5)  # c (4.0) + a (1.5)

    def test_allocations_after_restore_dont_collide(self):
        server = small_server()
        client = CricketClient.loopback(server)
        old_ptr = client.malloc(4096)
        client.memcpy_h2d(old_ptr, b"\x11" * 4096)
        blob = client.checkpoint()

        server2 = small_server()
        client2 = CricketClient.loopback(server2)
        client2.restore(blob)
        new_ptr = client2.malloc(4096)
        assert new_ptr != old_ptr
        client2.memcpy_h2d(new_ptr, b"\x22" * 4096)
        assert client2.memcpy_d2h(old_ptr, 4096) == b"\x11" * 4096

    def test_checkpoint_file_roundtrip(self, tmp_path):
        server = small_server()
        client = CricketClient.loopback(server)
        ptr = client.malloc(1024)
        client.memcpy_h2d(ptr, b"\x42" * 1024)
        path = str(tmp_path / "cricket.ckpt")
        size = save_checkpoint(server, path)
        assert size > 0

        server2 = small_server()
        load_checkpoint(server2, path)
        client2 = CricketClient.loopback(server2)
        assert client2.memcpy_d2h(ptr, 1024) == b"\x42" * 1024

    def test_streams_survive(self):
        server = small_server()
        client = CricketClient.loopback(server)
        stream = client.stream_create()
        blob = client.checkpoint()
        server2 = small_server()
        client2 = CricketClient.loopback(server2)
        client2.restore(blob)
        client2.stream_synchronize(stream)  # handle still valid
        client2.stream_destroy(stream)

    def test_restore_rejects_garbage(self):
        server = small_server()
        client = CricketClient.loopback(server)
        from repro.cuda.errors import CudaError

        with pytest.raises(CudaError):
            client.restore(b"not a checkpoint")


class TestSupportMatrix:
    @pytest.mark.parametrize("platform_fn", [rustyhermit, unikraft])
    def test_unikernels_only_rpc_args(self, platform_fn):
        platform = platform_fn()
        assert supported_on(TransferMethod.RPC_ARGS, platform)
        for method in (
            TransferMethod.PARALLEL_SOCKETS,
            TransferMethod.IB_GPUDIRECT,
            TransferMethod.SHARED_MEMORY,
        ):
            assert not supported_on(method, platform)

    def test_native_supports_everything(self):
        for method in TransferMethod:
            assert supported_on(method, native_c())

    def test_vm_no_ib_or_shm(self):
        vm = linux_vm()
        assert supported_on(TransferMethod.PARALLEL_SOCKETS, vm)
        assert not supported_on(TransferMethod.IB_GPUDIRECT, vm)
        assert not supported_on(TransferMethod.SHARED_MEMORY, vm)


class TestTransferEngine:
    def make_engine(self, platform):
        server = small_server()
        client = CricketClient.loopback(server, platform=platform)
        timing = TransferTimingModel(link=EVAL_LINK)
        return (
            TransferEngine(client, server.device, server.clock, timing),
            server,
            client,
        )

    def test_rpc_args_functional(self):
        engine, _server, client = self.make_engine(native_rust())
        dst = client.malloc(MIB)
        payload = bytes(range(256)) * (MIB // 256)
        engine.h2d(TransferMethod.RPC_ARGS, dst, payload)
        assert engine.d2h(TransferMethod.RPC_ARGS, dst, MIB) == payload

    def test_gpudirect_faster_than_rpc_args(self):
        engine, server, client = self.make_engine(native_rust())
        dst = client.malloc(8 * MIB)
        payload = b"\x01" * (8 * MIB)

        t0 = server.clock.now_ns
        engine.h2d(TransferMethod.RPC_ARGS, dst, payload)
        rpc_time = server.clock.now_ns - t0

        t0 = server.clock.now_ns
        engine.h2d(TransferMethod.IB_GPUDIRECT, dst, payload)
        ib_time = server.clock.now_ns - t0
        assert ib_time < rpc_time

    def test_gpudirect_moves_data(self):
        engine, server, client = self.make_engine(native_rust())
        dst = client.malloc(1024)
        engine.h2d(TransferMethod.IB_GPUDIRECT, dst, b"\x77" * 1024)
        assert server.device.allocator.read(dst, 1024) == b"\x77" * 1024
        assert engine.d2h(TransferMethod.SHARED_MEMORY, dst, 1024) == b"\x77" * 1024

    def test_unsupported_method_raises_on_unikernel(self):
        engine, _server, client = self.make_engine(rustyhermit())
        dst = client.malloc(1024)
        with pytest.raises(NotImplementedError):
            engine.h2d(TransferMethod.IB_GPUDIRECT, dst, b"\x00" * 1024)
        with pytest.raises(NotImplementedError):
            engine.d2h(TransferMethod.PARALLEL_SOCKETS, dst, 1024)

    def test_parallel_sockets_scale_with_threads(self):
        timing = TransferTimingModel(link=EVAL_LINK)
        one = timing.parallel_sockets_s(64 * MIB, 5e9, threads=1)
        four = timing.parallel_sockets_s(64 * MIB, 5e9, threads=4)
        assert four < one

    def test_parallel_sockets_validates_threads(self):
        timing = TransferTimingModel(link=EVAL_LINK)
        with pytest.raises(ValueError):
            timing.parallel_sockets_s(1024, 5e9, threads=0)

    def test_method_ordering_matches_paper(self):
        """RPC args < parallel sockets < shared memory <= GPUDirect."""
        timing = TransferTimingModel(link=EVAL_LINK)
        n = 256 * MIB
        rpc_rate = n / (
            timing.parallel_sockets_s(n, 5e9, threads=1)
        )  # 1 thread ~ RPC args upper bound
        psock = n / timing.parallel_sockets_s(n, 5e9, threads=4)
        ib = n / timing.ib_gpudirect_s(n)
        shm = n / timing.shared_memory_s(n)
        assert rpc_rate < psock < ib
        assert psock < shm
