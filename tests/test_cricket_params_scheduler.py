"""Unit tests for kernel-parameter packing and the GPU-sharing scheduler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cricket.params import pack_params, unpack_params
from repro.cricket.scheduler import (
    FairSharePolicy,
    FifoPolicy,
    GpuScheduler,
    RoundRobinPolicy,
    WorkItem,
    merge_timelines,
)
from repro.cubin.metadata import KernelMeta
from repro.gpu.errors import KernelParamError


class TestParamPacking:
    META = KernelMeta.from_kinds("k", ("ptr", "i32", "f32", "u64", "f64", "u32"))

    def test_roundtrip(self):
        values = (0x7F0000001000, -5, 2.5, 2**63, 3.141592653589793, 4096)
        assert unpack_params(self.META, pack_params(self.META, values)) == values

    def test_block_size_matches_meta(self):
        block = pack_params(self.META, (1, 2, 3.0, 4, 5.0, 6))
        assert len(block) == self.META.param_block_size

    def test_wrong_arity(self):
        with pytest.raises(KernelParamError):
            pack_params(self.META, (1, 2))

    def test_wrong_block_size_on_unpack(self):
        with pytest.raises(KernelParamError):
            unpack_params(self.META, b"\x00" * 4)

    def test_out_of_range_value(self):
        meta = KernelMeta.from_kinds("k", ("u32",))
        with pytest.raises(KernelParamError):
            pack_params(meta, (2**40,))

    def test_empty_params(self):
        meta = KernelMeta.from_kinds("nop", ())
        assert pack_params(meta, ()) == b""
        assert unpack_params(meta, b"") == ()

    @given(
        st.tuples(
            st.integers(0, 2**64 - 1),
            st.integers(-(2**31), 2**31 - 1),
            st.floats(width=32, allow_nan=False, allow_infinity=False),
        )
    )
    def test_property_roundtrip(self, values):
        meta = KernelMeta.from_kinds("k", ("u64", "i32", "f32"))
        out = unpack_params(meta, pack_params(meta, values))
        assert out[0] == values[0]
        assert out[1] == values[1]
        assert out[2] == pytest.approx(values[2], rel=1e-6) or out[2] == values[2]


class TestFifo:
    def test_submission_order(self):
        sched = GpuScheduler(FifoPolicy())
        items = [
            WorkItem("a", 100, 0, 1),
            WorkItem("b", 50, 0, 2),
            WorkItem("a", 25, 0, 3),
        ]
        done = sched.schedule(items)
        assert [d.item.seq for d in done] == [1, 2, 3]
        assert done[-1].end_ns == 175

    def test_device_idles_until_submission(self):
        sched = GpuScheduler(FifoPolicy())
        done = sched.schedule([WorkItem("a", 10, 1000, 1)])
        assert done[0].start_ns == 1000
        assert sched.makespan_ns() == 1010

    def test_online_submit(self):
        sched = GpuScheduler(FifoPolicy())
        first = sched.submit("a", 100, 0)
        second = sched.submit("b", 100, 0)
        assert second.start_ns == first.end_ns


class TestRoundRobin:
    def test_interleaves_clients(self):
        sched = GpuScheduler(RoundRobinPolicy())
        items = [WorkItem("a", 10, 0, i) for i in range(1, 4)] + [
            WorkItem("b", 10, 0, i) for i in range(4, 7)
        ]
        done = sched.schedule(items)
        clients = [d.item.client for d in done]
        # strict alternation once both clients have pending work
        assert clients[0] != clients[1]
        assert clients.count("a") == clients.count("b") == 3

    def test_prevents_starvation(self):
        """A client with many items cannot monopolize the device."""
        sched = GpuScheduler(RoundRobinPolicy())
        items = [WorkItem("greedy", 10, 0, i) for i in range(1, 11)]
        items.append(WorkItem("meek", 10, 0, 99))
        done = sched.schedule(items)
        meek_index = next(i for i, d in enumerate(done) if d.item.client == "meek")
        assert meek_index <= 2


class TestFairShare:
    def test_balances_usage(self):
        sched = GpuScheduler(FairSharePolicy())
        items = [WorkItem("heavy", 100, 0, i) for i in range(1, 6)] + [
            WorkItem("light", 10, 0, i) for i in range(6, 11)
        ]
        done = sched.schedule(items)
        # light's short items should not all wait behind heavy's long ones
        light_total_wait = sum(d.wait_ns for d in done if d.item.client == "light")
        sched_fifo = GpuScheduler(FifoPolicy())
        done_fifo = sched_fifo.schedule(
            [WorkItem(d.item.client, d.item.duration_ns, 0, d.item.seq) for d in done]
        )
        fifo_wait = sum(d.wait_ns for d in done_fifo if d.item.client == "light")
        assert light_total_wait < fifo_wait

    def test_weights_respected(self):
        policy = FairSharePolicy(weights={"vip": 4.0})
        sched = GpuScheduler(policy)
        items = [WorkItem("vip", 100, 0, 1), WorkItem("std", 100, 0, 2)]
        sched.schedule(items)
        # after one item each, vip's vruntime is a quarter of std's
        assert policy._vruntime("vip", sched.usage_ns) < policy._vruntime(
            "std", sched.usage_ns
        )

    def test_fairness_index(self):
        sched = GpuScheduler(FairSharePolicy())
        sched.schedule(
            [WorkItem("a", 100, 0, 1), WorkItem("b", 100, 0, 2), WorkItem("c", 100, 0, 3)]
        )
        assert sched.fairness_index() == pytest.approx(1.0)

    def test_fairness_index_empty(self):
        assert GpuScheduler().fairness_index() == 1.0


class TestHelpers:
    def test_merge_timelines(self):
        items = merge_timelines({"a": [10, 20], "b": [5]})
        assert len(items) == 3
        a_items = [i for i in items if i.client == "a"]
        assert a_items[1].submit_ns == 10  # back-to-back submission

    def test_usage_accumulates(self):
        sched = GpuScheduler()
        sched.schedule([WorkItem("a", 10, 0, 1), WorkItem("a", 15, 0, 2)])
        assert sched.usage_ns["a"] == 25

    def test_note_launch(self):
        sched = GpuScheduler()
        sched.note_launch("x")
        sched.note_launch("x")
        assert sched.launches["x"] == 2
