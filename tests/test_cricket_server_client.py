"""Integration tests: CricketClient against CricketServer (loopback + TCP)."""

import numpy as np
import pytest

from repro.cricket import CricketClient, CricketServer
from repro.cubin import build_cubin_for_registry
from repro.cubin.metadata import KernelMeta
from repro.cuda.errors import CudaError
from repro.unikernel import native_rust, rustyhermit

MIB = 1 << 20


@pytest.fixture()
def server():
    from repro.gpu import A100, GpuDevice

    return CricketServer([GpuDevice(A100, mem_bytes=256 * MIB)])


@pytest.fixture()
def client(server):
    c = CricketClient.loopback(server)
    yield c
    c.close()


class TestDeviceManagement:
    def test_device_count(self, client):
        assert client.get_device_count() == 1

    def test_get_set_device(self, client):
        client.set_device(0)
        assert client.get_device() == 0

    def test_set_invalid_device_raises(self, client):
        with pytest.raises(CudaError):
            client.set_device(7)

    def test_properties(self, client):
        props = client.get_device_properties(0)
        assert "A100" in props["name"]
        assert props["multi_processor_count"] == 108

    def test_device_reset(self, client, server):
        client.malloc(4096)
        client.device_reset()
        assert server.device.allocator.used_bytes == 0


class TestMemoryOverRpc:
    def test_malloc_free(self, client):
        ptr = client.malloc(1024)
        assert ptr != 0
        client.free(ptr)

    def test_double_free_surfaces_cuda_error(self, client):
        ptr = client.malloc(64)
        client.free(ptr)
        with pytest.raises(CudaError):
            client.free(ptr)

    def test_memcpy_roundtrip(self, client):
        ptr = client.malloc(4096)
        payload = bytes(range(256)) * 16
        client.memcpy_h2d(ptr, payload)
        assert client.memcpy_d2h(ptr, 4096) == payload

    def test_large_transfer_fragments(self, server):
        client = CricketClient.loopback(server, fragment_size=64 * 1024)
        ptr = client.malloc(8 * MIB)
        payload = np.random.default_rng(0).integers(0, 256, 8 * MIB, dtype=np.uint8).tobytes()
        client.memcpy_h2d(ptr, payload)
        assert client.memcpy_d2h(ptr, 8 * MIB) == payload

    def test_memset(self, client):
        ptr = client.malloc(128)
        client.memset(ptr, 0x3C, 128)
        assert client.memcpy_d2h(ptr, 128) == b"\x3c" * 128

    def test_d2d(self, client):
        a = client.malloc(256)
        b = client.malloc(256)
        client.memcpy_h2d(a, b"q" * 256)
        client.memcpy_d2d(b, a, 256)
        assert client.memcpy_d2h(b, 256) == b"q" * 256

    def test_oom_raises(self, client):
        with pytest.raises(CudaError):
            client.malloc(1 << 40)


class TestStreamsEventsOverRpc:
    def test_stream_lifecycle(self, client):
        stream = client.stream_create()
        client.stream_synchronize(stream)
        client.stream_destroy(stream)
        with pytest.raises(CudaError):
            client.stream_destroy(stream)

    def test_events_measure_gpu_time(self, client, server):
        cubin = build_cubin_for_registry(server.device.registry, ["vectorAdd"])
        module = client.module_load(cubin)
        meta = KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))
        fn = client.get_function(module, "vectorAdd", meta)
        n = 1 << 18
        a, b, c = (client.malloc(4 * n) for _ in range(3))
        ev0, ev1 = client.event_create(), client.event_create()
        client.event_record(ev0)
        client.launch_kernel(fn, (n // 256, 1, 1), (256, 1, 1), (a, b, c, n))
        client.event_record(ev1)
        client.event_synchronize(ev1)
        assert client.event_elapsed_ms(ev0, ev1) > 0
        client.event_destroy(ev0)
        client.event_destroy(ev1)


class TestModulesOverRpc:
    def test_full_kernel_flow(self, client, server):
        cubin = build_cubin_for_registry(server.device.registry, ["saxpy"])
        module = client.module_load(cubin)
        meta = KernelMeta.from_kinds("saxpy", ("ptr", "ptr", "f32", "i32"))
        fn = client.get_function(module, "saxpy", meta)
        n = 512
        x = client.malloc(4 * n)
        y = client.malloc(4 * n)
        client.memcpy_h2d(x, np.full(n, 2.0, np.float32).tobytes())
        client.memcpy_h2d(y, np.full(n, 1.0, np.float32).tobytes())
        client.launch_kernel(fn, (2, 1, 1), (256, 1, 1), (y, x, 3.0, n))
        client.device_synchronize()
        out = np.frombuffer(client.memcpy_d2h(y, 4 * n), np.float32)
        np.testing.assert_allclose(out, 7.0)
        client.module_unload(module)

    def test_launch_without_module_meta(self, client):
        with pytest.raises(CudaError):
            client.launch_kernel(999, (1, 1, 1), (1, 1, 1), ())

    def test_bad_cubin_raises(self, client):
        with pytest.raises(CudaError):
            client.module_load(b"garbage bytes here")

    def test_module_load_file(self, client, server, tmp_path):
        cubin = build_cubin_for_registry(server.device.registry, ["vectorAdd"])
        path = tmp_path / "kernels.cubin"
        path.write_bytes(cubin)
        module = client.module_load_file(str(path))
        assert module > 0

    def test_compressed_cubin_over_rpc(self, client, server):
        """Client ships a compressed cubin; server decompresses (paper §3.3)."""
        from repro.cubin import compress

        cubin = build_cubin_for_registry(
            server.device.registry, ["vectorAdd"], compress_text=True
        )
        module = client.module_load(compress(cubin))
        meta = KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))
        assert client.get_function(module, "vectorAdd", meta) > 0


class TestCublasCusolverOverRpc:
    def test_sgemm(self, client, server):
        handle = client.cublas_create()
        n = 8
        ident = np.eye(n, dtype=np.float32)
        a = client.malloc(4 * n * n)
        b = client.malloc(4 * n * n)
        c = client.malloc(4 * n * n)
        client.memcpy_h2d(a, ident.tobytes())
        client.memcpy_h2d(b, (2 * ident).tobytes())
        client.cublas_sgemm(
            handle=handle, transa=0, transb=0, m=n, n=n, k=n,
            alpha=1.0, a_ptr=a, lda=n, b_ptr=b, ldb=n, beta=0.0, c_ptr=c, ldc=n,
        )
        out = np.frombuffer(client.memcpy_d2h(c, 4 * n * n), np.float32).reshape(n, n)
        np.testing.assert_allclose(out, 2 * np.eye(n))
        client.cublas_destroy(handle)

    def test_cusolver_lifecycle(self, client):
        handle = client.cusolver_create()
        client.cusolver_destroy(handle)
        with pytest.raises(CudaError):
            client.cusolver_destroy(handle)


class TestVirtualTime:
    def test_metered_client_advances_clock(self, server):
        client = CricketClient.loopback(server, platform=rustyhermit())
        before = server.clock.now_ns
        client.get_device_count()
        assert server.clock.now_ns > before

    def test_hermit_slower_than_native_per_call(self):
        def time_calls(platform):
            server = CricketServer()
            client = CricketClient.loopback(server, platform=platform)
            start = server.clock.now_ns
            for _ in range(100):
                client.get_device_count()
            return server.clock.now_ns - start

        assert time_calls(rustyhermit()) > 2 * time_calls(native_rust())

    def test_call_and_byte_counters(self, server):
        client = CricketClient.loopback(server, platform=native_rust())
        client.get_device_count()
        ptr = client.malloc(1024)
        client.memcpy_h2d(ptr, b"\x00" * 1024)
        assert client.calls_made == 3
        assert client.bytes_transferred > 1024


class TestOverRealTcp:
    def test_cricket_over_tcp(self):
        server = CricketServer()
        host, port = server.serve_tcp("127.0.0.1", 0)
        try:
            client = CricketClient.connect_tcp(host, port)
            assert client.get_device_count() == 1
            ptr = client.malloc(2 * MIB)
            payload = bytes(range(256)) * (2 * MIB // 256)
            client.memcpy_h2d(ptr, payload)
            assert client.memcpy_d2h(ptr, 2 * MIB) == payload
            client.close()
        finally:
            server.shutdown()
