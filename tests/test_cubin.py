"""Unit and property tests for the cubin/fatbin formats and compression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubin import (
    BadMagicError,
    CorruptImageError,
    CubinElf,
    CubinMetadata,
    DecompressionError,
    FatBinary,
    GlobalMeta,
    KernelMeta,
    build_cubin,
    build_cubin_for_registry,
    compress,
    decode_metadata,
    decompress,
    encode_metadata,
    is_compressed,
    load_cubin,
    load_fatbin,
)
from repro.cubin.metadata import ParamInfo
from repro.gpu.kernels import build_default_registry


class TestCompression:
    def test_roundtrip_simple(self):
        data = b"hello world, hello world, hello world"
        assert decompress(compress(data)) == data

    def test_roundtrip_empty(self):
        assert decompress(compress(b"")) == b""

    def test_compresses_repetitive_data(self):
        data = b"ABCD" * 10_000
        blob = compress(data)
        assert len(blob) < len(data) // 4
        assert decompress(blob) == data

    def test_incompressible_data_roundtrips(self):
        import random

        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(5000))
        assert decompress(compress(data)) == data

    def test_overlapping_match_rle(self):
        data = b"a" * 1000  # classic distance-1 self-overlap case
        blob = compress(data)
        assert decompress(blob) == data
        assert len(blob) < 50

    def test_is_compressed(self):
        assert is_compressed(compress(b"xyz"))
        assert not is_compressed(b"xyz1234")

    def test_bad_magic(self):
        with pytest.raises(DecompressionError):
            decompress(b"\x00" * 16)

    def test_truncated_stream(self):
        blob = compress(b"some compressible data data data")
        with pytest.raises(DecompressionError):
            decompress(blob[:-2])

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=4000))
    def test_property_roundtrip(self, data):
        assert decompress(compress(data)) == data

    @settings(max_examples=20, deadline=None)
    @given(st.text(max_size=2000))
    def test_property_roundtrip_texty(self, text):
        data = (text * 3).encode("utf-8")
        assert decompress(compress(data)) == data


class TestElfContainer:
    def test_roundtrip(self):
        image = CubinElf(arch="sm_80")
        image.add_section(".nv.info", b"metadata")
        image.add_section(".text.k", b"code", flags=0)
        parsed = CubinElf.from_bytes(image.to_bytes())
        assert parsed.arch == "sm_80"
        assert parsed.section(".nv.info").data == b"metadata"
        assert parsed.section(".text.k").data == b"code"

    def test_duplicate_section_rejected(self):
        image = CubinElf()
        image.add_section("a", b"")
        with pytest.raises(CorruptImageError):
            image.add_section("a", b"")

    def test_bad_magic(self):
        with pytest.raises(BadMagicError):
            CubinElf.from_bytes(b"\x00" * 32)

    def test_truncated_payload(self):
        blob = bytearray(CubinElf(arch="sm_80").to_bytes())
        image = CubinElf(arch="sm_80")
        image.add_section("s", b"0123456789")
        blob = image.to_bytes()[:-4]
        with pytest.raises(CorruptImageError):
            CubinElf.from_bytes(blob)

    def test_trailing_garbage(self):
        blob = CubinElf(arch="sm_80").to_bytes() + b"JUNK"
        with pytest.raises(CorruptImageError):
            CubinElf.from_bytes(blob)

    def test_sections_with_prefix(self):
        image = CubinElf()
        image.add_section(".text.a", b"")
        image.add_section(".text.b", b"")
        image.add_section(".nv.info", b"")
        assert len(image.sections_with_prefix(".text.")) == 2


class TestMetadata:
    def test_roundtrip(self):
        meta = CubinMetadata(
            kernels=[
                KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32")),
                KernelMeta.from_kinds("nop", ()),
            ],
            globals=[GlobalMeta("lut", 16, bytes(range(16)))],
        )
        decoded = decode_metadata(encode_metadata(meta))
        assert decoded.kernel("vectorAdd").param_kinds == ("ptr", "ptr", "ptr", "i32")
        assert decoded.global_("lut").init == bytes(range(16))

    def test_param_offsets_natural_alignment(self):
        meta = KernelMeta.from_kinds("k", ("i32", "ptr", "f32", "f64"))
        offsets = [p.offset for p in meta.params]
        assert offsets == [0, 8, 16, 24]
        assert meta.param_block_size == 32

    def test_global_init_size_mismatch(self):
        with pytest.raises(ValueError):
            GlobalMeta("g", 8, b"abc")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            KernelMeta.from_kinds("k", ("blob",))

    def test_corrupt_metadata_section(self):
        with pytest.raises(CorruptImageError):
            decode_metadata(b"\x01\x02\x03")

    def test_missing_kernel_lookup(self):
        meta = CubinMetadata()
        with pytest.raises(KeyError):
            meta.kernel("nope")


class TestLoader:
    def test_build_and_load(self):
        blob = build_cubin([KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))])
        image = load_cubin(blob)
        assert image.arch == "sm_80"
        assert image.kernel_names() == ("vectorAdd",)

    def test_compressed_text_sections(self):
        blob = build_cubin(
            [KernelMeta.from_kinds("saxpy", ("ptr", "ptr", "f32", "i32"))],
            compress_text=True,
        )
        image = load_cubin(blob)
        assert image.kernel_names() == ("saxpy",)

    def test_whole_image_compression(self):
        blob = build_cubin([KernelMeta.from_kinds("nop", ())])
        image = load_cubin(compress(blob))
        assert image.kernel_names() == ("nop",)

    def test_registry_driven_build(self):
        registry = build_default_registry()
        blob = build_cubin_for_registry(registry, ["vectorAdd", "histogram256Kernel"])
        image = load_cubin(blob)
        assert set(image.kernel_names()) == {"vectorAdd", "histogram256Kernel"}
        meta = image.metadata.kernel("vectorAdd")
        assert meta.param_kinds == registry.get("vectorAdd").param_kinds

    def test_globals_in_image(self):
        blob = build_cubin(
            [KernelMeta.from_kinds("nop", ())],
            globals_=[GlobalMeta("coeffs", 8, b"\x01" * 8)],
        )
        image = load_cubin(blob)
        assert image.global_names() == ("coeffs",)

    def test_missing_nv_info(self):
        raw = CubinElf(arch="sm_80")
        raw.add_section(".text.k", b"SASS:k")
        with pytest.raises(CorruptImageError):
            load_cubin(raw.to_bytes())

    def test_missing_text_section(self):
        raw = CubinElf(arch="sm_80")
        meta = CubinMetadata(kernels=[KernelMeta.from_kinds("ghost", ())])
        raw.add_section(".nv.info", encode_metadata(meta))
        with pytest.raises(CorruptImageError):
            load_cubin(raw.to_bytes())


class TestFatBinary:
    def test_roundtrip_multiple_arches(self):
        fb = FatBinary()
        cubin80 = build_cubin([KernelMeta.from_kinds("nop", ())], arch="sm_80")
        cubin70 = build_cubin([KernelMeta.from_kinds("nop", ())], arch="sm_70")
        fb.add_cubin("sm_80", cubin80)
        fb.add_cubin("sm_70", cubin70)
        fb.add_ptx("sm_80", ".version 7.0\n.target sm_80")
        parsed = FatBinary.from_bytes(fb.to_bytes())
        assert len(parsed.entries) == 3
        assert parsed.best_cubin("sm_80").arch == "sm_80"

    def test_best_cubin_falls_back_to_older_arch(self):
        fb = FatBinary()
        fb.add_cubin("sm_70", build_cubin([KernelMeta.from_kinds("nop", ())], arch="sm_70"))
        assert fb.best_cubin("sm_80").arch == "sm_70"

    def test_best_cubin_rejects_newer_only(self):
        fb = FatBinary()
        fb.add_cubin("sm_90", b"anything")
        with pytest.raises(CorruptImageError):
            fb.best_cubin("sm_80")

    def test_no_cubin_entries(self):
        fb = FatBinary()
        fb.add_ptx("sm_80", "ptx only")
        with pytest.raises(CorruptImageError):
            fb.best_cubin("sm_80")

    def test_compressed_entry_loads(self):
        fb = FatBinary()
        cubin = build_cubin([KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))])
        entry = fb.add_cubin("sm_80", cubin, compress=True)
        assert entry.compressed
        assert len(entry.payload) < len(cubin)
        image = load_fatbin(fb.to_bytes(), arch="sm_80")
        assert image.kernel_names() == ("vectorAdd",)

    def test_bad_magic(self):
        with pytest.raises(BadMagicError):
            FatBinary.from_bytes(b"\x00" * 16)

    def test_truncated_entry(self):
        fb = FatBinary()
        fb.add_cubin("sm_80", b"payload-bytes")
        with pytest.raises(CorruptImageError):
            FatBinary.from_bytes(fb.to_bytes()[:-3])
