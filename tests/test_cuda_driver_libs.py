"""Unit tests for the driver API (modules/launch) and cuBLAS/cuSOLVER."""

import numpy as np
import pytest

from repro.cubin import GlobalMeta, KernelMeta, build_cubin, build_cubin_for_registry, compress
from repro.cuda import constants as C
from repro.cuda.cublas import CublasContext
from repro.cuda.cusolver import CusolverContext
from repro.cuda.driver import CudaDriver
from repro.gpu import A100, GpuDevice
from repro.net import SimClock

MIB = 1024 * 1024


@pytest.fixture()
def device():
    return GpuDevice(A100, mem_bytes=128 * MIB)


@pytest.fixture()
def driver(device):
    return CudaDriver(device, SimClock())


class TestModuleLifecycle:
    def test_load_get_launch(self, driver, device):
        cubin = build_cubin_for_registry(device.registry, ["vectorAdd"])
        err, module = driver.cuModuleLoadData(cubin)
        assert err == C.CUDA_SUCCESS
        err, func = driver.cuModuleGetFunction(module, "vectorAdd")
        assert err == C.CUDA_SUCCESS

        n = 256
        a = device.alloc(4 * n)
        b = device.alloc(4 * n)
        out = device.alloc(4 * n)
        device.allocator.view(a, 4 * n).view(np.float32)[:] = 3.0
        device.allocator.view(b, 4 * n).view(np.float32)[:] = 4.0
        assert (
            driver.cuLaunchKernel(func, (1, 1, 1), (256, 1, 1), (a, b, out, n))
            == C.CUDA_SUCCESS
        )
        np.testing.assert_allclose(
            device.allocator.view(out, 4 * n).view(np.float32), 7.0
        )

    def test_load_compressed_cubin(self, driver, device):
        cubin = build_cubin_for_registry(device.registry, ["saxpy"], compress_text=True)
        err, module = driver.cuModuleLoadData(compress(cubin))
        assert err == C.CUDA_SUCCESS
        err, _func = driver.cuModuleGetFunction(module, "saxpy")
        assert err == C.CUDA_SUCCESS

    def test_load_garbage(self, driver):
        err, module = driver.cuModuleLoadData(b"not a cubin at all")
        assert err == C.CUDA_ERROR_INVALID_IMAGE
        assert module == 0

    def test_kernel_not_on_device(self, driver):
        cubin = build_cubin([KernelMeta.from_kinds("ghostKernel", ())])
        err, _ = driver.cuModuleLoadData(cubin)
        assert err == C.CUDA_ERROR_INVALID_IMAGE

    def test_metadata_param_mismatch_rejected(self, driver):
        # Cubin claims vectorAdd takes no parameters; device code disagrees.
        cubin = build_cubin([KernelMeta.from_kinds("vectorAdd", ())])
        err, _ = driver.cuModuleLoadData(cubin)
        assert err == C.CUDA_ERROR_INVALID_VALUE

    def test_get_function_missing(self, driver, device):
        cubin = build_cubin_for_registry(device.registry, ["vectorAdd"])
        _, module = driver.cuModuleLoadData(cubin)
        err, func = driver.cuModuleGetFunction(module, "nothere")
        assert err == C.CUDA_ERROR_NOT_FOUND
        assert func == 0

    def test_get_function_bad_module(self, driver):
        err, _ = driver.cuModuleGetFunction(999, "vectorAdd")
        assert err == C.CUDA_ERROR_INVALID_HANDLE

    def test_globals_materialized(self, driver, device):
        cubin = build_cubin(
            [KernelMeta.from_kinds("_Z9nopKernelv", ())],
            globals_=[GlobalMeta("lut", 8, b"\x01\x02\x03\x04\x05\x06\x07\x08")],
        )
        _, module = driver.cuModuleLoadData(cubin)
        err, ptr, size = driver.cuModuleGetGlobal(module, "lut")
        assert err == C.CUDA_SUCCESS
        assert size == 8
        assert device.allocator.read(ptr, 8) == b"\x01\x02\x03\x04\x05\x06\x07\x08"

    def test_global_missing(self, driver, device):
        cubin = build_cubin_for_registry(device.registry, ["vectorAdd"])
        _, module = driver.cuModuleLoadData(cubin)
        err, _, _ = driver.cuModuleGetGlobal(module, "nope")
        assert err == C.CUDA_ERROR_NOT_FOUND

    def test_unload_frees_globals_and_functions(self, driver, device):
        cubin = build_cubin(
            [KernelMeta.from_kinds("_Z9nopKernelv", ())],
            globals_=[GlobalMeta("g", 4096)],
        )
        _, module = driver.cuModuleLoadData(cubin)
        _, func = driver.cuModuleGetFunction(module, "_Z9nopKernelv")
        used = device.allocator.used_bytes
        assert used > 0
        assert driver.cuModuleUnload(module) == C.CUDA_SUCCESS
        assert device.allocator.used_bytes == 0
        assert driver.cuLaunchKernel(func, (1, 1, 1), (1, 1, 1), ()) == C.CUDA_ERROR_INVALID_HANDLE
        assert driver.cuModuleUnload(module) == C.CUDA_ERROR_INVALID_HANDLE

    def test_launch_bad_handle(self, driver):
        assert driver.cuLaunchKernel(77, (1, 1, 1), (1, 1, 1), ()) == C.CUDA_ERROR_INVALID_HANDLE

    def test_fatbin_load(self, driver, device):
        from repro.cubin import FatBinary

        fb = FatBinary()
        fb.add_cubin(
            "sm_80", build_cubin_for_registry(device.registry, ["vectorAdd"]), compress=True
        )
        err, module = driver.cuModuleLoadFatBinary(fb.to_bytes())
        assert err == C.CUDA_SUCCESS
        err, _ = driver.cuModuleGetFunction(module, "vectorAdd")
        assert err == C.CUDA_SUCCESS


class TestCublas:
    def test_sgemm_matches_numpy(self, device):
        blas = CublasContext(device, SimClock())
        _, handle = blas.cublasCreate()
        m, n, k = 17, 13, 29
        rng = np.random.default_rng(3)
        a_host = rng.random((m, k), dtype=np.float32)
        b_host = rng.random((k, n), dtype=np.float32)
        # column-major device buffers
        a = device.alloc(4 * m * k)
        b = device.alloc(4 * k * n)
        c = device.alloc(4 * m * n)
        device.allocator.write(a, a_host.T.copy().tobytes())  # F-order
        device.allocator.write(b, b_host.T.copy().tobytes())
        status = blas.cublasSgemm(
            handle, C.CUBLAS_OP_N, C.CUBLAS_OP_N, m, n, k, 1.0, a, m, b, k, 0.0, c, m
        )
        assert status == C.CUBLAS_STATUS_SUCCESS
        out = device.allocator.view(c, 4 * m * n).view(np.float32).reshape(n, m).T
        np.testing.assert_allclose(out, a_host @ b_host, rtol=1e-5)

    def test_sgemm_transpose_a(self, device):
        blas = CublasContext(device)
        _, handle = blas.cublasCreate()
        m, n, k = 8, 6, 4
        rng = np.random.default_rng(4)
        at_host = rng.random((k, m), dtype=np.float32)  # A^T stored (k x m)
        b_host = rng.random((k, n), dtype=np.float32)
        a = device.alloc(4 * k * m)
        b = device.alloc(4 * k * n)
        c = device.alloc(4 * m * n)
        device.allocator.write(a, at_host.T.copy().tobytes())
        device.allocator.write(b, b_host.T.copy().tobytes())
        status = blas.cublasSgemm(
            handle, C.CUBLAS_OP_T, C.CUBLAS_OP_N, m, n, k, 1.0, a, k, b, k, 0.0, c, m
        )
        assert status == C.CUBLAS_STATUS_SUCCESS
        out = device.allocator.view(c, 4 * m * n).view(np.float32).reshape(n, m).T
        np.testing.assert_allclose(out, at_host.T @ b_host, rtol=1e-5)

    def test_beta_accumulation(self, device):
        blas = CublasContext(device)
        _, handle = blas.cublasCreate()
        n = 4
        ident = np.eye(n, dtype=np.float32)
        a = device.alloc(4 * n * n)
        b = device.alloc(4 * n * n)
        c = device.alloc(4 * n * n)
        device.allocator.write(a, ident.tobytes())
        device.allocator.write(b, ident.tobytes())
        device.allocator.view(c, 4 * n * n).view(np.float32)[:] = 1.0
        blas.cublasSgemm(handle, 0, 0, n, n, n, 2.0, a, n, b, n, 3.0, c, n)
        out = device.allocator.view(c, 4 * n * n).view(np.float32).reshape(n, n)
        np.testing.assert_allclose(out, 2 * np.eye(n) + 3 * np.ones((n, n)))

    def test_uninitialized_handle(self, device):
        blas = CublasContext(device)
        assert blas.cublasSgemm(42, 0, 0, 1, 1, 1, 1.0, 0, 1, 0, 1, 0.0, 0, 1) == (
            C.CUBLAS_STATUS_NOT_INITIALIZED
        )

    def test_destroy(self, device):
        blas = CublasContext(device)
        _, handle = blas.cublasCreate()
        assert blas.cublasDestroy(handle) == C.CUBLAS_STATUS_SUCCESS
        assert blas.cublasDestroy(handle) == C.CUBLAS_STATUS_NOT_INITIALIZED

    def test_invalid_dims(self, device):
        blas = CublasContext(device)
        _, handle = blas.cublasCreate()
        assert (
            blas.cublasSgemm(handle, 0, 0, -1, 1, 1, 1.0, 0, 1, 0, 1, 0.0, 0, 1)
            == C.CUBLAS_STATUS_INVALID_VALUE
        )


class TestCusolver:
    def _setup_system(self, device, n=32, nrhs=1, seed=5):
        rng = np.random.default_rng(seed)
        a_host = rng.random((n, n)) + n * np.eye(n)  # well conditioned
        x_true = rng.random((n, nrhs))
        b_host = a_host @ x_true
        a = device.alloc(8 * n * n)
        b = device.alloc(8 * n * nrhs)
        ipiv = device.alloc(4 * n)
        info = device.alloc(4)
        device.allocator.write(a, a_host.T.copy().tobytes())  # column-major
        device.allocator.write(b, b_host.T.copy().tobytes())
        return a_host, x_true, a, b, ipiv, info

    def test_getrf_getrs_solves(self, device):
        solver = CusolverContext(device, SimClock())
        _, handle = solver.cusolverDnCreate()
        n, nrhs = 32, 3
        _a_host, x_true, a, b, ipiv, info = self._setup_system(device, n, nrhs)
        err, lwork = solver.cusolverDnDgetrf_bufferSize(handle, n, n, a, n)
        assert err == C.CUSOLVER_STATUS_SUCCESS and lwork > 0
        work = device.alloc(8 * lwork)
        assert (
            solver.cusolverDnDgetrf(handle, n, n, a, n, work, ipiv, info)
            == C.CUSOLVER_STATUS_SUCCESS
        )
        assert device.allocator.view(info, 4).view(np.int32)[0] == 0
        assert (
            solver.cusolverDnDgetrs(handle, 0, n, nrhs, a, n, ipiv, b, n, info)
            == C.CUSOLVER_STATUS_SUCCESS
        )
        x = device.allocator.view(b, 8 * n * nrhs).view(np.float64).reshape(nrhs, n).T
        np.testing.assert_allclose(x, x_true, rtol=1e-9)

    def test_non_square_rejected(self, device):
        solver = CusolverContext(device)
        _, handle = solver.cusolverDnCreate()
        assert (
            solver.cusolverDnDgetrf(handle, 3, 4, 0, 3, 0, 0, 0)
            == C.CUSOLVER_STATUS_INVALID_VALUE
        )

    def test_uninitialized_handle(self, device):
        solver = CusolverContext(device)
        err, _ = solver.cusolverDnDgetrf_bufferSize(9, 4, 4, 0, 4)
        assert err == C.CUSOLVER_STATUS_NOT_INITIALIZED

    def test_bad_pointer_is_execution_failure(self, device):
        solver = CusolverContext(device)
        _, handle = solver.cusolverDnCreate()
        assert (
            solver.cusolverDnDgetrf(handle, 4, 4, 0xBAD, 4, 0xBAD, 0xBAD, 0xBAD)
            == C.CUSOLVER_STATUS_EXECUTION_FAILED
        )

    def test_destroy(self, device):
        solver = CusolverContext(device)
        _, handle = solver.cusolverDnCreate()
        assert solver.cusolverDnDestroy(handle) == C.CUSOLVER_STATUS_SUCCESS
        assert solver.cusolverDnDestroy(handle) == C.CUSOLVER_STATUS_NOT_INITIALIZED
