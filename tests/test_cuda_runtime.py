"""Unit tests for the CUDA runtime API executor."""

import numpy as np
import pytest

from repro.cuda import constants as C
from repro.cuda.errors import CudaError
from repro.cuda.runtime import CudaRuntime
from repro.gpu import A100, T4, GpuDevice
from repro.net import SimClock

MIB = 1024 * 1024


@pytest.fixture()
def rt():
    clock = SimClock()
    devices = [GpuDevice(A100, ordinal=0, mem_bytes=64 * MIB)]
    return CudaRuntime(devices, clock)


class TestDeviceManagement:
    def test_get_device_count(self, rt):
        assert rt.cudaGetDeviceCount() == (C.cudaSuccess, 1)

    def test_multi_device(self):
        rt = CudaRuntime(
            [GpuDevice(A100, ordinal=0, mem_bytes=MIB), GpuDevice(T4, ordinal=1, mem_bytes=MIB)]
        )
        assert rt.cudaGetDeviceCount()[1] == 2
        assert rt.cudaSetDevice(1) == C.cudaSuccess
        assert rt.cudaGetDevice() == (C.cudaSuccess, 1)

    def test_set_invalid_device(self, rt):
        assert rt.cudaSetDevice(5) == C.cudaErrorInvalidDevice

    def test_properties(self, rt):
        err, props = rt.cudaGetDeviceProperties(0)
        assert err == C.cudaSuccess
        assert "A100" in props.name
        assert props.multi_processor_count == 108

    def test_properties_invalid(self, rt):
        err, props = rt.cudaGetDeviceProperties(3)
        assert err == C.cudaErrorInvalidDevice
        assert props is None

    def test_empty_device_list_rejected(self):
        with pytest.raises(ValueError):
            CudaRuntime([])

    def test_api_call_counter(self, rt):
        rt.cudaGetDeviceCount()
        rt.cudaGetDevice()
        assert rt.api_call_count == 2


class TestMemory:
    def test_malloc_free(self, rt):
        err, ptr = rt.cudaMalloc(4096)
        assert err == C.cudaSuccess and ptr != 0
        assert rt.cudaFree(ptr) == C.cudaSuccess

    def test_double_free_reports_error_code(self, rt):
        _, ptr = rt.cudaMalloc(64)
        rt.cudaFree(ptr)
        assert rt.cudaFree(ptr) == C.cudaErrorInvalidDevicePointer

    def test_oom_reports_code(self, rt):
        err, ptr = rt.cudaMalloc(1 << 40)
        assert err == C.cudaErrorMemoryAllocation
        assert ptr == 0

    def test_memcpy_h2d_d2h(self, rt):
        payload = bytes(range(256))
        _, ptr = rt.cudaMalloc(256)
        err, _ = rt.cudaMemcpy(ptr, payload, 256, C.cudaMemcpyHostToDevice)
        assert err == C.cudaSuccess
        err, data = rt.cudaMemcpy(0, ptr, 256, C.cudaMemcpyDeviceToHost)
        assert err == C.cudaSuccess
        assert data == payload

    def test_memcpy_advances_clock(self, rt):
        _, ptr = rt.cudaMalloc(MIB)
        before = rt.clock.now_ns
        rt.cudaMemcpy(ptr, b"\x00" * MIB, MIB, C.cudaMemcpyHostToDevice)
        assert rt.clock.now_ns > before

    def test_memcpy_d2d(self, rt):
        _, a = rt.cudaMalloc(64)
        _, b = rt.cudaMalloc(64)
        rt.cudaMemcpy(a, b"y" * 64, 64, C.cudaMemcpyHostToDevice)
        err, _ = rt.cudaMemcpy(b, a, 64, C.cudaMemcpyDeviceToDevice)
        assert err == C.cudaSuccess
        _, out = rt.cudaMemcpy(0, b, 64, C.cudaMemcpyDeviceToHost)
        assert out == b"y" * 64

    def test_memcpy_invalid_direction(self, rt):
        err, _ = rt.cudaMemcpy(1, 2, 4, 9)
        assert err == C.cudaErrorInvalidMemcpyDirection

    def test_memcpy_h2d_wrong_src_type(self, rt):
        _, ptr = rt.cudaMalloc(16)
        err, _ = rt.cudaMemcpy(ptr, 12345, 16, C.cudaMemcpyHostToDevice)
        assert err == C.cudaErrorInvalidValue

    def test_memcpy_short_payload(self, rt):
        _, ptr = rt.cudaMalloc(16)
        err, _ = rt.cudaMemcpy(ptr, b"ab", 16, C.cudaMemcpyHostToDevice)
        assert err == C.cudaErrorInvalidValue

    def test_memcpy_bad_pointer(self, rt):
        err, _ = rt.cudaMemcpy(0, 0xDEAD, 4, C.cudaMemcpyDeviceToHost)
        assert err == C.cudaErrorInvalidDevicePointer

    def test_memset(self, rt):
        _, ptr = rt.cudaMalloc(32)
        assert rt.cudaMemset(ptr, 0x5A, 32) == C.cudaSuccess
        _, data = rt.cudaMemcpy(0, ptr, 32, C.cudaMemcpyDeviceToHost)
        assert data == b"\x5a" * 32


class TestStreamsEvents:
    def test_stream_lifecycle(self, rt):
        err, stream = rt.cudaStreamCreate()
        assert err == C.cudaSuccess and stream > 0
        assert rt.cudaStreamSynchronize(stream) == C.cudaSuccess
        assert rt.cudaStreamDestroy(stream) == C.cudaSuccess
        assert rt.cudaStreamDestroy(stream) == C.cudaErrorInvalidResourceHandle

    def test_event_elapsed_time(self, rt):
        _, ev0 = rt.cudaEventCreate()
        _, ev1 = rt.cudaEventCreate()
        rt.cudaEventRecord(ev0)
        n = 1 << 20
        _, a = rt.cudaMalloc(4 * n)
        _, b = rt.cudaMalloc(4 * n)
        _, c = rt.cudaMalloc(4 * n)
        rt.cudaLaunchKernel("vectorAdd", (n // 256, 1, 1), (256, 1, 1), (a, b, c, n))
        rt.cudaEventRecord(ev1)
        err, ms = rt.cudaEventElapsedTime(ev0, ev1)
        assert err == C.cudaSuccess
        assert ms > 0

    def test_unrecorded_event_sync(self, rt):
        _, ev = rt.cudaEventCreate()
        assert rt.cudaEventSynchronize(ev) == C.cudaErrorInvalidResourceHandle

    def test_event_destroy(self, rt):
        _, ev = rt.cudaEventCreate()
        assert rt.cudaEventDestroy(ev) == C.cudaSuccess
        assert rt.cudaEventDestroy(ev) == C.cudaErrorInvalidResourceHandle


class TestLaunchAndSync:
    def test_launch_and_synchronize_advances_clock(self, rt):
        n = 4096
        _, a = rt.cudaMalloc(4 * n)
        _, b = rt.cudaMalloc(4 * n)
        _, c = rt.cudaMalloc(4 * n)
        assert (
            rt.cudaLaunchKernel("vectorAdd", (16, 1, 1), (256, 1, 1), (a, b, c, n))
            == C.cudaSuccess
        )
        before = rt.clock.now_ns
        assert rt.cudaDeviceSynchronize() == C.cudaSuccess
        assert rt.clock.now_ns > before

    def test_launch_is_async(self, rt):
        before = rt.clock.now_ns
        rt.cudaLaunchKernel("_Z9nopKernelv", (1, 1, 1), (1, 1, 1), ())
        # Launch queues work; clock does not advance until a sync point.
        assert rt.clock.now_ns == before

    def test_launch_unknown_kernel(self, rt):
        assert (
            rt.cudaLaunchKernel("ghost", (1, 1, 1), (1, 1, 1), ())
            == C.cudaErrorInvalidKernelImage
        )

    def test_launch_computes(self, rt):
        n = 128
        host = np.arange(n, dtype=np.float32)
        _, a = rt.cudaMalloc(4 * n)
        _, b = rt.cudaMalloc(4 * n)
        _, c = rt.cudaMalloc(4 * n)
        rt.cudaMemcpy(a, host.tobytes(), 4 * n, C.cudaMemcpyHostToDevice)
        rt.cudaMemcpy(b, host.tobytes(), 4 * n, C.cudaMemcpyHostToDevice)
        rt.cudaLaunchKernel("vectorAdd", (1, 1, 1), (128, 1, 1), (a, b, c, n))
        rt.cudaDeviceSynchronize()
        _, out = rt.cudaMemcpy(0, c, 4 * n, C.cudaMemcpyDeviceToHost)
        np.testing.assert_allclose(np.frombuffer(out, np.float32), 2 * host)

    def test_device_reset(self, rt):
        rt.cudaMalloc(4096)
        assert rt.cudaDeviceReset() == C.cudaSuccess
        assert rt.devices[0].allocator.used_bytes == 0

    def test_raise_on_error(self, rt):
        rt.raise_on_error(C.cudaSuccess)
        with pytest.raises(CudaError):
            rt.raise_on_error(C.cudaErrorInvalidValue, "ctx")
