"""Tests for the cuFFT subset (local and over Cricket RPC)."""

import numpy as np
import pytest

from repro.cricket import CricketClient, CricketServer
from repro.cuda.cufft import (
    CUFFT_C2C,
    CUFFT_FORWARD,
    CUFFT_INVALID_PLAN,
    CUFFT_INVALID_VALUE,
    CUFFT_INVERSE,
    CUFFT_R2C,
    CUFFT_SUCCESS,
    CufftContext,
)
from repro.gpu import A100, GpuDevice

MIB = 1 << 20


@pytest.fixture()
def fft():
    device = GpuDevice(A100, mem_bytes=64 * MIB)
    return CufftContext(device), device


class TestPlans:
    def test_plan_lifecycle(self, fft):
        ctx, _ = fft
        err, plan = ctx.cufftPlan1d(1024, CUFFT_C2C, 1)
        assert err == CUFFT_SUCCESS and plan > 0
        assert ctx.cufftDestroy(plan) == CUFFT_SUCCESS
        assert ctx.cufftDestroy(plan) == CUFFT_INVALID_PLAN

    def test_invalid_sizes(self, fft):
        ctx, _ = fft
        assert ctx.cufftPlan1d(0, CUFFT_C2C, 1)[0] == CUFFT_INVALID_VALUE
        assert ctx.cufftPlan1d(64, CUFFT_C2C, 0)[0] == CUFFT_INVALID_VALUE
        assert ctx.cufftPlan1d(64, 0x99, 1)[0] == CUFFT_INVALID_VALUE

    def test_exec_wrong_plan_type(self, fft):
        ctx, device = fft
        _, plan = ctx.cufftPlan1d(64, CUFFT_R2C, 1)
        buf = device.alloc(8 * 64)
        assert ctx.cufftExecC2C(plan, buf, buf, CUFFT_FORWARD) == CUFFT_INVALID_VALUE

    def test_exec_invalid_plan(self, fft):
        ctx, _ = fft
        assert ctx.cufftExecC2C(77, 0, 0, CUFFT_FORWARD) == CUFFT_INVALID_PLAN


class TestNumerics:
    def test_c2c_matches_numpy(self, fft):
        ctx, device = fft
        n = 256
        rng = np.random.default_rng(4)
        signal = (rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(np.complex64)
        src = device.alloc(8 * n)
        dst = device.alloc(8 * n)
        device.allocator.write(src, signal.tobytes())
        _, plan = ctx.cufftPlan1d(n, CUFFT_C2C, 1)
        assert ctx.cufftExecC2C(plan, src, dst, CUFFT_FORWARD) == CUFFT_SUCCESS
        out = device.allocator.view(dst, 8 * n).view(np.complex64)
        np.testing.assert_allclose(out, np.fft.fft(signal), rtol=1e-3, atol=1e-3)

    def test_inverse_is_unnormalized(self, fft):
        """cuFFT's inverse does not divide by n (unlike numpy.ifft)."""
        ctx, device = fft
        n = 64
        signal = np.ones(n, dtype=np.complex64)
        src = device.alloc(8 * n)
        dst = device.alloc(8 * n)
        device.allocator.write(src, signal.tobytes())
        _, plan = ctx.cufftPlan1d(n, CUFFT_C2C, 1)
        ctx.cufftExecC2C(plan, src, dst, CUFFT_FORWARD)
        ctx.cufftExecC2C(plan, dst, dst, CUFFT_INVERSE)
        out = device.allocator.view(dst, 8 * n).view(np.complex64)
        np.testing.assert_allclose(out, n * signal, rtol=1e-4)

    def test_batched_transforms(self, fft):
        ctx, device = fft
        n, batch = 128, 4
        rng = np.random.default_rng(5)
        signals = (rng.standard_normal((batch, n)) + 0j).astype(np.complex64)
        src = device.alloc(8 * n * batch)
        dst = device.alloc(8 * n * batch)
        device.allocator.write(src, signals.tobytes())
        _, plan = ctx.cufftPlan1d(n, CUFFT_C2C, batch)
        assert ctx.cufftExecC2C(plan, src, dst, CUFFT_FORWARD) == CUFFT_SUCCESS
        out = device.allocator.view(dst, 8 * n * batch).view(np.complex64).reshape(batch, n)
        np.testing.assert_allclose(out, np.fft.fft(signals, axis=1), rtol=1e-3, atol=1e-3)

    def test_r2c_half_spectrum(self, fft):
        ctx, device = fft
        n = 128
        rng = np.random.default_rng(6)
        signal = rng.standard_normal(n).astype(np.float32)
        src = device.alloc(4 * n)
        dst = device.alloc(8 * (n // 2 + 1))
        device.allocator.write(src, signal.tobytes())
        _, plan = ctx.cufftPlan1d(n, CUFFT_R2C, 1)
        assert ctx.cufftExecR2C(plan, src, dst) == CUFFT_SUCCESS
        out = device.allocator.view(dst, 8 * (n // 2 + 1)).view(np.complex64)
        np.testing.assert_allclose(out, np.fft.rfft(signal), rtol=1e-3, atol=1e-3)

    def test_exec_charges_gpu_time(self, fft):
        ctx, device = fft
        n = 1 << 16
        src = device.alloc(8 * n)
        _, plan = ctx.cufftPlan1d(n, CUFFT_C2C, 1)
        before = device.streams.stream(0).tail_ns
        ctx.cufftExecC2C(plan, src, src, CUFFT_FORWARD)
        assert device.streams.stream(0).tail_ns > before


class TestOverRpc:
    def test_fft_pipeline_over_cricket(self):
        server = CricketServer([GpuDevice(A100, mem_bytes=64 * MIB)])
        client = CricketClient.loopback(server)
        n = 512
        signal = np.exp(2j * np.pi * 5 * np.arange(n) / n).astype(np.complex64)
        src = client.malloc(8 * n)
        dst = client.malloc(8 * n)
        client.memcpy_h2d(src, signal.tobytes())
        plan = client.cufft_plan1d(n, CUFFT_C2C)
        client.cufft_exec_c2c(plan, src, dst, CUFFT_FORWARD)
        spectrum = np.frombuffer(client.memcpy_d2h(dst, 8 * n), np.complex64)
        # a pure tone concentrates its energy in bin 5
        assert np.argmax(np.abs(spectrum)) == 5
        client.cufft_destroy(plan)

    def test_bad_plan_over_rpc(self):
        from repro.cuda.errors import CudaError

        server = CricketServer()
        client = CricketClient.loopback(server)
        with pytest.raises(CudaError):
            client.cufft_destroy(12345)
