"""Tests for the parallel-socket data channels (real TCP striping)."""

import socket

import numpy as np
import pytest

from repro.cricket.data_channel import (
    DataChannelBusyError,
    DataChannelClient,
    DataChannelServer,
    _stripe_slices,
)
from repro.gpu import A100, GpuDevice

MIB = 1 << 20


@pytest.fixture()
def channel():
    device = GpuDevice(A100, mem_bytes=64 * MIB)
    server = DataChannelServer(device)
    yield device, server
    server.close()


class TestStriping:
    def test_stripes_partition_payload_exactly(self):
        total, chunk, n = 1_000_000, 4096, 4
        seen = []
        for stripe in range(n):
            seen.extend(
                range(offset, offset + size)
                for offset, size in _stripe_slices(total, chunk, stripe, n)
            )
        covered = sorted((r.start, r.stop) for r in seen)
        cursor = 0
        for start, stop in covered:
            assert start == cursor
            cursor = stop
        assert cursor == total

    def test_single_stripe_owns_everything(self):
        slices = list(_stripe_slices(10_000, 1024, 0, 1))
        assert sum(size for _o, size in slices) == 10_000

    def test_stripe_beyond_payload_is_empty(self):
        assert list(_stripe_slices(100, 1024, 3, 4)) == []


class TestTransfers:
    def test_write_roundtrip(self, channel):
        device, server = channel
        dptr = device.alloc(4 * MIB)
        payload = np.random.default_rng(0).integers(
            0, 256, 4 * MIB, dtype=np.uint8
        ).tobytes()
        client = DataChannelClient(server.address, sockets=4)
        client.write(dptr, payload)
        assert device.allocator.read(dptr, 4 * MIB) == payload

    def test_read_roundtrip(self, channel):
        device, server = channel
        dptr = device.alloc(2 * MIB)
        payload = bytes(range(256)) * (2 * MIB // 256)
        device.allocator.write(dptr, payload)
        client = DataChannelClient(server.address, sockets=4)
        assert client.read(dptr, 2 * MIB) == payload

    def test_single_socket_degenerate(self, channel):
        device, server = channel
        dptr = device.alloc(256 * 1024)
        payload = b"\xab" * (256 * 1024)
        client = DataChannelClient(server.address, sockets=1)
        client.write(dptr, payload)
        assert client.read(dptr, len(payload)) == payload

    def test_many_sockets_small_payload(self, channel):
        device, server = channel
        dptr = device.alloc(1000)
        payload = bytes(range(250)) * 4
        client = DataChannelClient(server.address, sockets=8, chunk=64)
        client.write(dptr, payload)
        assert client.read(dptr, 1000) == payload

    def test_odd_sizes_and_chunks(self, channel):
        device, server = channel
        size = 777_777
        dptr = device.alloc(size)
        payload = np.random.default_rng(1).integers(0, 256, size, dtype=np.uint8).tobytes()
        client = DataChannelClient(server.address, sockets=3, chunk=10_007)
        client.write(dptr, payload)
        assert client.read(dptr, size) == payload

    def test_sequential_transfers_reuse_channel(self, channel):
        device, server = channel
        client = DataChannelClient(server.address, sockets=2)
        for i in range(3):
            dptr = device.alloc(64 * 1024)
            payload = bytes([i]) * (64 * 1024)
            client.write(dptr, payload)
            assert client.read(dptr, 64 * 1024) == payload

    def test_zero_sockets_rejected(self, channel):
        _device, server = channel
        with pytest.raises(ValueError):
            DataChannelClient(server.address, sockets=0)

    def test_write_to_bad_device_pointer_does_not_hang(self, channel):
        """A transfer to an unmapped pointer fails; the client sees the
        connection die rather than hanging."""
        _device, server = channel
        client = DataChannelClient(server.address, sockets=2)
        with pytest.raises((ConnectionError, AssertionError, OSError)):
            client.write(0xDEAD0000, b"\x00" * 8192)


class TestBackpressure:
    """Overload control on the data channel: staging caps, slow peers."""

    def test_oversized_write_refused_with_busy(self):
        device = GpuDevice(A100, mem_bytes=64 * MIB)
        server = DataChannelServer(device, max_staging_bytes=1 * MIB)
        try:
            dptr = device.alloc(4 * MIB)
            client = DataChannelClient(server.address, sockets=2)
            with pytest.raises(DataChannelBusyError):
                client.write(dptr, b"\x11" * (4 * MIB))
            assert server.backpressure_rejected >= 1
            # nothing was staged, nothing reached the device
            assert server._staging == {}
            assert device.allocator.read(dptr, 4 * MIB) == b"\x00" * (4 * MIB)
        finally:
            server.close()

    def test_small_refusal_arrives_via_reply_path(self):
        """A refused write small enough to fit in socket buffers still
        surfaces the ``BP`` reply as a typed busy error."""
        device = GpuDevice(A100, mem_bytes=64 * MIB)
        server = DataChannelServer(device, max_staging_bytes=1024)
        try:
            dptr = device.alloc(8192)
            client = DataChannelClient(server.address, sockets=1)
            with pytest.raises(DataChannelBusyError):
                client.write(dptr, b"\x22" * 8192)
            assert server.backpressure_rejected == 1
        finally:
            server.close()

    def test_within_cap_write_succeeds_and_staging_is_released(self):
        device = GpuDevice(A100, mem_bytes=64 * MIB)
        server = DataChannelServer(device, max_staging_bytes=2 * MIB)
        try:
            client = DataChannelClient(server.address, sockets=2)
            for fill in (b"\x33", b"\x44"):
                dptr = device.alloc(1 * MIB)
                payload = fill * (1 * MIB)
                client.write(dptr, payload)
                assert device.allocator.read(dptr, 1 * MIB) == payload
            # completed transfers release their staging claim
            assert server._staging == {}
            assert server.backpressure_rejected == 0
        finally:
            server.close()

    def test_slow_reader_throttled_then_disconnected(self):
        import time

        from repro.cricket.data_channel import _HEADER, DIR_READ

        device = GpuDevice(A100, mem_bytes=64 * MIB)
        server = DataChannelServer(
            device, window_bytes=64 * 1024, drain_timeout_s=0.05
        )
        conn = None
        try:
            dptr = device.alloc(8 * MIB)
            conn = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            conn.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            conn.connect(server.address)
            conn.sendall(_HEADER.pack(DIR_READ, 0, 1, 256 * 1024, dptr, 8 * MIB))
            # never read: the server must throttle once, then cut us off
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if server.slow_readers_disconnected >= 1:
                    break
                time.sleep(0.02)
            assert server.slow_readers_disconnected == 1
            assert server.slow_readers_throttled >= 1
            assert "127.0.0.1" in server.slow_peers
        finally:
            if conn is not None:
                conn.close()
            server.close()

    def test_slow_writer_is_dropped_without_leaking_staging(self):
        import time

        from repro.cricket.data_channel import _HEADER, DIR_WRITE

        device = GpuDevice(A100, mem_bytes=64 * MIB)
        server = DataChannelServer(device, recv_timeout_s=0.2)
        stalled = None
        try:
            dptr = device.alloc(1 * MIB)
            stalled = socket.create_connection(server.address, timeout=5.0)
            # declare a 1 MiB write, then go silent
            stalled.sendall(_HEADER.pack(DIR_WRITE, 0, 1, 256 * 1024, dptr, 1 * MIB))
            stalled.settimeout(5.0)
            # the server times out the recv and closes the connection: we
            # observe EOF instead of hanging
            assert stalled.recv(64) == b""
            assert server._staging == {}
            # the service thread is free again: a well-behaved client works
            client = DataChannelClient(server.address, sockets=2)
            payload = b"\x55" * (1 * MIB)
            client.write(dptr, payload)
            assert device.allocator.read(dptr, 1 * MIB) == payload
        finally:
            if stalled is not None:
                stalled.close()
            server.close()
