"""Every example script must run to completion (they self-verify).

The heavy sweep examples (platform_comparison, bandwidth_survey) are
exercised at reduced scale elsewhere; here we run the fast ones end to end
as real subprocesses, the way a user would.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_kernel_cubin.py",
    "checkpoint_migration.py",
    "multi_tenant_scheduling.py",
    "rpclib_universality.py",
    "figure2_cluster.py",
    "profiling_trace.py",
    "spectral_analysis.py",
    "fault_tolerance_demo.py",
    "session_lifecycle_demo.py",
    "failover_demo.py",
    "sanitizer_demo.py",
    "split_brain_demo.py",
    "gray_failure_demo.py",
]


def _example_env() -> dict:
    """Subprocesses must find ``repro`` regardless of how pytest was run."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=tmp_path,  # examples may write artifacts (trace.json)
        env=_example_env(),
    )
    assert result.returncode == 0, (
        f"{script} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 10
    for script in scripts:
        source = script.read_text()
        assert source.lstrip().startswith(("#!", '"""')), f"{script.name} lacks a header"
        assert '"""' in source, f"{script.name} lacks a docstring"
        assert "__main__" in source, f"{script.name} is not runnable"
