"""Failure-injection tests: the stack must fail loudly and cleanly.

Covers: garbage on the wire, truncated streams, a server dying mid-call, a
flaky transport, version/program skew, and poisoned payloads through the
full Cricket path.
"""

import socket
import threading

import pytest

from repro.cricket import CricketClient, CricketServer
from repro.cuda.errors import CudaError
from repro.oncrpc import (
    LoopbackTransport,
    RpcClient,
    RpcProtocolError,
    RpcServer,
    RpcTransportError,
    TcpTransport,
    encode_record,
)
from repro.oncrpc import message as msg
from repro.resilience import FaultInjectingTransport, FaultPlan, RetryPolicy

PROG, VERS = 0x20000099, 3


def echo_server() -> RpcServer:
    server = RpcServer()
    server.register_program(PROG, VERS, {1: lambda args, ctx: args})
    return server


class TestWireGarbage:
    def test_garbage_reply_record(self):
        """A reply that is not a valid rpc_msg raises a protocol error."""

        def dispatch(record: bytes) -> bytes:
            return b"\x00\x01\x02\x03"  # 4 aligned garbage bytes

        client = RpcClient(LoopbackTransport(dispatch), PROG, VERS)
        with pytest.raises((RpcProtocolError, Exception)):
            client.null_call()

    def test_mismatched_xid_reply(self):
        def dispatch(record: bytes) -> bytes:
            request = msg.RpcMessage.decode(record)
            wrong = msg.RpcMessage(request.xid ^ 0xFFFF, msg.AcceptedReply())
            return wrong.encode()

        client = RpcClient(LoopbackTransport(dispatch), PROG, VERS)
        with pytest.raises(RpcProtocolError):
            client.null_call()

    def test_server_drops_unparseable_tcp_connection(self):
        """Garbage bytes over TCP kill that connection but not the server."""
        server = echo_server()
        host, port = server.serve_tcp("127.0.0.1", 0)
        try:
            raw = socket.create_connection((host, port))
            raw.sendall(encode_record(b"\xde\xad\xbe\xef" * 4))
            # server closes on us rather than crashing
            raw.settimeout(2.0)
            assert raw.recv(1024) == b""
            raw.close()
            # a well-behaved client still works afterwards
            with RpcClient(TcpTransport(host, port), PROG, VERS) as client:
                assert client.call_raw(1, b"ok\x00\x00") == b"ok\x00\x00"
        finally:
            server.shutdown()

    def test_oversized_record_rejected_server_side(self):
        server = echo_server()
        host, port = server.serve_tcp("127.0.0.1", 0)
        try:
            raw = socket.create_connection((host, port))
            # claim a 2 GiB fragment: reader must refuse, not allocate
            header = (0x7FFFFFF0).to_bytes(4, "big")
            raw.sendall(header)
            raw.settimeout(2.0)
            assert raw.recv(1024) == b""
            raw.close()
        finally:
            server.shutdown()


class TestServerDeath:
    def test_server_dies_mid_call(self):
        """Connection reset during a call surfaces as a transport error."""
        server = echo_server()
        host, port = server.serve_tcp("127.0.0.1", 0)
        client = RpcClient(TcpTransport(host, port), PROG, VERS)
        client.call_raw(1, b"warm")  # connection established and healthy
        server.shutdown()
        with pytest.raises(RpcTransportError):
            for _ in range(5):
                client.call_raw(1, b"dead")
        client.close()

    def test_client_of_closed_transport(self):
        server = echo_server()
        client = RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)
        client.close()
        with pytest.raises(RpcTransportError):
            client.null_call()


class TestFlakyTransport:
    def test_truncating_transport_detected(self):
        """A transport that corrupts payloads is caught (fail-fast client)."""
        server = echo_server()
        transport = FaultInjectingTransport(
            LoopbackTransport(server.dispatch_record), FaultPlan(truncate_rate=1.0)
        )
        client = RpcClient(transport, PROG, VERS)
        with pytest.raises(Exception):
            client.call_raw(1, b"12345678")

    def test_dropping_transport_detected(self):
        """A lost request surfaces as a transport error (fail-fast client)."""
        server = echo_server()
        transport = FaultInjectingTransport(
            LoopbackTransport(server.dispatch_record),
            FaultPlan(drop_request_rate=1.0),
        )
        client = RpcClient(transport, PROG, VERS)
        with pytest.raises(RpcTransportError):
            client.call_raw(1, b"12345678")

    def test_flaky_transport_survived_with_retry(self):
        """The same faults are absorbed once a retry policy is attached."""
        server = echo_server()
        transport = FaultInjectingTransport(
            LoopbackTransport(server.dispatch_record),
            FaultPlan(
                drop_request_rate=0.2,
                drop_reply_rate=0.1,
                duplicate_rate=0.1,
                disconnect_rate=0.05,
                seed=3,
            ),
        )
        client = RpcClient(
            transport, PROG, VERS,
            retry_policy=RetryPolicy(max_attempts=10, deadline_s=None, seed=3),
            stats=transport.stats,
        )
        for i in range(100):
            payload = i.to_bytes(4, "big")
            assert client.call_raw(1, payload) == payload
        assert transport.stats.total_faults > 0  # the wire really was hostile
        assert transport.stats.retries > 0


class TestVersionSkew:
    def test_old_client_new_server(self):
        server = echo_server()  # exports version 3 only
        client = RpcClient(LoopbackTransport(server.dispatch_record), PROG, 1)
        from repro.oncrpc import RpcProgMismatch

        with pytest.raises(RpcProgMismatch) as exc:
            client.null_call()
        assert exc.value.low == VERS and exc.value.high == VERS


class TestCricketPoisonedPayloads:
    @pytest.fixture()
    def client(self):
        server = CricketServer()
        return CricketClient.loopback(server)

    def test_negative_malloc_size_rejected(self, client):
        from repro.xdr.errors import XdrEncodeError

        with pytest.raises((CudaError, XdrEncodeError, OverflowError)):
            client.malloc(-5)

    def test_huge_d2h_request(self, client):
        ptr = client.malloc(1024)
        with pytest.raises(CudaError):
            client.memcpy_d2h(ptr, 1 << 40)

    def test_free_of_wild_pointer(self, client):
        with pytest.raises(CudaError):
            client.free(0xDEADBEEF)

    def test_launch_with_wild_pointers_fails_at_execution(self):
        """A launch whose pointers are bogus fails server-side with a code,
        not a crash."""
        from repro.cubin import build_cubin_for_registry
        from repro.cubin.metadata import KernelMeta

        server = CricketServer()
        c = CricketClient.loopback(server)
        cubin = build_cubin_for_registry(server.device.registry, ["vectorAdd"])
        module = c.module_load(cubin)
        meta = KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))
        fn = c.get_function(module, "vectorAdd", meta)
        with pytest.raises(CudaError):
            c.launch_kernel(fn, (1, 1, 1), (64, 1, 1), (0x1, 0x2, 0x3, 64))

    def test_concurrent_tcp_clients_with_one_crashing(self):
        """One client violating the protocol must not disturb the others."""
        server = CricketServer()
        host, port = server.serve_tcp("127.0.0.1", 0)
        errors: list[Exception] = []

        def good_worker():
            try:
                client = CricketClient.connect_tcp(host, port)
                for _ in range(20):
                    assert client.get_device_count() == 1
                client.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def evil_worker():
            raw = socket.create_connection((host, port))
            raw.sendall(b"\x80\x00\x00\x08GARBAGE!")
            raw.close()

        threads = [threading.Thread(target=good_worker) for _ in range(3)]
        threads.append(threading.Thread(target=evil_worker))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.shutdown()
        assert errors == []
