"""Property-based hardening tests for the hostile-input surfaces.

Everything a remote peer controls -- record-marking headers, XDR length
prefixes, whole RPC messages -- is fuzzed here with Hypothesis under a
fixed, derandomized profile (so CI failures reproduce exactly).  The
invariant under test is always the same: hostile bytes produce a *typed*
error or a clean parse, never a hang, a MemoryError, or an untyped crash.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cricket import CricketServer
from repro.oncrpc import message as msg
from repro.oncrpc.auth import call_meta_auth, client_token_auth
from repro.oncrpc.errors import (
    RpcIntegrityError,
    RpcProtocolError,
    RpcTransportError,
)
from repro.oncrpc.record import (
    DEFAULT_MAX_FRAGMENT,
    LAST_FRAGMENT,
    RecordReader,
    append_crc,
    encode_record,
    verify_crc,
)
from repro.xdr import XdrDecoder, XdrError, XdrLimitError

# Fixed profile: derandomized so every CI run fuzzes the identical corpus,
# deadline=None so a loaded CI box never flakes on per-example timing.
settings.register_profile(
    "hardening",
    max_examples=150,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("hardening")

#: every exception a hostile record is *allowed* to produce
TYPED_RECORD_ERRORS = (RpcTransportError, RpcProtocolError, RpcIntegrityError)


def stream_reader(data: bytes, **kwargs) -> RecordReader:
    """A RecordReader over an in-memory byte stream with recv semantics."""
    view = memoryview(data)
    pos = 0

    def read(n: int) -> bytes:
        nonlocal pos
        chunk = view[pos : pos + n]
        pos += len(chunk)
        return bytes(chunk)

    return RecordReader(read, **kwargs)


class TestRecordReaderFuzz:
    @given(st.binary(max_size=512))
    def test_arbitrary_bytes_terminate(self, data):
        """Random garbage into the reassembler: records or typed errors,
        and the stream always terminates (no livelock on junk headers)."""
        reader = stream_reader(
            data, max_record_size=1 << 16, max_fragment_size=1 << 12
        )
        # each loop iteration consumes >= 4 header bytes or ends the stream
        for _ in range(len(data) // 4 + 2):
            try:
                if reader.read_record() is None:
                    return
            except TYPED_RECORD_ERRORS:
                return
        pytest.fail("record reader failed to make progress on fuzz input")

    @given(st.binary(max_size=2048), st.integers(min_value=0))
    def test_bit_flipped_record(self, payload, position):
        """One flipped bit anywhere in a framed CRC'd record: either the
        flip lands in padding we never made (impossible), the CRC catches
        it, or the framing rejects it -- never a hang or untyped crash."""
        wire = bytearray(encode_record(append_crc(payload), fragment_size=256))
        position %= len(wire)
        wire[position] ^= 1 << (position % 8)
        reader = stream_reader(
            bytes(wire), max_record_size=1 << 16, max_fragment_size=1 << 12
        )
        try:
            record = reader.read_record()
            if record is not None:
                verify_crc(record)
        except TYPED_RECORD_ERRORS:
            pass

    @given(st.binary(max_size=1024), st.integers(min_value=0))
    def test_truncated_record(self, payload, position):
        """Cutting the stream anywhere inside a record is a typed
        transport error (or a clean None when nothing arrived at all)."""
        wire = encode_record(payload, fragment_size=128)
        cut = position % len(wire)
        reader = stream_reader(wire[:cut], max_record_size=1 << 16)
        if cut == 0:
            assert reader.read_record() is None
        else:
            with pytest.raises(RpcTransportError):
                reader.read_record()

    def test_oversized_fragment_rejected_before_buffering(self):
        """A forged header declaring a multi-hundred-MiB fragment is
        refused from the 4 header bytes alone -- the reader never asks the
        transport for the declared payload."""
        hostile = ((256 * 1024 * 1024) | LAST_FRAGMENT).to_bytes(4, "big")
        requested: list[int] = []
        view = memoryview(hostile)
        pos = 0

        def read(n: int) -> bytes:
            nonlocal pos
            requested.append(n)
            chunk = view[pos : pos + n]
            pos += len(chunk)
            return bytes(chunk)

        reader = RecordReader(read)
        with pytest.raises(RpcProtocolError, match="above the"):
            reader.read_record()
        assert max(requested) <= 4
        assert 256 * 1024 * 1024 > DEFAULT_MAX_FRAGMENT  # the cap did this

    def test_record_size_cap_across_fragments(self):
        """Many small conforming fragments cannot tiptoe past the record
        cap: reassembly stops at the bound, not at exhaustion."""
        fragment = (64 | 0).to_bytes(4, "big") + b"\x00" * 64

        def read(n, _state=[0, fragment * 8]):
            pos, data = _state
            chunk = data[pos : pos + n]
            _state[0] += len(chunk)
            return chunk

        reader = RecordReader(read, max_record_size=256)
        with pytest.raises(RpcProtocolError, match="maximum size"):
            reader.read_record()


class TestMessageDecodeFuzz:
    @given(st.binary(max_size=512))
    def test_arbitrary_bytes(self, data):
        """Random bytes into RpcMessage.decode: message or typed error."""
        try:
            msg.RpcMessage.decode(data)
        except (RpcProtocolError, XdrError):
            pass

    @given(st.integers(min_value=0), st.integers(min_value=0, max_value=7))
    def test_bit_flipped_call(self, position, bit):
        """A real call message with one bit flipped still decodes to a
        message or a typed error -- auth opaques, length prefixes and
        union discriminants all reject rather than crash."""
        call = msg.CallBody(
            prog=0x20000199,
            vers=1,
            proc=12,
            cred=client_token_auth(b"fuzz-tenant"),
            verf=call_meta_auth(5_000_000, priority=1),
            args=(4096).to_bytes(8, "big") + (8).to_bytes(4, "big") + b"abcdefgh",
        )
        wire = bytearray(msg.RpcMessage(99, call).encode())
        position %= len(wire)
        wire[position] ^= 1 << bit
        try:
            msg.RpcMessage.decode(bytes(wire))
        except (RpcProtocolError, XdrError):
            pass


class TestXdrDecoderFuzz:
    @given(st.binary(max_size=256))
    def test_opaque_and_string(self, data):
        """Length-prefixed unpacks on arbitrary bytes: the declared length
        is capped *before* allocation, so a forged 4-byte prefix can name
        4 GiB without costing more than a typed error."""
        for unpack in ("unpack_opaque", "unpack_string", "unpack_array_header"):
            try:
                getattr(XdrDecoder(data), unpack)()
            except XdrError:
                pass

    def test_forged_length_is_limit_error(self):
        hostile = (0xFFFF_FFF0).to_bytes(4, "big")
        with pytest.raises(XdrLimitError):
            XdrDecoder(hostile).unpack_opaque()
        # the typed subclass still participates in the generic mapping
        assert issubclass(XdrLimitError, XdrError)


class TestServerHostileArgs:
    def test_hostile_opaque_length_maps_to_garbage_args(self):
        """rpc_cudaMemcpyH2D with a forged ~4 GiB opaque length prefix:
        the server answers GARBAGE_ARGS (XdrLimitError mapped by the stub
        skeleton) instead of buffering, crashing, or touching the GPU."""
        server = CricketServer()
        used_before = sum(d.allocator.used_bytes for d in server.devices)
        call = msg.CallBody(
            prog=0x20000199,
            vers=1,
            proc=12,  # rpc_cudaMemcpyH2D(unsigned hyper, raw)
            cred=client_token_auth(b"fuzz-tenant"),
            verf=call_meta_auth(5_000_000_000),
            args=(4096).to_bytes(8, "big") + (0xFFFF_FFF0).to_bytes(4, "big"),
        )
        reply = server.dispatch_record(msg.RpcMessage(11, call).encode())
        assert msg.RpcMessage.decode(reply).body.stat == msg.GARBAGE_ARGS
        assert sum(d.allocator.used_bytes for d in server.devices) == used_before


class TestExpiredNeverExecutes:
    """Satellite regression: a call that arrives past its deadline must be
    refused before any GpuDevice method runs, for *any* xid or size."""

    server = None

    @classmethod
    def setup_class(cls):
        cls.server = CricketServer()

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        st.integers(min_value=1, max_value=0xFFFF_FFFF),
        st.integers(min_value=1, max_value=1 << 30),
    )
    def test_expired_malloc_never_allocates(self, xid, size):
        server = self.server
        used_before = sum(d.allocator.used_bytes for d in server.devices)
        call = msg.CallBody(
            prog=0x20000199,
            vers=1,
            proc=10,  # rpc_cudaMalloc
            cred=client_token_auth(b"expired-tenant"),
            verf=call_meta_auth(0),  # remaining budget: none
            args=size.to_bytes(8, "big"),
        )
        reply = server.dispatch_record(msg.RpcMessage(xid, call).encode())
        assert msg.RpcMessage.decode(reply).body.stat == msg.CALL_EXPIRED
        assert sum(d.allocator.used_bytes for d in server.devices) == used_before
