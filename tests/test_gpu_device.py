"""Unit tests for the GPU device: kernels, streams, timing, checkpointing."""

import numpy as np
import pytest

from repro.gpu import (
    A100,
    T4,
    DEFAULT_STREAM,
    GpuDevice,
    GpuError,
    KernelParamError,
    UnknownKernelError,
)
from repro.gpu.catalog import by_name
from repro.gpu.errors import InvalidStreamError
from repro.gpu.kernels import KernelCost
from repro.gpu.timing import GpuTimingModel

MIB = 1024 * 1024


@pytest.fixture()
def device():
    return GpuDevice(A100, mem_bytes=64 * MIB)


class TestCatalog:
    def test_lookup(self):
        assert by_name("NVIDIA T4") is T4

    def test_unknown(self):
        with pytest.raises(KeyError):
            by_name("NVIDIA H100")


class TestKernelExecution:
    def test_vector_add(self, device):
        n = 1024
        a = device.alloc(4 * n)
        b = device.alloc(4 * n)
        c = device.alloc(4 * n)
        device.allocator.view(a, 4 * n).view(np.float32)[:] = np.arange(n)
        device.allocator.view(b, 4 * n).view(np.float32)[:] = 1.0
        device.launch("vectorAdd", (4, 1, 1), (256, 1, 1), (a, b, c, n))
        out = device.allocator.view(c, 4 * n).view(np.float32)
        np.testing.assert_allclose(out, np.arange(n) + 1.0)

    def test_matrix_mul_matches_numpy(self, device):
        block = 16
        h, w, k = 32, 48, 64
        rng = np.random.default_rng(1)
        a_host = rng.random((h, k), dtype=np.float32)
        b_host = rng.random((k, w), dtype=np.float32)
        a = device.alloc(a_host.nbytes)
        b = device.alloc(b_host.nbytes)
        c = device.alloc(4 * h * w)
        device.allocator.write(a, a_host.tobytes())
        device.allocator.write(b, b_host.tobytes())
        device.launch(
            "matrixMulCUDA",
            (w // block, h // block, 1),
            (block, block, 1),
            (c, a, b, k, w),
        )
        out = device.allocator.view(c, 4 * h * w).view(np.float32).reshape(h, w)
        np.testing.assert_allclose(out, a_host @ b_host, rtol=1e-5)

    def test_histogram256(self, device):
        rng = np.random.default_rng(2)
        data_host = rng.integers(0, 256, size=100_000, dtype=np.uint8)
        data = device.alloc(data_host.nbytes)
        hist = device.alloc(256 * 4)
        device.allocator.write(data, data_host.tobytes())
        device.launch("histogram256Kernel", (64, 1, 1), (256, 1, 1), (hist, data, data_host.size))
        out = device.allocator.view(hist, 256 * 4).view(np.uint32)
        np.testing.assert_array_equal(out, np.bincount(data_host, minlength=256))

    def test_reduce_sum(self, device):
        n = 4096
        src = device.alloc(4 * n)
        out = device.alloc(8)
        device.allocator.view(src, 4 * n).view(np.float32)[:] = 0.5
        device.launch("reduceSum", (16, 1, 1), (256, 1, 1), (out, src, n))
        total = device.allocator.view(out, 8).view(np.float64)[0]
        assert total == pytest.approx(n * 0.5)

    def test_saxpy(self, device):
        n = 100
        x = device.alloc(4 * n)
        y = device.alloc(4 * n)
        device.allocator.view(x, 4 * n).view(np.float32)[:] = 2.0
        device.allocator.view(y, 4 * n).view(np.float32)[:] = 3.0
        device.launch("saxpy", (1, 1, 1), (128, 1, 1), (y, x, 4.0, n))
        np.testing.assert_allclose(
            device.allocator.view(y, 4 * n).view(np.float32), 11.0
        )

    def test_transpose(self, device):
        w, h = 8, 4
        src_host = np.arange(w * h, dtype=np.float32).reshape(h, w)
        src = device.alloc(src_host.nbytes)
        dst = device.alloc(src_host.nbytes)
        device.allocator.write(src, src_host.tobytes())
        device.launch("transposeCoalesced", (1, 1, 1), (32, 1, 1), (dst, src, w, h))
        out = device.allocator.view(dst, src_host.nbytes).view(np.float32).reshape(w, h)
        np.testing.assert_array_equal(out, src_host.T)

    def test_unknown_kernel(self, device):
        with pytest.raises(UnknownKernelError):
            device.launch("missingKernel", (1, 1, 1), (1, 1, 1), ())

    def test_param_count_checked(self, device):
        with pytest.raises(KernelParamError):
            device.launch("vectorAdd", (1, 1, 1), (32, 1, 1), (1, 2))

    def test_param_type_checked(self, device):
        with pytest.raises(KernelParamError):
            device.launch("vectorAdd", (1, 1, 1), (32, 1, 1), ("a", 0, 0, 4))

    def test_degenerate_geometry(self, device):
        with pytest.raises(GpuError):
            device.launch("_Z9nopKernelv", (0, 1, 1), (1, 1, 1), ())

    def test_execute_false_skips_numerics_but_charges_time(self):
        device = GpuDevice(A100, execute=False, mem_bytes=MIB)
        n = 64
        a = device.alloc(4 * n)
        b = device.alloc(4 * n)
        c = device.alloc(4 * n)
        result = device.launch("vectorAdd", (1, 1, 1), (64, 1, 1), (a, b, c, n))
        assert result.duration_ns > 0
        # numerics skipped: c stays zero
        assert not device.allocator.view(c, 4 * n).any()

    def test_launch_count(self, device):
        device.launch("_Z9nopKernelv", (1, 1, 1), (1, 1, 1), ())
        device.launch("_Z9nopKernelv", (1, 1, 1), (1, 1, 1), ())
        assert device.launch_count == 2


class TestStreamsAndTiming:
    def test_stream_ordering(self, device):
        stream = device.streams.create_stream()
        r1 = device.launch("_Z9nopKernelv", (1, 1, 1), (1, 1, 1), (), stream=stream)
        r2 = device.launch("_Z9nopKernelv", (1, 1, 1), (1, 1, 1), (), stream=stream)
        assert r2.done_ns >= r1.done_ns + r2.duration_ns

    def test_default_stream_exists(self, device):
        result = device.launch("_Z9nopKernelv", (1, 1, 1), (1, 1, 1), ())
        assert result.done_ns > 0

    def test_unknown_stream(self, device):
        with pytest.raises(InvalidStreamError):
            device.launch("_Z9nopKernelv", (1, 1, 1), (1, 1, 1), (), stream=99)

    def test_synchronize_covers_all_streams(self, device):
        s1 = device.streams.create_stream()
        device.launch("_Z9nopKernelv", (1, 1, 1), (1, 1, 1), (), stream=s1)
        assert device.synchronize_ns() == device.streams.stream(s1).tail_ns

    def test_event_elapsed(self, device):
        ev0 = device.streams.create_event()
        ev1 = device.streams.create_event()
        device.streams.record_event(ev0, DEFAULT_STREAM)
        device.launch("vectorAdd", (1024, 1, 1), (256, 1, 1), (
            device.alloc(4 * 256 * 1024), device.alloc(4 * 256 * 1024),
            device.alloc(4 * 256 * 1024), 256 * 1024,
        ))
        device.streams.record_event(ev1, DEFAULT_STREAM)
        assert device.streams.elapsed_ms(ev0, ev1) > 0

    def test_timing_roofline(self):
        timing = GpuTimingModel(A100)
        compute_bound = KernelCost(flops=1e12, bytes_read=1e6, bytes_written=1e6)
        memory_bound = KernelCost(flops=1e6, bytes_read=1e12, bytes_written=0)
        assert timing.kernel_time_s(compute_bound) > timing.kernel_time_s(
            KernelCost(flops=1e9)
        )
        assert timing.kernel_time_s(memory_bound) > timing.kernel_time_s(
            KernelCost(bytes_read=1e9)
        )

    def test_fp64_slower_than_fp32(self):
        timing = GpuTimingModel(A100)
        cost = KernelCost(flops=1e12)
        assert timing.kernel_time_s(cost, fp64=True) > timing.kernel_time_s(cost)

    def test_memcpy_time_monotonic(self):
        timing = GpuTimingModel(A100)
        assert timing.memcpy_time_s(MIB) < timing.memcpy_time_s(64 * MIB)
        with pytest.raises(ValueError):
            timing.memcpy_time_s(-1)


class TestMemcpy:
    def test_h2d_d2h_roundtrip(self, device):
        payload = bytes(range(256)) * 4
        ptr = device.alloc(len(payload))
        seconds = device.memcpy_h2d(ptr, payload)
        assert seconds > 0
        data, seconds2 = device.memcpy_d2h(ptr, len(payload))
        assert data == payload
        assert seconds2 > 0

    def test_d2d(self, device):
        a = device.alloc(128)
        b = device.alloc(128)
        device.memcpy_h2d(a, b"x" * 128)
        device.memcpy_d2d(b, a, 128)
        assert device.allocator.read(b, 128) == b"x" * 128

    def test_reset_clears_allocations(self, device):
        device.alloc(1024)
        device.reset()
        assert device.allocator.used_bytes == 0


class TestCheckpoint:
    def test_snapshot_restore_roundtrip(self, device):
        a = device.alloc(512)
        b = device.alloc(2048)
        device.allocator.write(a, bytes(range(256)) * 2)
        device.allocator.write(b, b"\xaa" * 2048)
        blob = device.snapshot()

        target = GpuDevice(A100, mem_bytes=64 * MIB)
        target.restore(blob)
        assert target.allocator.read(a, 512) == bytes(range(256)) * 2
        assert target.allocator.read(b, 2048) == b"\xaa" * 2048

    def test_restore_preserves_addresses_after_fragmentation(self, device):
        ptrs = [device.alloc(1024) for _ in range(4)]
        device.free(ptrs[1])  # leave a hole: replay order != address order
        device.allocator.write(ptrs[2], b"z" * 1024)
        blob = device.snapshot()
        target = GpuDevice(A100, mem_bytes=64 * MIB)
        target.restore(blob)
        assert target.allocator.read(ptrs[2], 1024) == b"z" * 1024
        assert target.allocator.is_live(ptrs[0])
        assert not target.allocator.is_live(ptrs[1])

    def test_restore_wrong_model_rejected(self, device):
        blob = device.snapshot()
        target = GpuDevice(T4)
        with pytest.raises(GpuError):
            target.restore(blob)

    def test_restored_allocator_still_usable(self, device):
        device.alloc(512)
        blob = device.snapshot()
        target = GpuDevice(A100, mem_bytes=64 * MIB)
        target.restore(blob)
        ptr = target.alloc(4096)
        target.allocator.write(ptr, b"k" * 4096)
        assert target.allocator.read(ptr, 4096) == b"k" * 4096
        target.allocator.check_invariants()
