"""Unit and property tests for the device memory allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.errors import (
    AllocationOverlapError,
    DoubleFreeError,
    InvalidDevicePointerError,
    OutOfMemoryError,
)
from repro.gpu.memory import ALIGNMENT, DEVICE_VA_BASE, DeviceAllocator

MIB = 1024 * 1024


@pytest.fixture()
def allocator():
    return DeviceAllocator(16 * MIB)


class TestAllocFree:
    def test_alloc_returns_aligned_nonnull(self, allocator):
        ptr = allocator.alloc(100)
        assert ptr >= DEVICE_VA_BASE
        assert ptr % ALIGNMENT == 0

    def test_distinct_allocations_disjoint(self, allocator):
        a = allocator.alloc(1000)
        b = allocator.alloc(1000)
        assert abs(a - b) >= 1000

    def test_zero_byte_alloc(self, allocator):
        ptr = allocator.alloc(0)
        assert ptr != 0
        allocator.free(ptr)

    def test_free_null_is_noop(self, allocator):
        allocator.free(0)

    def test_double_free_detected(self, allocator):
        ptr = allocator.alloc(64)
        allocator.free(ptr)
        with pytest.raises(DoubleFreeError):
            allocator.free(ptr)

    def test_free_interior_pointer_detected(self, allocator):
        ptr = allocator.alloc(1024)
        with pytest.raises(InvalidDevicePointerError):
            allocator.free(ptr + 8)

    def test_oom(self):
        allocator = DeviceAllocator(1 * MIB)
        allocator.alloc(MIB // 2)
        with pytest.raises(OutOfMemoryError):
            allocator.alloc(MIB)

    def test_free_makes_space_reusable(self):
        allocator = DeviceAllocator(1 * MIB)
        ptr = allocator.alloc(MIB - ALIGNMENT)
        allocator.free(ptr)
        ptr2 = allocator.alloc(MIB - ALIGNMENT)
        assert ptr2 == ptr

    def test_coalescing_allows_large_realloc(self):
        allocator = DeviceAllocator(1 * MIB)
        ptrs = [allocator.alloc(MIB // 4 - ALIGNMENT) for _ in range(4)]
        for p in ptrs:
            allocator.free(p)
        big = allocator.alloc(MIB - 4 * ALIGNMENT)
        assert big == ptrs[0]

    def test_used_and_free_bytes(self, allocator):
        before = allocator.free_bytes
        ptr = allocator.alloc(1000)
        assert allocator.used_bytes >= 1000
        assert allocator.free_bytes < before
        allocator.free(ptr)
        assert allocator.used_bytes == 0
        assert allocator.free_bytes == allocator.capacity

    def test_counters(self, allocator):
        p = allocator.alloc(10)
        allocator.free(p)
        assert allocator.alloc_count == 1
        assert allocator.free_count == 1


class TestAccess:
    def test_write_read_roundtrip(self, allocator):
        ptr = allocator.alloc(256)
        data = bytes(range(256))
        allocator.write(ptr, data)
        assert allocator.read(ptr, 256) == data

    def test_offset_access(self, allocator):
        ptr = allocator.alloc(1024)
        allocator.write(ptr + 100, b"hello")
        assert allocator.read(ptr + 100, 5) == b"hello"

    def test_view_is_writable(self, allocator):
        ptr = allocator.alloc(16)
        view = allocator.view(ptr, 16)
        view[:] = 7
        assert allocator.read(ptr, 16) == b"\x07" * 16

    def test_typed_view_via_numpy(self, allocator):
        ptr = allocator.alloc(32)
        allocator.view(ptr, 32).view(np.float32)[:] = 1.5
        assert allocator.read(ptr, 4) == np.float32(1.5).tobytes()

    def test_out_of_bounds_access(self, allocator):
        ptr = allocator.alloc(100)
        with pytest.raises(AllocationOverlapError):
            allocator.view(ptr + 90, 20)

    def test_unmapped_access(self, allocator):
        with pytest.raises(InvalidDevicePointerError):
            allocator.read(DEVICE_VA_BASE + 123456789, 4)

    def test_use_after_free(self, allocator):
        ptr = allocator.alloc(64)
        allocator.free(ptr)
        with pytest.raises(InvalidDevicePointerError):
            allocator.read(ptr, 4)

    def test_memset(self, allocator):
        ptr = allocator.alloc(64)
        allocator.memset(ptr, 0xAB, 64)
        assert allocator.read(ptr, 64) == b"\xab" * 64

    def test_copy_within(self, allocator):
        a = allocator.alloc(64)
        b = allocator.alloc(64)
        allocator.write(a, bytes(range(64)))
        allocator.copy_within(b, a, 64)
        assert allocator.read(b, 64) == bytes(range(64))

    def test_copy_within_overlapping(self, allocator):
        ptr = allocator.alloc(64)
        allocator.write(ptr, bytes(range(64)))
        allocator.copy_within(ptr + 8, ptr, 32)
        assert allocator.read(ptr + 8, 32) == bytes(range(32))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=0, max_value=4096)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
        ),
        max_size=80,
    )
)
def test_allocator_invariants_hold_under_random_workload(ops):
    """The allocator's address space is always exactly partitioned."""
    allocator = DeviceAllocator(1 * MIB)
    live: list[int] = []
    for op, arg in ops:
        if op == "alloc":
            try:
                live.append(allocator.alloc(arg))
            except OutOfMemoryError:
                pass
        elif live:
            allocator.free(live.pop(arg % len(live)))
        allocator.check_invariants()
    for ptr in live:
        allocator.free(ptr)
    allocator.check_invariants()
    assert allocator.used_bytes == 0


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_no_two_live_allocations_overlap(data):
    allocator = DeviceAllocator(1 * MIB)
    sizes = data.draw(st.lists(st.integers(1, 2048), min_size=1, max_size=40))
    spans = []
    for size in sizes:
        try:
            ptr = allocator.alloc(size)
        except OutOfMemoryError:
            break
        spans.append((ptr, size))
    spans.sort()
    for (a, sa), (b, _sb) in zip(spans, spans[1:]):
        assert a + sa <= b
