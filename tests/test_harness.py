"""Unit tests for the evaluation harness (cheap scales only)."""

import pytest

from repro.harness import (
    PAPER_TABLE1,
    render_table,
    run_figure6,
    run_transfer_method_comparison,
    table1,
    table1_rows,
)
from repro.harness.runner import ScaledTime, make_session
from repro.unikernel import native_rust


class TestTable1:
    def test_rows_match_paper(self):
        rows = table1_rows()
        got = [(r.name, r.app_language, r.os_name, r.hypervisor, r.network) for r in rows]
        assert got == PAPER_TABLE1

    def test_render_contains_all_platforms(self):
        text = table1()
        for name in ("Rust", "Linux VM", "Unikraft", "Hermit"):
            assert name in text


class TestScaledTime:
    def test_extrapolation_scales_loop_only(self):
        t = ScaledTime(
            measured_s=10.0, init_s=2.0, loop_s=5.0,
            run_iterations=100, paper_iterations=1000, api_calls=100,
        )
        assert t.setup_s == pytest.approx(3.0)
        assert t.paper_scale_s == pytest.approx(2.0 + 3.0 + 50.0)

    def test_identity_at_full_scale(self):
        t = ScaledTime(
            measured_s=7.0, init_s=1.0, loop_s=4.0,
            run_iterations=500, paper_iterations=500, api_calls=500,
        )
        assert t.paper_scale_s == pytest.approx(7.0)


class TestFigure6Small:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_figure6(scale=500)  # 200 calls per cell: fast

    def test_all_cells_present(self, fig6):
        assert set(fig6.times) == {
            "cudaGetDeviceCount",
            "cudaMalloc/cudaFree",
            "kernel launch",
        }
        for by_platform in fig6.times.values():
            assert set(by_platform) == {"C", "Rust", "Linux VM", "Unikraft", "Hermit"}

    def test_ordering_stable_at_small_scale(self, fig6):
        for bench in fig6.times:
            assert fig6.seconds(bench, "Linux VM") > fig6.seconds(bench, "Hermit")
            assert fig6.seconds(bench, "Hermit") > fig6.seconds(bench, "Rust")

    def test_render_mentions_call_count(self, fig6):
        assert "100,000 calls" in fig6.render()

    def test_ratio_helper(self, fig6):
        assert fig6.ratio("kernel launch", "Rust") == pytest.approx(1.0)


class TestTransferComparison:
    def test_methods_all_present(self):
        result = run_transfer_method_comparison(nbytes=32 << 20)
        assert set(result.bandwidth_MiBps) == {
            "rpc-args",
            "parallel-sockets",
            "ib-gpudirect",
            "shared-memory",
        }

    def test_render(self):
        result = run_transfer_method_comparison(nbytes=32 << 20)
        text = result.render()
        assert "rpc-args" in text and "MiB/s" in text


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(
            "T", ["name", "value"], [("a", 1.5), ("bb", 22.25)]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert "1.500" in text

    def test_make_session_defaults_to_timing_only(self):
        with make_session(native_rust()) as session:
            assert session.config.execute is False
            assert session.client.get_device_count() == 1


class TestRenderBars:
    def test_bars_scale_to_peak(self):
        from repro.harness.report import render_bars

        text = render_bars("T", {"a": 1.0, "b": 2.0}, unit="s", width=10)
        lines = text.splitlines()
        bar_a = lines[2].count("#")
        bar_b = lines[3].count("#")
        assert bar_b == 10 and bar_a == 5

    def test_bars_zero_values(self):
        from repro.harness.report import render_bars

        text = render_bars("T", {"a": 0.0, "b": 0.0})
        assert "a" in text and "b" in text

    def test_bars_empty(self):
        from repro.harness.report import render_bars

        assert render_bars("title", {}) == "title"

    def test_figure_renders_include_bars(self):
        from repro.harness import run_figure6

        out = run_figure6(scale=1000).render()
        assert "#" in out  # bar charts included


class TestExtrapolationExactness:
    def test_scaled_extrapolation_matches_direct_run(self):
        """The 1/10-scale claim: extrapolated loop time equals a direct run.

        Virtual time is deterministic and the micro-benchmark loops are
        linear, so running 200 calls and extrapolating x10 must equal
        running 2000 calls directly (up to the constant setup portion).
        """
        from repro.harness.figure6 import run_figure6

        scaled = run_figure6(scale=500)    # 200 calls, extrapolated x500
        direct = run_figure6(scale=100)    # 1000 calls, extrapolated x100
        for bench in scaled.times:
            for platform in ("Rust", "Hermit"):
                a = scaled.seconds(bench, platform)
                b = direct.seconds(bench, platform)
                assert a == pytest.approx(b, rel=1e-3)
