"""Tests for the command-line harness entry point."""

import pytest

from repro.harness.__main__ import ARTIFACTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in ARTIFACTS:
            assert key in out

    def test_single_artifact(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Hermit" in out
        assert "regenerated" in out

    def test_unknown_artifact_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure9000"])

    def test_artifact_registry_complete(self):
        assert set(ARTIFACTS) == {
            "table1", "fig5", "fig6", "fig7", "offloads", "methods", "outlook",
        }

    def test_outlook_artifact_runs(self, capsys):
        assert main(["outlook"]) == 0
        out = capsys.readouterr().out
        assert "vDPA" in out
