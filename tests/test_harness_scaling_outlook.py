"""Unit tests for the scaling and outlook harness modules (cheap scales)."""

import pytest

from repro.harness.breakdown import (
    CostBreakdown,
    bulk_upload_workload,
    chatty_workload,
    measure_breakdown,
)
from repro.harness.scaling import TenantLoad, run_scaling, tenant_items
from repro.unikernel import native_rust, rustyhermit
from repro.unikernel.presets import (
    rustyhermit_vdpa,
    rustyhermit_with_tso,
    unikraft_with_csum_offload,
)

MIB = 1 << 20


class TestScalingModel:
    def test_tenant_items_staggered(self):
        load = TenantLoad(kernels=3)
        a = tenant_items(0, load, 0)
        b = tenant_items(1, load, 100)
        assert len(a) == len(b) == 3
        assert a[0].submit_ns != b[0].submit_ns  # staggered arrivals

    def test_result_has_all_counts(self):
        result = run_scaling(tenant_counts=(1, 2, 4))
        for policy in ("fifo", "round-robin"):
            assert [p.tenants for p in result.curves[policy]] == [1, 2, 4]

    def test_utilization_bounded(self):
        result = run_scaling(tenant_counts=(1, 8))
        for points in result.curves.values():
            for p in points:
                assert 0 < p.utilization <= 1.0

    def test_render(self):
        result = run_scaling(tenant_counts=(1, 2))
        text = result.render()
        assert "fifo" in text and "round-robin" in text
        assert "GPU utilization" in text

    def test_saturation_emerges(self):
        result = run_scaling(tenant_counts=(1, 16))
        curve = result.utilization_curve("fifo")
        assert curve[1] > curve[0]


class TestOutlookPresets:
    def test_tso_preset_only_flips_tso(self):
        base = rustyhermit()
        tso = rustyhermit_with_tso()
        assert not base.netstack.virtio.host_tso4
        assert tso.netstack.virtio.host_tso4
        assert tso.netstack.tx_copies == base.netstack.tx_copies

    def test_vdpa_preset_reduces_virtio_costs(self):
        base = rustyhermit()
        vdpa = rustyhermit_vdpa()
        assert vdpa.netstack.virtio_costs.kick_s < base.netstack.virtio_costs.kick_s
        assert vdpa.netstack.virtio_costs.irq_s < base.netstack.virtio_costs.irq_s

    def test_csum_preset_negotiates_offload(self):
        platform = unikraft_with_csum_offload()
        assert platform.netstack.virtio.csum
        assert platform.netstack.virtio.guest_csum
        assert not platform.netstack.virtio.host_tso4  # TSO still missing


class TestBreakdown:
    def test_components_sum_to_total(self):
        bd = measure_breakdown(native_rust(), chatty_workload(calls=50))
        assert sum(bd.components_s.values()) == pytest.approx(bd.total_s, rel=0.02)

    def test_fraction_and_dominant(self):
        bd = CostBreakdown("x", 10.0, {"a": 7.0, "b": 3.0})
        assert bd.fraction("a") == pytest.approx(0.7)
        assert bd.fraction("missing") == 0.0
        assert bd.dominant() == "a"

    def test_zero_total(self):
        bd = CostBreakdown("x", 0.0, {"a": 0.0})
        assert bd.fraction("a") == 0.0

    def test_bulk_workload_attributes_to_stacks(self):
        bd = measure_breakdown(rustyhermit(), bulk_upload_workload(nbytes=16 * MIB))
        assert bd.fraction("client_stack") > bd.fraction("wire")

    def test_render_mentions_all_components(self):
        bd = measure_breakdown(native_rust(), chatty_workload(calls=10))
        text = bd.render()
        for component in ("client_cpu", "wire", "server_dispatch", "cuda"):
            assert component in text
