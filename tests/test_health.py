"""Gray-failure detection: SLOs, outlier ejection, brownout, limplocks.

Everything runs over virtual time with seeded RNG streams, so detection
latencies, ejection schedules and brownout transitions are exact.
"""

import tempfile

import pytest

from repro.cricket import (
    CricketClient,
    CricketServer,
    ReplicationLink,
    state_fingerprint,
)
from repro.cricket.ckptstore import CheckpointStore, FileStorage
from repro.cubin import build_cubin_for_registry
from repro.cubin.metadata import KernelMeta
from repro.gpu.catalog import A100
from repro.gpu.device import GpuDevice
from repro.net.simclock import SimClock
from repro.oncrpc import (
    LoopbackTransport,
    RpcBusyError,
    RpcDeadlineExceeded,
    RpcRetryExhausted,
)
from repro.resilience import (
    GRAY_TOPOLOGIES,
    BrownoutConfig,
    BrownoutController,
    CircuitBreaker,
    FaultPlan,
    FaultyStorage,
    GrayFailureChaosHarness,
    GrayFailureChaosPlan,
    HealthTracker,
    LatencyHistogram,
    LatencySLO,
    OutlierEjector,
    ReconnectingTransport,
    RetryPolicy,
    SlowEndpoint,
    SlowFaultPlan,
    SlowTransport,
    StorageFaultPlan,
    null_probe,
)
from repro.resilience.failover import LoopbackEndpoint

US = 1_000
MS = 1_000_000


class TestLatencyHistogram:
    def test_quantile_is_bucket_upper_bound(self):
        h = LatencyHistogram()
        for _ in range(100):
            h.record(2 * US)  # falls in the (1.78us, 3.16us] bucket
        assert h.p50 == h.p99 == 3162
        assert h.count == 100
        assert h.mean_ns == pytest.approx(2 * US)

    def test_tail_sample_moves_p99_not_p50(self):
        h = LatencyHistogram()
        for _ in range(90):
            h.record(2 * US)
        for _ in range(10):
            h.record(50 * MS)
        assert h.p50 == 3162
        assert h.p99 > 10 * MS

    def test_overflow_bucket_reports_max(self):
        h = LatencyHistogram()
        h.record(500_000_000_000)  # beyond the last bound (~69 s)
        assert h.p99 == 500_000_000_000

    def test_empty_and_reset(self):
        h = LatencyHistogram()
        assert h.p99 == 0 and h.mean_ns == 0.0
        h.record(5 * US)
        h.reset()
        assert h.count == 0 and h.p99 == 0 and h.max_ns == 0

    def test_validation(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.record(-1)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestHealthTracker:
    def test_srtt_seeds_from_first_sample(self):
        t = HealthTracker("x")
        t.record(8 * US)
        assert t.srtt_ns == 8 * US
        assert t.rttvar_ns == 4 * US

    def test_deviation_score_flags_anomaly(self):
        t = HealthTracker("x")
        for _ in range(16):
            t.record(2 * US)
        calm = t.deviation_score
        t.record(2 * MS)  # 1000x blip
        assert t.deviation_score > calm
        assert t.deviation_score > 3.0

    def test_reset_clears_smoothing(self):
        t = HealthTracker("x")
        t.record(9 * US)
        t.reset()
        assert t.count == 0 and t.srtt_ns == 0.0 and t.last_ns == 0


class TestLatencySLO:
    def test_undersampled_never_breaches(self):
        slo = LatencySLO(target_p99_ns=US, min_samples=8)
        t = HealthTracker()
        for _ in range(7):
            t.record(10 * MS)
        assert not slo.breached(t)
        assert slo.ratio(t) == 0.0

    def test_breach_and_ratio(self):
        slo = LatencySLO(target_p99_ns=US, min_samples=4)
        t = HealthTracker()
        for _ in range(8):
            t.record(10 * MS)
        assert slo.breached(t)
        assert slo.ratio(t) > 1.0


class TestOutlierEjector:
    def _pool(self, slow_name="c", slow_ns=30 * US):
        trackers = {n: HealthTracker(n) for n in ("a", "b", "c", "d", "e")}
        for name, t in trackers.items():
            for _ in range(8):
                t.record(slow_ns if name == slow_name else 2 * US)
        return trackers

    def test_ejects_the_limping_member(self):
        ejector = OutlierEjector(clock=SimClock())
        decision = ejector.evaluate(self._pool())
        assert decision.ejected == ("c",)
        assert ejector.is_ejected("c")
        assert ejector.ejections == 1

    def test_uniform_pool_ejects_nothing(self):
        ejector = OutlierEjector(clock=SimClock())
        trackers = self._pool(slow_name="nobody")
        assert ejector.evaluate(trackers) == ejector.evaluate(trackers)
        assert ejector.ejections == 0

    def test_eject_fraction_caps_collateral(self):
        # three of five limp: the 40% budget allows at most two out
        ejector = OutlierEjector(clock=SimClock())
        trackers = self._pool()
        for name in ("d", "e"):
            trackers[name].reset()
            for _ in range(8):
                trackers[name].record(30 * US)
        ejector.evaluate(trackers)
        assert len(ejector.ejected_names) <= 2

    def test_probation_readmits_with_fresh_history(self):
        clock = SimClock()
        ejector = OutlierEjector(clock=clock, probation_s=0.5)
        trackers = self._pool()
        ejector.evaluate(trackers)
        assert ejector.is_ejected("c")
        clock.advance_s(0.6)
        decision = ejector.evaluate(trackers)
        assert decision.readmitted == ("c",)
        assert trackers["c"].count == 0  # judged on fresh samples
        assert ejector.readmissions == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            OutlierEjector(clock=SimClock(), outlier_factor=1.0)
        with pytest.raises(ValueError):
            OutlierEjector(clock=SimClock(), max_eject_fraction=0.0)


class TestBrownoutController:
    def _controller(self, clock, score_cell):
        c = BrownoutController(clock=clock, config=BrownoutConfig())
        c.add_signal("test", lambda: score_cell[0])
        return c

    def test_stage_rises_immediately(self):
        score = [0.5]
        c = self._controller(SimClock(), score)
        assert c.update() == 0
        score[0] = 1.5
        assert c.update() == 1
        score[0] = 5.0
        assert c.update() == 2
        assert c.entries == 1  # one entry despite two stage rises

    def test_exit_needs_calm_dwell(self):
        clock = SimClock()
        score = [2.0]
        c = self._controller(clock, score)
        c.update()
        assert c.stage == 1
        score[0] = 0.1
        assert c.update() == 1  # calm, but no dwell yet
        clock.advance_s(0.1)
        assert c.update() == 1  # still inside min_dwell_s
        clock.advance_s(0.2)
        assert c.update() == 0
        assert c.exits == 1

    def test_blip_resets_calm_timer(self):
        clock = SimClock()
        score = [2.0]
        c = self._controller(clock, score)
        c.update()
        score[0] = 0.1
        c.update()
        clock.advance_s(0.2)
        score[0] = 2.0
        c.update()  # relapse: calm timer must restart
        score[0] = 0.1
        clock.advance_s(0.1)
        assert c.update() == 1

    def test_stage2_falls_one_stage_at_a_time(self):
        clock = SimClock()
        score = [5.0]
        c = self._controller(clock, score)
        assert c.update() == 2
        score[0] = 0.1
        assert c.update() == 2  # starts the calm timer
        clock.advance_s(0.3)
        assert c.update() == 1
        assert c.update() == 1  # calm timer restarted at the stage change
        clock.advance_s(0.3)
        assert c.update() == 0

    def test_shed_stat_by_stage_and_priority(self):
        c = BrownoutController(clock=SimClock())
        assert c.shed_stat(0) is None  # stage 0 admits everything
        c.stage = 1
        assert c.shed_stat(0) == 100 and c.shed_stat(1) == 100
        assert c.shed_stat(2) is None and c.shed_stat(3) is None
        c.stage = 2
        assert c.shed_stat(2) == 100
        assert c.shed_stat(3) is None

    def test_knobs_scale_with_stage(self):
        c = BrownoutController(clock=SimClock())
        assert c.checkpoint_interval_factor == 1
        assert c.queue_depth_override(64) is None
        c.stage = 1
        assert c.checkpoint_interval_factor == 2
        assert c.queue_depth_override(64) == 16
        c.stage = 2
        assert c.checkpoint_interval_factor == 4
        assert c.queue_depth_override(2) == 1  # never below 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BrownoutConfig(enter_ratio=1.0, exit_ratio=1.0)
        with pytest.raises(ValueError):
            BrownoutConfig(enter_ratio=1.0, stage2_ratio=0.9)


class TestSlowFaults:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            SlowFaultPlan(base_delay_s=-1)
        with pytest.raises(ValueError):
            SlowFaultPlan(spike_rate=1.5)
        with pytest.raises(ValueError):
            SlowFaultPlan(throughput_Bps=0)

    def test_slow_transport_charges_only_when_active(self):
        clock = SimClock()
        server = CricketServer(clock=clock)
        inner = LoopbackTransport(server.dispatch_record)
        slow = SlowTransport(
            inner, SlowFaultPlan(base_delay_s=0.01), clock=clock, active=False
        )
        client = CricketClient(slow, clock=clock)
        client.ping()
        # inactive: draws made, nothing charged beyond the dispatch cost
        assert slow.charged_s == 0.0
        baseline_ns = clock.now_ns
        slow.active = True
        client.ping()
        assert slow.charged_s == pytest.approx(0.02)  # send + recv
        assert clock.now_ns - baseline_ns >= int(0.02 * 1e9)

    def test_inactive_draws_keep_schedule_aligned(self):
        """Flipping `active` later must not shift the jitter stream."""

        def charged(active_from: int) -> float:
            clock = SimClock()
            server = CricketServer(clock=clock)
            slow = SlowTransport(
                LoopbackTransport(server.dispatch_record),
                SlowFaultPlan(base_delay_s=0.01, jitter_s=0.01, seed=3),
                clock=clock,
                active=False,
            )
            client = CricketClient(slow, clock=clock)
            for i in range(6):
                slow.active = i >= active_from
                client.ping()
            return slow.charged_s

        # ops 4..5 must cost the same whether ops 0..3 were active or not
        lead = charged(active_from=0) - charged(active_from=4)
        clock = SimClock()
        server = CricketServer(clock=clock)
        slow = SlowTransport(
            LoopbackTransport(server.dispatch_record),
            SlowFaultPlan(base_delay_s=0.01, jitter_s=0.01, seed=3),
            clock=clock,
        )
        client = CricketClient(slow, clock=clock)
        for _ in range(4):
            client.ping()
        assert lead == pytest.approx(slow.charged_s)

    def test_slow_fsync_charges_virtual_time(self):
        clock = SimClock()
        with tempfile.TemporaryDirectory() as root:
            storage = FaultyStorage(
                FileStorage(root),
                StorageFaultPlan(slow_fsync_rate=1.0, slow_fsync_s=0.02),
                clock=clock,
            )
            storage.write_atomic("blob", b"x" * 64)
            assert clock.now_ns == int(0.02 * 1e9)
            assert storage.stats.faults_injected["slow_fsync"] == 1
            # the write itself still succeeded -- limping, not broken
            assert storage.read("blob") == b"x" * 64


class TestProbeRtt:
    """Satellite: probe RTT feeds the breaker and resilience stats."""

    PROG, VERS = 0x2000C10C, 1

    def _server(self, clock):
        server = CricketServer(clock=clock)
        return server

    def test_reconnect_records_probe_rtt(self):
        clock = SimClock()
        server = self._server(clock)
        probe_plan = SlowFaultPlan(base_delay_s=0.005)

        def factory():
            return SlowTransport(
                LoopbackTransport(server.dispatch_record), probe_plan, clock=clock
            )

        from repro.cricket import cricket_interface

        iface = cricket_interface()
        breaker = CircuitBreaker(clock=clock, slow_after_s=0.002)
        transport = ReconnectingTransport(
            factory,
            breaker=breaker,
            clock=clock,
            probe=null_probe(iface.prog_number, iface.vers_number),
            connect_now=False,
        )
        transport.reconnect()
        # NULL probe = one send + one recv through the limping transport
        # (plus the server's fixed dispatch cost)
        assert transport.stats.probe_rtt_last_ns >= int(0.01 * 1e9)
        assert breaker.last_probe_rtt_ns == transport.stats.probe_rtt_last_ns
        assert breaker.suspect
        assert breaker.slow_probes == 1
        assert transport.stats.slow_probes == 1

    def test_fast_probe_is_not_suspect(self):
        clock = SimClock()
        server = self._server(clock)
        from repro.cricket import cricket_interface

        iface = cricket_interface()
        breaker = CircuitBreaker(clock=clock, slow_after_s=0.002)
        transport = ReconnectingTransport(
            lambda: LoopbackTransport(server.dispatch_record),
            breaker=breaker,
            clock=clock,
            probe=null_probe(iface.prog_number, iface.vers_number),
            connect_now=False,
        )
        transport.reconnect()
        assert breaker.last_probe_rtt_ns is not None
        assert breaker.last_probe_rtt_ns < int(0.002 * 1e9)
        assert not breaker.suspect
        assert transport.stats.slow_probes == 0


class TestSlowProbesAndDeadlines:
    """Satellite: liveness probes under delay faults stay typed and bounded."""

    def test_ping_charges_delay_against_deadline(self):
        clock = SimClock()
        server = CricketServer(clock=clock)
        client = CricketClient.loopback(
            server,
            clock=clock,
            faults=FaultPlan(delay_rate=1.0, delay_s=0.004, drop_request_rate=1.0, seed=1),
            retry_policy=RetryPolicy(
                max_attempts=50, base_delay_s=0.002, multiplier=2.0,
                jitter=0.0, deadline_s=0.02,
            ),
        )
        with pytest.raises(RpcDeadlineExceeded):
            client.ping()
        # the fault delay was charged to the budget clock, not ignored
        assert 0 < clock.now_ns <= int(0.02 * 1e9)
        assert client.stats.deadlines_exceeded == 1

    def test_rpc_ping_retry_exhaustion_is_typed_not_a_hang(self):
        clock = SimClock()
        server = CricketServer(clock=clock)
        client = CricketClient.loopback(
            server,
            clock=clock,
            faults=FaultPlan(delay_rate=1.0, delay_s=0.001, drop_reply_rate=1.0, seed=2),
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0, deadline_s=None),
        )
        with pytest.raises(RpcRetryExhausted):
            client.renew_lease()
        assert client.stats.retries_exhausted == 1

    def test_slow_but_alive_ping_succeeds_and_charges_time(self):
        clock = SimClock()
        server = CricketServer(clock=clock)
        client = CricketClient.loopback(
            server,
            clock=clock,
            faults=FaultPlan(delay_rate=1.0, delay_s=0.003, seed=3),
        )
        client.ping()
        assert clock.now_ns >= int(0.003 * 1e9)  # the limp was charged
        remaining = client.renew_lease()
        assert remaining != 0


class TestFailoverEjection:
    def _cluster(self, limp_s=0.02):
        clock = SimClock()
        servers = [CricketServer(clock=clock) for _ in range(3)]
        endpoints = [
            LoopbackEndpoint(s, name=f"server{i}") for i, s in enumerate(servers)
        ]
        slow = SlowEndpoint(
            endpoints[2],
            SlowFaultPlan(base_delay_s=limp_s, seed=0),
            clock=clock,
        )
        endpoints[2] = slow
        ejector = OutlierEjector(clock=clock, probation_s=1.0)
        client = CricketClient.failover(
            endpoints, retry_policy=RetryPolicy(max_attempts=8), ejector=ejector
        )
        return clock, client, client.failover_transport, ejector, slow

    def test_hedged_probes_eject_limping_endpoint(self):
        clock, client, transport, ejector, _slow = self._cluster()
        for _ in range(8):
            client.get_device_count()
            transport.probe_endpoints()
        assert ejector.is_ejected("server2")
        assert not ejector.is_ejected("server0")
        assert not ejector.is_ejected("server1")
        assert client.stats.hedged_probes >= 1
        assert client.stats.endpoints_ejected == 1

    def test_traffic_avoids_ejected_endpoint(self):
        clock, client, transport, ejector, slow = self._cluster()
        for _ in range(8):
            client.get_device_count()
            transport.probe_endpoints()
        assert ejector.is_ejected("server2")
        before = clock.now_ns
        client.get_device_count()
        # a call that had landed on the limper would charge >= 40 ms
        assert clock.now_ns - before < int(0.02 * 1e9)

    def test_probation_readmission_counts(self):
        clock, client, transport, ejector, slow = self._cluster()
        for _ in range(8):
            client.get_device_count()
            transport.probe_endpoints()
        slow.set_active(False)  # repair while ejected
        clock.advance_s(1.5)
        transport.probe_endpoints()
        assert not ejector.is_ejected("server2")
        assert client.stats.endpoints_readmitted == 1


class TestDegradedGpuPreemption:
    def _server(self):
        clock = SimClock()
        server = CricketServer(
            [GpuDevice(A100), GpuDevice(A100)], clock=clock, auto_recover=True
        )
        client = CricketClient.loopback(server)
        cubin = build_cubin_for_registry(server.device.registry, ["vectorAdd"])
        module = client.module_load(cubin)
        meta = KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))
        fn = client.get_function(module, "vectorAdd", meta)
        n = 1 << 12
        bufs = tuple(client.malloc(4 * n) for _ in range(3))
        return server, client, fn, bufs, n

    def _launch(self, client, fn, bufs, n):
        client.launch_kernel(fn, (n // 256, 1, 1), (256, 1, 1), (*bufs, n))
        client.device_synchronize()

    def test_throttle_triggers_preemptive_failover(self):
        server, client, fn, bufs, n = self._server()
        self._launch(client, fn, bufs, n)
        assert server.server_stats.ladder_preemptive_failovers == 0
        server.devices[0].inject_soft_fault("throttle", 4.0)
        for _ in range(4):
            self._launch(client, fn, bufs, n)
        assert server.server_stats.ladder_preemptive_failovers == 1
        # the limping device was swapped out and reset clean
        assert not server.devices[0].degraded
        assert server.devices[0].healthy

    def test_mild_throttle_does_not_preempt(self):
        server, client, fn, bufs, n = self._server()
        server.devices[0].inject_soft_fault("throttle", 1.5)  # below threshold
        for _ in range(4):
            self._launch(client, fn, bufs, n)
        assert server.server_stats.ladder_preemptive_failovers == 0

    def test_no_spare_no_preemption(self):
        clock = SimClock()
        server = CricketServer([GpuDevice(A100)], clock=clock, auto_recover=True)
        client = CricketClient.loopback(server)
        server.devices[0].inject_soft_fault("throttle", 4.0)
        assert client.get_device_count() == 1
        assert server.server_stats.ladder_preemptive_failovers == 0


class TestServerBrownout:
    def _browned_server(self, limp_s=0.02):
        clock = SimClock()
        slo = LatencySLO(target_p99_ns=int(limp_s * 0.5 * 1e9), min_samples=4)
        server = CricketServer(clock=clock, brownout=True, checkpoint_slo=slo)
        tracker = HealthTracker("checkpoint-write")
        server.attach_checkpoint_health(tracker)
        for _ in range(8):
            tracker.record(int(limp_s * 1e9))
        return clock, server, tracker

    def test_breached_slo_enters_brownout_and_sheds(self):
        clock, server, tracker = self._browned_server()
        high = CricketClient.loopback(server, priority=3)
        low = CricketClient.loopback(server, priority=0)
        assert high.get_device_count() >= 1  # dispatch updates the brownout
        assert server.brownout.active
        with pytest.raises(RpcBusyError):
            low.get_device_count()
        assert high.get_device_count() >= 1  # high priority still admitted
        assert server.server_stats.brownout_sheds == 1
        assert server.checkpoint_interval_factor > 1

    def test_brownout_suspends_sanitizer_sweeps(self):
        clock = SimClock()
        slo = LatencySLO(target_p99_ns=int(0.01 * 1e9), min_samples=4)
        server = CricketServer(
            clock=clock, brownout=True, checkpoint_slo=slo, sanitizer=True
        )
        tracker = HealthTracker("checkpoint-write")
        server.attach_checkpoint_health(tracker)
        for _ in range(8):
            tracker.record(int(0.02 * 1e9))
        client = CricketClient.loopback(server, priority=3)
        server._dispatches_since_sweep = 10**9  # force a sweep attempt
        client.get_device_count()
        assert server.server_stats.sweeps_suspended >= 1

    def test_recovery_exits_after_dwell(self):
        clock, server, tracker = self._browned_server()
        client = CricketClient.loopback(server, priority=3)
        client.get_device_count()
        assert server.brownout.active
        tracker.reset()  # repair: fresh history, like ejector readmission
        for _ in range(8):
            clock.advance_s(0.1)
            client.get_device_count()
        assert not server.brownout.active
        assert server.server_stats.brownout_entries == 1
        assert server.server_stats.brownout_exits == 1
        assert server.checkpoint_interval_factor == 1


class TestReplicationDemotion:
    def test_slow_ship_demotes_to_async_lag(self):
        primary = CricketServer(clock=SimClock())
        standby = CricketServer(clock=SimClock())
        link = ReplicationLink(
            primary,
            standby,
            max_lag=0,
            ship_slo=LatencySLO(target_p99_ns=int(0.001 * 1e9), min_samples=4),
        )
        client = CricketClient.loopback(primary)
        link.ship_delay_s = 0.01
        for _ in range(8):
            client.malloc(4096)
        assert link.demoted
        assert link.max_lag == link.demoted_max_lag
        assert primary.server_stats.replication_demotions == 1

    def test_demotion_preserves_convergence(self):
        primary = CricketServer(clock=SimClock())
        standby = CricketServer(clock=SimClock())
        link = ReplicationLink(
            primary,
            standby,
            max_lag=0,
            ship_slo=LatencySLO(target_p99_ns=int(0.001 * 1e9), min_samples=4),
        )
        client = CricketClient.loopback(primary)
        link.ship_delay_s = 0.01
        ptr = client.malloc(4096)
        for i in range(8):
            client.memcpy_h2d(ptr, bytes([i]) * 64)
        assert link.demoted
        link.flush()
        assert state_fingerprint(primary) == state_fingerprint(standby)

    def test_fast_ship_never_demotes(self):
        primary = CricketServer(clock=SimClock())
        standby = CricketServer(clock=SimClock())
        link = ReplicationLink(
            primary,
            standby,
            max_lag=0,
            ship_slo=LatencySLO(target_p99_ns=int(0.01 * 1e9), min_samples=4),
        )
        client = CricketClient.loopback(primary)
        for _ in range(8):
            client.malloc(4096)
        assert not link.demoted
        assert link.max_lag == 0


class TestCheckpointWriteLatency:
    def test_store_records_write_latency(self):
        clock = SimClock()
        server = CricketServer(clock=clock)
        with tempfile.TemporaryDirectory() as root:
            faulty = FaultyStorage(
                FileStorage(root),
                StorageFaultPlan(slow_fsync_rate=1.0, slow_fsync_s=0.02),
                clock=clock,
            )
            store = CheckpointStore(storage=faulty, clock=clock)
            store.save_full(server)
            assert store.write_latency.count >= 1
            assert store.write_latency.p99 >= int(0.02 * 1e9)

    def test_store_without_clock_stays_silent(self):
        server = CricketServer(clock=SimClock())
        with tempfile.TemporaryDirectory() as root:
            store = CheckpointStore(storage=FileStorage(root))
            store.save_full(server)
            assert store.write_latency.count == 0


class TestGrayFailureChaos:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            GrayFailureChaosPlan(topology="nope")
        with pytest.raises(ValueError):
            GrayFailureChaosPlan(limp_s=0.0)
        with pytest.raises(ValueError):
            GrayFailureChaosPlan(topology="throttled_gpu", throttle=1.0)

    @pytest.mark.parametrize("topology", GRAY_TOPOLOGIES)
    def test_topology_clean(self, topology):
        result = GrayFailureChaosHarness(
            GrayFailureChaosPlan(topology=topology, seed=0)
        ).run()
        assert result.detected
        assert result.detection_latency_ns >= 0
        assert result.false_ejections == ()
        assert result.clean

    def test_deterministic_across_runs(self):
        plan = GrayFailureChaosPlan(topology="slow_endpoint", seed=7)
        a = GrayFailureChaosHarness(plan).run()
        b = GrayFailureChaosHarness(plan).run()
        assert a == b

    def test_seed_varies_victim(self):
        latencies = {
            GrayFailureChaosHarness(
                GrayFailureChaosPlan(topology="slow_endpoint", seed=s)
            ).run().detection_latency_ns
            for s in range(4)
        }
        assert len(latencies) > 1
