"""Tests for resumable live migration and the migration chaos harness."""

import struct

import pytest

from repro.cricket import (
    CricketClient,
    CricketServer,
    FaultyMigrationChannel,
    LoopbackMigrationChannel,
    MigrationConfig,
    MigrationSource,
    MigrationTarget,
    SocketMigrationChannel,
    migrate_live,
)
from repro.cricket.data_channel import DataChannelClient, DataChannelServer
from repro.cricket.errors import (
    ChunkRejectedError,
    MigrationChannelError,
    MigrationError,
)
from repro.cricket.migration import (
    KIND_BEGIN,
    KIND_FRAGS,
    decode_chunk,
    encode_chunk,
)
from repro.cricket.replication import state_fingerprint
from repro.gpu import A100, GpuDevice
from repro.resilience.chaos import MigrationChaosHarness, MigrationChaosPlan
from repro.resilience.failover import LoopbackEndpoint
from repro.resilience.retry import RetryPolicy

MIB = 1 << 20


def small_server() -> CricketServer:
    return CricketServer([GpuDevice(A100, mem_bytes=128 * MIB)])


def populated(allocs: int = 5, size: int = 128 * 1024):
    server = small_server()
    client = CricketClient.loopback(server)
    ptrs = []
    for i in range(allocs):
        ptr = client.malloc(size)
        client.memcpy_h2d(ptr, bytes([i + 1]) * min(size, 4096))
        ptrs.append(ptr)
    return server, client, ptrs


class TestChunkFormat:
    def test_roundtrip(self):
        blob = encode_chunk(KIND_FRAGS, 3, 1, b"payload")
        chunk = decode_chunk(blob)
        assert chunk.kind == KIND_FRAGS
        assert chunk.seq == 3
        assert chunk.round == 1
        assert chunk.payload == b"payload"

    def test_corrupt_chunk_rejected(self):
        blob = bytearray(encode_chunk(KIND_BEGIN, 1, 0, b"x" * 64))
        blob[8] ^= 0xFF
        with pytest.raises(ChunkRejectedError):
            decode_chunk(bytes(blob))

    def test_truncated_chunk_rejected(self):
        blob = encode_chunk(KIND_BEGIN, 1, 0, b"x" * 64)
        with pytest.raises(ChunkRejectedError):
            decode_chunk(blob[:10])


class TestLiveMigration:
    def test_loopback_migration_preserves_state(self):
        source, _client, _ptrs = populated()
        fingerprint = state_fingerprint(source)
        target = MigrationTarget(small_server())
        report = migrate_live(MigrationSource(source), target)
        assert report.completed and not report.aborted
        assert state_fingerprint(target.server) == fingerprint
        assert source.killed  # cutover kills the source
        assert report.pause_ns <= MigrationConfig().pause_budget_ns

    def test_precopy_rounds_shrink_the_pause(self):
        source, client, ptrs = populated(allocs=8, size=256 * 1024)
        target = MigrationTarget(small_server())
        report = migrate_live(MigrationSource(source), target)
        # pre-copy shipped the bulk; the pause covered only the residual
        assert report.precopy_bytes > report.stop_copy_bytes
        assert report.rounds >= 2

    def test_disconnect_resumes_from_cursor(self, tmp_path):
        source, _client, _ptrs = populated()
        fingerprint = state_fingerprint(source)
        target = MigrationTarget(small_server(), storage=str(tmp_path))
        channel = FaultyMigrationChannel(
            LoopbackMigrationChannel(target), disconnect_before={3}
        )
        mig = MigrationSource(source, storage=str(tmp_path))
        report = migrate_live(mig, target, channel)
        assert report.completed
        assert report.resumes == 1
        # the counters prove a resume, not a restart: duplicates stay 0
        # because redelivery starts exactly after the last ack
        assert target.server.server_stats.migration_chunks_duplicate == 0
        assert state_fingerprint(target.server) == fingerprint

    def test_corrupt_chunk_naks_and_retransmits(self):
        source, _client, _ptrs = populated()
        fingerprint = state_fingerprint(source)
        target = MigrationTarget(small_server())
        channel = FaultyMigrationChannel(
            LoopbackMigrationChannel(target), corrupt_sends={2}
        )
        report = migrate_live(MigrationSource(source), target, channel)
        assert report.completed
        assert report.chunks_resent >= 1
        assert report.resumes == 0  # a NAK is handled in-band
        assert state_fingerprint(target.server) == fingerprint

    def test_target_kill_recovers_from_journal(self, tmp_path):
        source, _client, _ptrs = populated(allocs=6, size=192 * 1024)
        fingerprint = state_fingerprint(source)
        mig = MigrationSource(source, storage=str(tmp_path))
        first = MigrationTarget(small_server(), storage=str(tmp_path))
        channel = FaultyMigrationChannel(
            LoopbackMigrationChannel(first), disconnect_before={4}
        )
        with pytest.raises(MigrationChannelError):
            mig.start(channel)
            mig.run_precopy(channel)
            mig.stop_and_copy(channel)
        # the target process dies; a fresh one recovers from the journal
        second = MigrationTarget(small_server(), storage=str(tmp_path))
        acked = second.recover()
        assert acked == mig.acked  # journal-before-ack: nothing acked is lost
        channel2 = LoopbackMigrationChannel(second)
        mig.resume(channel2, receiver_acked=acked)
        if mig.phase == "precopy":
            mig.run_precopy(channel2)
        mig.stop_and_copy(channel2)
        second.finalize()
        mig.cutover()
        assert state_fingerprint(second.server) == fingerprint
        assert mig.report.resumes == 1

    def test_journal_recovery_drops_torn_tail(self, tmp_path):
        source, _client, _ptrs = populated()
        mig = MigrationSource(source)
        target = MigrationTarget(small_server(), storage=str(tmp_path))
        channel = LoopbackMigrationChannel(target)
        mig.start(channel)
        acked = target.last_acked
        # simulate the append a crash interrupted: a torn trailing record
        with open(tmp_path / "migration.journal", "ab") as fh:
            fh.write(struct.pack(">I", 500) + b"torn")
        recovered = MigrationTarget(small_server(), storage=str(tmp_path))
        assert recovered.recover() == acked

    def test_duplicate_chunks_are_absorbed(self):
        source, _client, _ptrs = populated(allocs=2)
        target = MigrationTarget(small_server())
        channel = LoopbackMigrationChannel(target)
        mig = MigrationSource(source)
        mig.start(channel)
        blob = encode_chunk(KIND_BEGIN, 1, 0, b"ignored-duplicate")
        assert target.receive(blob) == target.last_acked
        assert target.server.server_stats.migration_chunks_duplicate == 1

    def test_chunk_gap_is_rejected(self):
        target = MigrationTarget(small_server())
        with pytest.raises(MigrationError):
            target.receive(encode_chunk(KIND_FRAGS, 5, 0, b"out of order"))

    def test_pause_budget_exceeded_aborts_and_source_serves(self):
        source, client, ptrs = populated(allocs=4, size=MIB)
        target = MigrationTarget(small_server())
        mig = MigrationSource(
            source, config=MigrationConfig(pause_budget_ns=1)
        )
        with pytest.raises(MigrationError):
            migrate_live(mig, target)
        assert mig.report.aborted
        assert not source.serving_paused
        assert not source.killed
        # the source still answers after the abort
        ptr = client.malloc(4096)
        client.memcpy_h2d(ptr, b"\x07" * 64)
        assert client.memcpy_d2h(ptr, 64) == b"\x07" * 64

    def test_serving_paused_sheds_nonexempt_calls(self):
        source, client, _ptrs = populated(allocs=1)
        source.pause_serving()
        from repro.cuda.errors import CudaError

        with pytest.raises((CudaError, Exception)):
            client.malloc(4096)
        source.resume_serving()
        assert client.malloc(4096) > 0

    def test_cutover_rotates_failover_clients(self):
        source, _client, ptrs = populated()
        target = MigrationTarget(small_server())
        report = migrate_live(MigrationSource(source), target)
        assert report.completed
        verifier = CricketClient.failover(
            [
                LoopbackEndpoint(source, name="source"),
                LoopbackEndpoint(target.server, name="target"),
            ],
            retry_policy=RetryPolicy(max_attempts=6),
        )
        assert verifier.memcpy_d2h(ptrs[0], 64) == bytes([1]) * 64
        assert verifier.stats.failovers >= 1

    def test_reply_cache_travels_with_migration(self):
        from repro.oncrpc import message as msg
        from repro.oncrpc.auth import client_token_auth

        source, _client, _ptrs = populated(allocs=1)
        call = msg.CallBody(
            prog=source.interface.prog_number,
            vers=source.interface.vers_number,
            proc=source.interface.signatures["rpc_cudaMalloc"].number,
            cred=client_token_auth(b"at-most-once"),
            args=(1 << 12).to_bytes(8, "big"),
        )
        record = msg.RpcMessage(77, call).encode()
        original = source.dispatch_record(record)
        target = MigrationTarget(small_server())
        migrate_live(MigrationSource(source), target)
        migrated = target.server
        used_before = sum(d.allocator.used_bytes for d in migrated.devices)
        replay = migrated.dispatch_record(record)
        used_after = sum(d.allocator.used_bytes for d in migrated.devices)
        assert replay == original  # cached, byte-identical
        assert used_after == used_before  # no re-execution

    def test_abort_sends_abort_chunk_and_resumes_serving(self):
        source, client, _ptrs = populated(allocs=1)
        target = MigrationTarget(small_server())
        channel = LoopbackMigrationChannel(target)
        mig = MigrationSource(source)
        mig.start(channel)
        mig.abort(channel)
        assert target.aborted
        assert not source.serving_paused
        assert client.malloc(1024) > 0

    def test_socket_channel_over_data_channel_blob_lane(self):
        source, _client, _ptrs = populated(allocs=4)
        fingerprint = state_fingerprint(source)
        target = MigrationTarget(small_server())
        data_server = DataChannelServer(
            target.server.device,
            blob_sink=lambda _tag, payload: struct.pack(
                ">Q", target.receive(payload)
            ),
        )
        try:
            data_client = DataChannelClient(data_server.address, sockets=1)
            channel = SocketMigrationChannel(data_client)
            report = migrate_live(MigrationSource(source), target, channel)
            assert report.completed
            assert state_fingerprint(target.server) == fingerprint
        finally:
            data_server.close()


class TestMigrationChaosHarness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_schedule_is_clean(self, seed):
        result = MigrationChaosHarness(MigrationChaosPlan(seed=seed)).run()
        assert result.clean, result
        assert result.lost_allocations == 0
        assert result.bytes_unaccounted == 0
        assert result.resumes > 0
        assert result.target_recoveries == 1
        assert result.begin_deliveries == 1  # never restarted from chunk one
        assert result.chunks_duplicate == 0
        assert result.pause_ns <= result.pause_budget_ns
        assert result.torn_fallback_ok
        assert result.checkpoint_fallbacks >= 1
        assert result.replay_cache_ok
        assert result.failovers >= 1

    def test_fault_free_control(self):
        plan = MigrationChaosPlan(
            disconnects=0,
            corrupt_chunk=False,
            kill_target=False,
            storage_faults=False,
            torn_checkpoint=False,
        )
        result = MigrationChaosHarness(plan).run()
        assert result.clean, result
        assert result.faults_injected == 0
        assert result.resumes == 0
        assert result.chunks_resent == 0

    def test_kill_target_requires_a_disconnect(self):
        with pytest.raises(ValueError):
            MigrationChaosPlan(disconnects=0, kill_target=True)
