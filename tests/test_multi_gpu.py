"""Multi-device tests: the paper's four-GPU node (A100, 2x T4, P40)."""

import numpy as np
import pytest

from repro.cricket import CricketClient, CricketServer
from repro.cubin import build_cubin_for_registry
from repro.cubin.metadata import KernelMeta
from repro.cuda.errors import CudaError
from repro.gpu import GpuDevice
from repro.gpu.catalog import A100, P40, T4, paper_gpu_node

MIB = 1 << 20


@pytest.fixture()
def gpu_node():
    devices = [
        GpuDevice(spec, ordinal=i, mem_bytes=64 * MIB)
        for i, spec in enumerate(paper_gpu_node())
    ]
    return CricketServer(devices)


@pytest.fixture()
def client(gpu_node):
    return CricketClient.loopback(gpu_node)


class TestDeviceInventory:
    def test_paper_node_inventory(self):
        assert paper_gpu_node() == [A100, T4, T4, P40]

    def test_client_sees_four_devices(self, client):
        assert client.get_device_count() == 4

    def test_properties_per_device(self, client):
        names = [client.get_device_properties(i)["name"] for i in range(4)]
        assert "A100" in names[0]
        assert names[1] == names[2] == "NVIDIA T4"
        assert "P40" in names[3]


class TestPerDeviceState:
    def test_allocations_are_per_device(self, client, gpu_node):
        client.set_device(0)
        ptr0 = client.malloc(4096)
        client.set_device(1)
        ptr1 = client.malloc(4096)
        assert gpu_node.devices[0].allocator.is_live(ptr0)
        assert gpu_node.devices[1].allocator.is_live(ptr1)
        assert not gpu_node.devices[1].allocator.is_live(ptr0) or ptr0 == ptr1

    def test_free_on_wrong_device_fails(self, client):
        client.set_device(0)
        ptr = client.malloc(4096)
        client.set_device(1)
        with pytest.raises(CudaError):
            client.free(ptr)
        client.set_device(0)
        client.free(ptr)

    def test_memcpy_targets_current_device(self, client, gpu_node):
        client.set_device(3)  # the P40
        ptr = client.malloc(256)
        client.memcpy_h2d(ptr, b"\x42" * 256)
        assert gpu_node.devices[3].allocator.read(ptr, 256) == b"\x42" * 256
        assert client.memcpy_d2h(ptr, 256) == b"\x42" * 256

    def test_modules_are_per_device(self, client, gpu_node):
        client.set_device(1)
        cubin = build_cubin_for_registry(
            gpu_node.devices[1].registry, ["vectorAdd"], arch=T4.arch
        )
        module = client.module_load(cubin)
        meta = KernelMeta.from_kinds("vectorAdd", ("ptr", "ptr", "ptr", "i32"))
        fn = client.get_function(module, "vectorAdd", meta)
        # the module handle belongs to device 1's driver; on device 0 it is
        # unknown
        client.set_device(0)
        with pytest.raises(CudaError):
            client.get_function(module, "vectorAdd", meta)
        client.set_device(1)
        n = 32
        a, b, c = (client.malloc(4 * n) for _ in range(3))
        client.memcpy_h2d(a, np.full(n, 1.0, np.float32).tobytes())
        client.memcpy_h2d(b, np.full(n, 2.0, np.float32).tobytes())
        client.launch_kernel(fn, (1, 1, 1), (32, 1, 1), (a, b, c, n))
        client.device_synchronize()
        out = np.frombuffer(client.memcpy_d2h(c, 4 * n), np.float32)
        np.testing.assert_allclose(out, 3.0)

    def test_kernel_slower_on_t4_than_a100(self, gpu_node):
        """The timing model reflects per-generation performance."""
        from repro.gpu.kernels import KernelCost
        from repro.gpu.timing import GpuTimingModel

        cost = KernelCost(flops=1e12)
        a100 = GpuTimingModel(A100).kernel_time_s(cost)
        t4 = GpuTimingModel(T4).kernel_time_s(cost)
        assert t4 > 2 * a100

    def test_set_device_out_of_range(self, client):
        with pytest.raises(CudaError):
            client.set_device(4)

    def test_reset_only_clears_current_device(self, client, gpu_node):
        client.set_device(0)
        client.malloc(4096)
        client.set_device(1)
        client.malloc(4096)
        client.device_reset()  # resets device 1
        assert gpu_node.devices[1].allocator.used_bytes == 0
        assert gpu_node.devices[0].allocator.used_bytes > 0
