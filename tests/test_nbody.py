"""Tests for the nbody app and kernel."""

import numpy as np
import pytest

from repro import GpuSession, SessionConfig
from repro.apps import nbody
from repro.gpu import A100, GpuDevice
from repro.unikernel import native_rust, rustyhermit

MIB = 1 << 20


class TestKernel:
    def test_energy_like_sanity(self):
        """Bodies attract: two point masses drift toward each other."""
        device = GpuDevice(A100, mem_bytes=MIB)
        pos = np.zeros((2, 4), dtype=np.float32)
        pos[0] = [-1.0, 0, 0, 1.0]
        pos[1] = [1.0, 0, 0, 1.0]
        vel = np.zeros((2, 4), dtype=np.float32)
        p_in = device.alloc(32)
        p_out = device.alloc(32)
        v = device.alloc(32)
        device.allocator.write(p_in, pos.tobytes())
        device.allocator.write(v, vel.tobytes())
        device.launch("integrateBodies", (1, 1, 1), (2, 1, 1), (p_out, p_in, v, 2, 0.1))
        out = device.allocator.view(p_out, 32).view(np.float32).reshape(2, 4)
        assert out[0, 0] > -1.0  # moved right, toward the other body
        assert out[1, 0] < 1.0   # moved left

    def test_mass_preserved(self):
        device = GpuDevice(A100, mem_bytes=MIB)
        rng = np.random.default_rng(0)
        n = 16
        pos = rng.standard_normal((n, 4)).astype(np.float32)
        pos[:, 3] = np.abs(pos[:, 3]) + 0.5
        p_in = device.alloc(16 * n)
        p_out = device.alloc(16 * n)
        v = device.alloc(16 * n)
        device.allocator.write(p_in, pos.tobytes())
        device.memset(v, 0, 16 * n)
        device.launch("integrateBodies", (1, 1, 1), (n, 1, 1), (p_out, p_in, v, n, 0.01))
        out = device.allocator.view(p_out, 16 * n).view(np.float32).reshape(n, 4)
        np.testing.assert_array_equal(out[:, 3], pos[:, 3])

    def test_cost_quadratic(self):
        from repro.gpu.kernels import LaunchContext

        device = GpuDevice(A100, mem_bytes=MIB)
        kernel = device.registry.get("integrateBodies")
        small = LaunchContext(device, (1, 1, 1), (1, 1, 1), 0, (0, 0, 0, 100, 0.1))
        large = LaunchContext(device, (1, 1, 1), (1, 1, 1), 0, (0, 0, 0, 1000, 0.1))
        assert kernel.cost(large).flops == pytest.approx(100 * kernel.cost(small).flops)


class TestApp:
    def test_verified_against_reference(self):
        with GpuSession(SessionConfig(device_mem_bytes=64 * MIB)) as session:
            result = nbody.run(session, bodies=128, iterations=5)
        assert result.verified is True
        assert result.api_calls > 5

    def test_call_count_one_launch_per_iteration(self):
        config = SessionConfig(platform=native_rust(), execute=False, device_mem_bytes=64 * MIB)
        with GpuSession(config) as session:
            result = nbody.run(session, bodies=1024, iterations=200, verify=False)
        assert 200 < result.api_calls < 230

    def test_compute_bound_overhead_small(self):
        times = {}
        for platform in (native_rust(), rustyhermit()):
            config = SessionConfig(platform=platform, execute=False, device_mem_bytes=64 * MIB)
            with GpuSession(config) as session:
                times[platform.name] = nbody.run(
                    session, bodies=16_384, iterations=30, verify=False
                ).elapsed_s
        overhead = times["Hermit"] / times["Rust"] - 1
        assert overhead < 0.10

    def test_loop_time_reported(self):
        config = SessionConfig(execute=False, device_mem_bytes=64 * MIB)
        with GpuSession(config) as session:
            result = nbody.run(session, bodies=512, iterations=10, verify=False)
        assert 0 < result.extra["loop_s"] <= result.elapsed_s
