"""Unit tests for the simulated network and virtual clock."""

import pytest

from repro.net import Fabric, LinkModel, Node, SimClock, TETHER_100G
from repro.net.fabric import two_node_testbed
from repro.net.simclock import Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance_ns(100) == 100
        assert clock.advance_s(1e-6) == 1100
        assert clock.now_s == pytest.approx(1.1e-6)

    def test_advance_rounds_fractions(self):
        clock = SimClock()
        clock.advance_ns(0.6)
        assert clock.now_ns == 1

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_ns(-1)

    def test_advance_to_ignores_past(self):
        clock = SimClock()
        clock.advance_ns(500)
        clock.advance_to_ns(300)
        assert clock.now_ns == 500
        clock.advance_to_ns(900)
        assert clock.now_ns == 900

    def test_reset(self):
        clock = SimClock()
        clock.advance_ns(10)
        clock.reset()
        assert clock.now_ns == 0

    def test_stopwatch_span(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        with watch.measure() as span:
            clock.advance_ns(12345)
        assert span.elapsed_ns == 12345
        assert span.elapsed_s == pytest.approx(12.345e-6)


class TestLinkModel:
    def test_wire_time_scales_linearly(self):
        assert TETHER_100G.wire_time_s(0) == 0
        t1 = TETHER_100G.wire_time_s(1_000_000)
        t2 = TETHER_100G.wire_time_s(2_000_000)
        assert t2 == pytest.approx(2 * t1)

    def test_line_rate(self):
        assert TETHER_100G.line_rate_Bps == pytest.approx(12.5e9)

    def test_one_way_includes_latency(self):
        assert TETHER_100G.one_way_s(0) == pytest.approx(10e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TETHER_100G.wire_time_s(-1)

    def test_segments_mtu9000(self):
        assert TETHER_100G.segments(0) == 1
        assert TETHER_100G.segments(1) == 1
        assert TETHER_100G.segments(8960) == 1
        assert TETHER_100G.segments(8961) == 2
        assert TETHER_100G.segments(89600) == 10

    def test_custom_link(self):
        link = LinkModel("10GbE", 10e9, 50e-6, mtu=1500)
        assert link.one_way_s(12500) == pytest.approx(50e-6 + 10e-6)


class TestFabric:
    def test_two_node_testbed(self):
        fabric = two_node_testbed(TETHER_100G)
        assert {n.name for n in fabric.nodes()} == {"app-node", "gpu-node"}
        assert fabric.gpu_nodes() == (fabric.node("gpu-node"),)
        assert fabric.link_between("app-node", "gpu-node") is TETHER_100G
        # link lookup is symmetric
        assert fabric.link_between("gpu-node", "app-node") is TETHER_100G

    def test_duplicate_node_rejected(self):
        fabric = Fabric()
        fabric.add_node(Node("a"))
        with pytest.raises(ValueError):
            fabric.add_node(Node("a"))

    def test_link_unknown_node(self):
        fabric = Fabric()
        fabric.add_node(Node("a"))
        with pytest.raises(KeyError):
            fabric.connect("a", "b", TETHER_100G)

    def test_self_link_rejected(self):
        fabric = Fabric()
        fabric.add_node(Node("a"))
        with pytest.raises(ValueError):
            fabric.connect("a", "a", TETHER_100G)

    def test_missing_link(self):
        fabric = Fabric()
        fabric.add_node(Node("a"))
        fabric.add_node(Node("b"))
        with pytest.raises(KeyError):
            fabric.link_between("a", "b")

    def test_invalid_copy_rate(self):
        with pytest.raises(ValueError):
            Node("bad", core_copy_rate_Bps=0)
