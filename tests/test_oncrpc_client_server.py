"""Integration tests: RPC client against server over loopback and real TCP."""

import threading

import pytest

from repro.oncrpc import (
    GarbageArgumentsError,
    LoopbackTransport,
    RpcClient,
    RpcGarbageArgs,
    RpcProcUnavailable,
    RpcProgMismatch,
    RpcProgUnavailable,
    RpcServer,
    RpcSystemError,
    RpcTransportError,
    TcpTransport,
)
from repro.xdr import INT, StringType, VarOpaque, XdrDecoder, XdrEncoder

PROG = 0x20000001
VERS = 1

PROC_ECHO = 1
PROC_ADD = 2
PROC_FAIL = 3
PROC_GARBAGE = 4
PROC_UPPER = 5


def build_server() -> RpcServer:
    server = RpcServer()

    def echo(args: bytes, ctx) -> bytes:
        return args

    def add(args: bytes, ctx) -> bytes:
        dec = XdrDecoder(args)
        a, b = dec.unpack_int(), dec.unpack_int()
        dec.assert_done()
        enc = XdrEncoder()
        enc.pack_int(a + b)
        return enc.getvalue()

    def fail(args: bytes, ctx) -> bytes:
        raise RuntimeError("handler exploded")

    def garbage(args: bytes, ctx) -> bytes:
        raise GarbageArgumentsError()

    def upper(args: bytes, ctx) -> bytes:
        dec = XdrDecoder(args)
        s = dec.unpack_string()
        enc = XdrEncoder()
        enc.pack_string(s.upper())
        return enc.getvalue()

    server.register_program(
        PROG,
        VERS,
        {
            PROC_ECHO: echo,
            PROC_ADD: add,
            PROC_FAIL: fail,
            PROC_GARBAGE: garbage,
            PROC_UPPER: upper,
        },
    )
    return server


@pytest.fixture()
def loopback_client():
    server = build_server()
    client = RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)
    yield client
    client.close()


class TestLoopback:
    def test_null_procedure_auto_registered(self, loopback_client):
        loopback_client.null_call()

    def test_echo_raw(self, loopback_client):
        payload = b"\x01\x02\x03\x04" * 10
        assert loopback_client.call_raw(PROC_ECHO, payload) == payload

    def test_add_typed_manual(self, loopback_client):
        enc = XdrEncoder()
        enc.pack_int(20)
        enc.pack_int(22)
        result = loopback_client.call_raw(PROC_ADD, enc.getvalue())
        assert XdrDecoder(result).unpack_int() == 42

    def test_call_typed(self, loopback_client):
        result = loopback_client.call_typed(PROC_UPPER, StringType(), StringType(), "cricket")
        assert result == "CRICKET"

    def test_prog_unavailable(self):
        server = build_server()
        client = RpcClient(LoopbackTransport(server.dispatch_record), PROG + 5, VERS)
        with pytest.raises(RpcProgUnavailable):
            client.null_call()

    def test_prog_mismatch_reports_versions(self):
        server = build_server()
        client = RpcClient(LoopbackTransport(server.dispatch_record), PROG, 9)
        with pytest.raises(RpcProgMismatch) as exc:
            client.null_call()
        assert exc.value.low == VERS
        assert exc.value.high == VERS

    def test_proc_unavailable(self, loopback_client):
        with pytest.raises(RpcProcUnavailable):
            loopback_client.call_raw(99, b"")

    def test_handler_crash_maps_to_system_err(self, loopback_client):
        with pytest.raises(RpcSystemError):
            loopback_client.call_raw(PROC_FAIL, b"")

    def test_garbage_args(self, loopback_client):
        with pytest.raises(RpcGarbageArgs):
            loopback_client.call_raw(PROC_GARBAGE, b"")

    def test_undecodable_args_map_to_garbage(self, loopback_client):
        # PROC_ADD expects 8 bytes; send 4.
        with pytest.raises(RpcGarbageArgs):
            loopback_client.call_raw(PROC_ADD, b"\x00\x00\x00\x01")

    def test_calls_made_counter(self, loopback_client):
        for _ in range(3):
            loopback_client.null_call()
        assert loopback_client.calls_made == 3

    def test_large_fragmented_payload(self):
        server = build_server()
        transport = LoopbackTransport(server.dispatch_record, fragment_size=1024)
        client = RpcClient(transport, PROG, VERS)
        payload = bytes(i % 251 for i in range(300_000))
        assert client.call_raw(PROC_ECHO, payload) == payload


class TestTcp:
    @pytest.fixture()
    def tcp_server(self):
        server = build_server()
        host, port = server.serve_tcp("127.0.0.1", 0)
        yield server, host, port
        server.shutdown()

    def test_tcp_roundtrip(self, tcp_server):
        _, host, port = tcp_server
        with RpcClient(TcpTransport(host, port), PROG, VERS) as client:
            result = client.call_typed(PROC_UPPER, StringType(), StringType(), "tcp path")
            assert result == "TCP PATH"

    def test_tcp_large_transfer_multi_fragment(self, tcp_server):
        _, host, port = tcp_server
        transport = TcpTransport(host, port, fragment_size=64 * 1024)
        with RpcClient(transport, PROG, VERS) as client:
            payload = bytes(i % 256 for i in range(1_000_000))
            assert client.call_raw(PROC_ECHO, payload) == payload

    def test_tcp_concurrent_clients(self, tcp_server):
        _, host, port = tcp_server
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            try:
                with RpcClient(TcpTransport(host, port), PROG, VERS) as client:
                    for i in range(20):
                        result = client.call_typed(
                            PROC_ADD,
                            _IntPair(),
                            INT,
                            (seed, i),
                        )
                        assert result == seed + i
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_tcp_connect_refused(self):
        with pytest.raises(RpcTransportError):
            TcpTransport("127.0.0.1", 1, timeout=0.5)

    def test_server_survives_connection_drop(self, tcp_server):
        server, host, port = tcp_server
        client = RpcClient(TcpTransport(host, port), PROG, VERS)
        client.null_call()
        client.close()
        # Server still serves new clients after the previous one vanished.
        with RpcClient(TcpTransport(host, port), PROG, VERS) as client2:
            client2.null_call()


class _IntPair:
    """Ad-hoc XDR type for (int, int) tuples used in the concurrency test."""

    def encode(self, encoder: XdrEncoder, value) -> None:
        encoder.pack_int(value[0])
        encoder.pack_int(value[1])

    def decode(self, decoder: XdrDecoder):
        return decoder.unpack_int(), decoder.unpack_int()
