"""Unit tests for rpc_msg encoding/decoding and auth structures."""

import pytest

from repro.oncrpc import message as msg
from repro.oncrpc.auth import (
    AUTH_NONE,
    AUTH_SYS,
    AuthSysParams,
    NULL_AUTH,
    OpaqueAuth,
)
from repro.oncrpc.errors import RpcProtocolError
from repro.xdr import XdrDecoder, XdrEncoder
from repro.xdr.errors import XdrEncodeError


class TestCallMessages:
    def test_call_roundtrip(self):
        call = msg.RpcMessage(
            0xDEADBEEF,
            msg.CallBody(prog=99, vers=1, proc=7, args=b"\x00\x00\x00\x2a"),
        )
        decoded = msg.RpcMessage.decode(call.encode())
        assert decoded.xid == 0xDEADBEEF
        assert decoded.is_call
        body = decoded.body
        assert isinstance(body, msg.CallBody)
        assert (body.prog, body.vers, body.proc) == (99, 1, 7)
        assert body.args == b"\x00\x00\x00\x2a"

    def test_call_carries_credentials(self):
        cred = AuthSysParams(stamp=5, machinename="node-a", uid=1000, gid=100).to_opaque()
        call = msg.RpcMessage(1, msg.CallBody(1, 1, 1, cred=cred))
        decoded = msg.RpcMessage.decode(call.encode())
        assert isinstance(decoded.body, msg.CallBody)
        parsed = AuthSysParams.from_opaque(decoded.body.cred)
        assert parsed.machinename == "node-a"
        assert parsed.uid == 1000

    def test_wrong_rpc_version_rejected(self):
        raw = bytearray(msg.RpcMessage(1, msg.CallBody(1, 1, 1)).encode())
        raw[8:12] = (3).to_bytes(4, "big")  # rpcvers field
        with pytest.raises(RpcProtocolError):
            msg.RpcMessage.decode(bytes(raw))

    def test_invalid_msg_type(self):
        enc = XdrEncoder()
        enc.pack_uint(1)
        enc.pack_enum(5)
        with pytest.raises(RpcProtocolError):
            msg.RpcMessage.decode(enc.getvalue())


class TestReplyMessages:
    def test_success_reply_roundtrip(self):
        reply = msg.RpcMessage(
            42, msg.AcceptedReply(stat=msg.SUCCESS, results=b"\x00\x00\x00\x01")
        )
        decoded = msg.RpcMessage.decode(reply.encode())
        assert not decoded.is_call
        body = decoded.body
        assert isinstance(body, msg.AcceptedReply)
        assert body.stat == msg.SUCCESS
        assert body.results == b"\x00\x00\x00\x01"

    def test_prog_mismatch_reply(self):
        reply = msg.RpcMessage(
            1,
            msg.AcceptedReply(stat=msg.PROG_MISMATCH, mismatch_low=2, mismatch_high=4),
        )
        body = msg.RpcMessage.decode(reply.encode()).body
        assert isinstance(body, msg.AcceptedReply)
        assert (body.mismatch_low, body.mismatch_high) == (2, 4)

    @pytest.mark.parametrize(
        "stat",
        [msg.PROG_UNAVAIL, msg.PROC_UNAVAIL, msg.GARBAGE_ARGS, msg.SYSTEM_ERR],
    )
    def test_error_replies_have_void_bodies(self, stat):
        reply = msg.RpcMessage(1, msg.AcceptedReply(stat=stat))
        body = msg.RpcMessage.decode(reply.encode()).body
        assert isinstance(body, msg.AcceptedReply)
        assert body.stat == stat
        assert body.results == b""

    def test_rejected_rpc_mismatch(self):
        reply = msg.RpcMessage(
            1, msg.RejectedReply(stat=msg.RPC_MISMATCH, mismatch_low=2, mismatch_high=2),
            msg.MSG_DENIED,
        )
        body = msg.RpcMessage.decode(reply.encode()).body
        assert isinstance(body, msg.RejectedReply)
        assert body.stat == msg.RPC_MISMATCH

    def test_rejected_auth_error(self):
        reply = msg.RpcMessage(
            1, msg.RejectedReply(stat=msg.AUTH_ERROR, auth_stat=3), msg.MSG_DENIED
        )
        body = msg.RpcMessage.decode(reply.encode()).body
        assert isinstance(body, msg.RejectedReply)
        assert body.auth_stat == 3

    def test_accept_stat_name(self):
        assert msg.accept_stat_name(msg.SUCCESS) == "SUCCESS"
        assert "accept_stat" in msg.accept_stat_name(77)


class TestAuth:
    def test_null_auth_wire_form(self):
        enc = XdrEncoder()
        NULL_AUTH.encode(enc)
        assert enc.getvalue() == b"\x00" * 8  # flavor 0, length 0

    def test_opaque_auth_roundtrip(self):
        auth = OpaqueAuth(AUTH_SYS, b"abc")
        enc = XdrEncoder()
        auth.encode(enc)
        assert OpaqueAuth.decode(XdrDecoder(enc.getvalue())) == auth

    def test_auth_body_size_cap(self):
        with pytest.raises(XdrEncodeError):
            enc = XdrEncoder()
            OpaqueAuth(AUTH_NONE, b"x" * 401).encode(enc)

    def test_authsys_roundtrip(self):
        params = AuthSysParams(
            stamp=99, machinename="hermit", uid=1, gid=2, gids=(3, 4, 5)
        )
        assert AuthSysParams.from_opaque(params.to_opaque()) == params

    def test_authsys_gid_cap(self):
        with pytest.raises(XdrEncodeError):
            AuthSysParams(gids=tuple(range(17))).to_opaque()

    def test_authsys_wrong_flavor(self):
        from repro.xdr.errors import XdrDecodeError

        with pytest.raises(XdrDecodeError):
            AuthSysParams.from_opaque(OpaqueAuth(AUTH_NONE, b""))
