"""Tests for the RFC 1833 port mapper (service + client + bootstrap)."""

import pytest

from repro.oncrpc import LoopbackTransport, RpcProgUnavailable, RpcServer
from repro.oncrpc.portmap import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    PMAP_PROG,
    PMAP_VERS,
    Mapping,
    PortMapper,
    PortMapperClient,
    connect_via_portmap,
)
from repro.xdr import XdrDecoder, XdrEncoder


@pytest.fixture()
def pmap_pair():
    server = RpcServer()
    pmap = PortMapper()
    pmap.register_on(server)
    client = PortMapperClient(LoopbackTransport(server.dispatch_record))
    yield pmap, client
    client.close()


class TestRegistry:
    def test_set_and_getport(self, pmap_pair):
        _pmap, client = pmap_pair
        assert client.set(Mapping(300_000, 1, IPPROTO_TCP, 9100)) is True
        assert client.getport(300_000, 1) == 9100

    def test_set_duplicate_rejected(self, pmap_pair):
        _pmap, client = pmap_pair
        assert client.set(Mapping(300_000, 1, IPPROTO_TCP, 9100))
        assert client.set(Mapping(300_000, 1, IPPROTO_TCP, 9200)) is False
        assert client.getport(300_000, 1) == 9100

    def test_getport_unregistered_returns_zero(self, pmap_pair):
        _pmap, client = pmap_pair
        assert client.getport(999_999, 1) == 0

    def test_unset_removes_all_protocols(self, pmap_pair):
        _pmap, client = pmap_pair
        client.set(Mapping(300_000, 1, IPPROTO_TCP, 9100))
        client.set(Mapping(300_000, 1, IPPROTO_UDP, 9100))
        assert client.unset(Mapping(300_000, 1, 0, 0)) is True
        assert client.getport(300_000, 1, IPPROTO_TCP) == 0
        assert client.getport(300_000, 1, IPPROTO_UDP) == 0

    def test_unset_missing_returns_false(self, pmap_pair):
        _pmap, client = pmap_pair
        assert client.unset(Mapping(123, 1, 0, 0)) is False

    def test_dump_lists_everything(self, pmap_pair):
        _pmap, client = pmap_pair
        client.set(Mapping(300_000, 1, IPPROTO_TCP, 9100))
        client.set(Mapping(300_001, 2, IPPROTO_TCP, 9200))
        dump = client.dump()
        assert Mapping(300_000, 1, IPPROTO_TCP, 9100) in dump
        assert Mapping(300_001, 2, IPPROTO_TCP, 9200) in dump

    def test_dump_empty(self, pmap_pair):
        _pmap, client = pmap_pair
        assert client.dump() == []

    def test_protocols_are_distinct_keys(self, pmap_pair):
        _pmap, client = pmap_pair
        client.set(Mapping(300_000, 1, IPPROTO_TCP, 9100))
        client.set(Mapping(300_000, 1, IPPROTO_UDP, 9101))
        assert client.getport(300_000, 1, IPPROTO_TCP) == 9100
        assert client.getport(300_000, 1, IPPROTO_UDP) == 9101


class TestWireFormat:
    def test_mapping_roundtrip(self):
        enc = XdrEncoder()
        Mapping(1, 2, 6, 111).encode(enc)
        assert Mapping.decode(XdrDecoder(enc.getvalue())) == Mapping(1, 2, 6, 111)

    def test_null_proc(self, pmap_pair):
        """Procedure 0 is auto-registered on the portmapper program too."""
        _pmap, client = pmap_pair
        client._client.null_call()

    def test_program_constants(self):
        assert PMAP_PROG == 100000
        assert PMAP_VERS == 2


class TestBootstrapOverTcp:
    def test_cricket_discovered_via_portmap(self):
        """End-to-end: Cricket registers with rpcbind; a client bootstraps."""
        from repro.cricket import CricketServer
        from repro.cricket.client import cricket_interface

        # the "GPU node": portmapper and Cricket share one RPC endpoint
        node = CricketServer()
        pmap = PortMapper()
        pmap.register_on(node)
        host, port = node.serve_tcp("127.0.0.1", 0)
        iface = cricket_interface()
        pmap.set(Mapping(iface.prog_number, iface.vers_number, IPPROTO_TCP, port))

        try:
            client = connect_via_portmap(
                host, iface.prog_number, iface.vers_number, pmap_port=port
            )
            # issue a real Cricket call through the bootstrapped connection
            raw = client.call_raw(1, b"")  # rpc_cudaGetDeviceCount
            dec = XdrDecoder(raw)
            err, count = dec.unpack_int(), dec.unpack_int()
            assert (err, count) == (0, 1)
            client.close()
        finally:
            node.shutdown()

    def test_bootstrap_unregistered_program(self):
        node = RpcServer()
        pmap = PortMapper()
        pmap.register_on(node)
        host, port = node.serve_tcp("127.0.0.1", 0)
        try:
            with pytest.raises(RpcProgUnavailable):
                connect_via_portmap(host, 0x31313131, 1, pmap_port=port)
        finally:
            node.shutdown()
