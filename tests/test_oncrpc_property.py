"""Property-based tests for the ONC RPC message layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oncrpc import message as msg
from repro.oncrpc.auth import AUTH_NONE, AUTH_SYS, OpaqueAuth

uint32 = st.integers(min_value=0, max_value=2**32 - 1)
aligned_bytes = st.binary(max_size=200).map(
    lambda b: b + b"\x00" * ((4 - len(b) % 4) % 4)
)
auths = st.builds(
    OpaqueAuth,
    flavor=st.sampled_from([AUTH_NONE, AUTH_SYS]),
    body=st.binary(max_size=64),
)


@settings(max_examples=150)
@given(
    xid=uint32,
    prog=uint32,
    vers=uint32,
    proc=uint32,
    cred=auths,
    verf=auths,
    args=aligned_bytes,
)
def test_call_roundtrip(xid, prog, vers, proc, cred, verf, args):
    original = msg.RpcMessage(
        xid, msg.CallBody(prog, vers, proc, cred=cred, verf=verf, args=args)
    )
    decoded = msg.RpcMessage.decode(original.encode())
    assert decoded.xid == xid
    body = decoded.body
    assert isinstance(body, msg.CallBody)
    assert (body.prog, body.vers, body.proc) == (prog, vers, proc)
    assert body.cred == cred and body.verf == verf
    assert body.args == args


@settings(max_examples=100)
@given(xid=uint32, verf=auths, results=aligned_bytes)
def test_success_reply_roundtrip(xid, verf, results):
    original = msg.RpcMessage(xid, msg.AcceptedReply(verf, msg.SUCCESS, results))
    decoded = msg.RpcMessage.decode(original.encode())
    body = decoded.body
    assert isinstance(body, msg.AcceptedReply)
    assert body.verf == verf and body.results == results


@given(
    xid=uint32,
    stat=st.sampled_from(
        [msg.PROG_UNAVAIL, msg.PROC_UNAVAIL, msg.GARBAGE_ARGS, msg.SYSTEM_ERR]
    ),
)
def test_error_reply_roundtrip(xid, stat):
    original = msg.RpcMessage(xid, msg.AcceptedReply(stat=stat))
    decoded = msg.RpcMessage.decode(original.encode())
    assert isinstance(decoded.body, msg.AcceptedReply)
    assert decoded.body.stat == stat


@given(xid=uint32, low=uint32, high=uint32)
def test_prog_mismatch_roundtrip(xid, low, high):
    original = msg.RpcMessage(
        xid, msg.AcceptedReply(stat=msg.PROG_MISMATCH, mismatch_low=low, mismatch_high=high)
    )
    decoded = msg.RpcMessage.decode(original.encode())
    assert isinstance(decoded.body, msg.AcceptedReply)
    assert (decoded.body.mismatch_low, decoded.body.mismatch_high) == (low, high)


@given(xid=uint32, auth_stat=st.integers(min_value=0, max_value=5))
def test_auth_error_roundtrip(xid, auth_stat):
    original = msg.RpcMessage(
        xid, msg.RejectedReply(stat=msg.AUTH_ERROR, auth_stat=auth_stat), msg.MSG_DENIED
    )
    decoded = msg.RpcMessage.decode(original.encode())
    assert isinstance(decoded.body, msg.RejectedReply)
    assert decoded.body.auth_stat == auth_stat


@settings(max_examples=100)
@given(data=st.binary(min_size=0, max_size=120))
def test_decode_never_crashes_uncontrolled(data):
    """Arbitrary bytes either parse or raise the declared exceptions."""
    from repro.oncrpc.errors import RpcProtocolError
    from repro.xdr.errors import XdrError

    try:
        msg.RpcMessage.decode(data)
    except (RpcProtocolError, XdrError):
        pass
