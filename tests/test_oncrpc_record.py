"""Unit and property tests for record marking / fragmentation (RFC 5531 §11)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oncrpc.errors import RpcProtocolError, RpcTransportError
from repro.oncrpc.record import (
    LAST_FRAGMENT,
    RecordReader,
    encode_record,
    iter_fragments,
)


def make_reader(wire: bytes, chunk: int = 7) -> RecordReader:
    """Reader that feeds ``wire`` in small chunks, mimicking socket recv."""
    buf = bytearray(wire)

    def read(n: int) -> bytes:
        take = min(n, chunk, len(buf))
        head = bytes(buf[:take])
        del buf[:take]
        return head

    return RecordReader(read)


class TestFragmentation:
    def test_single_fragment_header(self):
        frames = list(iter_fragments(b"abcd", fragment_size=100))
        assert len(frames) == 1
        header = int.from_bytes(frames[0][:4], "big")
        assert header & LAST_FRAGMENT
        assert header & 0x7FFFFFFF == 4
        assert frames[0][4:] == b"abcd"

    def test_multi_fragment_split(self):
        record = bytes(range(10)) * 10  # 100 bytes
        frames = list(iter_fragments(record, fragment_size=33))
        assert len(frames) == 4  # 33+33+33+1
        # only the final frame has the last-fragment bit
        flags = [bool(int.from_bytes(f[:4], "big") & LAST_FRAGMENT) for f in frames]
        assert flags == [False, False, False, True]
        assert b"".join(f[4:] for f in frames) == record

    def test_empty_record_yields_one_last_fragment(self):
        frames = list(iter_fragments(b"", fragment_size=10))
        assert len(frames) == 1
        assert int.from_bytes(frames[0][:4], "big") == LAST_FRAGMENT

    def test_exact_multiple_boundary(self):
        record = b"x" * 64
        frames = list(iter_fragments(record, fragment_size=32))
        assert len(frames) == 2
        assert bool(int.from_bytes(frames[1][:4], "big") & LAST_FRAGMENT)

    def test_invalid_fragment_size(self):
        with pytest.raises(ValueError):
            list(iter_fragments(b"a", fragment_size=0))
        with pytest.raises(ValueError):
            list(iter_fragments(b"a", fragment_size=2**31))


class TestReassembly:
    def test_roundtrip_small(self):
        wire = encode_record(b"hello world", 4)
        assert make_reader(wire).read_record() == b"hello world"

    def test_roundtrip_large_many_fragments(self):
        record = bytes(i % 256 for i in range(100_000))
        wire = encode_record(record, 1024)
        assert make_reader(wire, chunk=997).read_record() == record

    def test_back_to_back_records(self):
        wire = encode_record(b"first", 2) + encode_record(b"second", 3)
        reader = make_reader(wire)
        assert reader.read_record() == b"first"
        assert reader.read_record() == b"second"
        assert reader.read_record() is None

    def test_clean_eof_between_records(self):
        assert make_reader(b"").read_record() is None

    def test_eof_mid_header(self):
        with pytest.raises(RpcTransportError):
            make_reader(b"\x80\x00").read_record()

    def test_eof_mid_payload(self):
        wire = encode_record(b"abcdef", 100)[:-3]
        with pytest.raises(RpcTransportError):
            make_reader(wire).read_record()

    def test_record_size_cap(self):
        wire = encode_record(b"x" * 100, 10)
        reader = RecordReader(make_reader(wire)._read, max_record_size=50)
        with pytest.raises(RpcProtocolError):
            reader.read_record()

    def test_zero_length_nonterminal_fragment_rejected(self):
        wire = (0).to_bytes(4, "big") + encode_record(b"a")
        with pytest.raises(RpcProtocolError):
            make_reader(wire).read_record()


@given(st.binary(max_size=5000), st.integers(min_value=1, max_value=600))
def test_property_roundtrip(record, fragment_size):
    wire = encode_record(record, fragment_size)
    assert make_reader(wire, chunk=13).read_record() == record


@given(st.lists(st.binary(max_size=400), min_size=1, max_size=6))
def test_property_multiple_records_in_stream(records):
    wire = b"".join(encode_record(r, 37) for r in records)
    reader = make_reader(wire, chunk=11)
    for expected in records:
        assert reader.read_record() == expected
    assert reader.read_record() is None
