"""Tests for the UDP transport -- and why Cricket cannot use it."""

import pytest

from repro.oncrpc import RpcClient, RpcServer, RpcTimeoutError, RpcTransportError
from repro.oncrpc.udp import MAX_UDP_PAYLOAD, UdpTransport, serve_udp
from repro.xdr import XdrDecoder, XdrEncoder

PROG, VERS = 0x20000061, 1


@pytest.fixture()
def udp_endpoint():
    server = RpcServer()

    def double(args, ctx):
        dec = XdrDecoder(args)
        value = dec.unpack_int()
        enc = XdrEncoder()
        enc.pack_int(2 * value)
        return enc.getvalue()

    def echo(args, ctx):
        return args

    server.register_program(PROG, VERS, {1: double, 2: echo})
    host, port = serve_udp(server)
    yield server, host, port
    server.shutdown()


class TestUdpCalls:
    def test_small_call_roundtrip(self, udp_endpoint):
        _server, host, port = udp_endpoint
        client = RpcClient(UdpTransport(host, port), PROG, VERS)
        enc = XdrEncoder()
        enc.pack_int(21)
        raw = client.call_raw(1, enc.getvalue())
        assert XdrDecoder(raw).unpack_int() == 42
        client.close()

    def test_many_sequential_calls(self, udp_endpoint):
        _server, host, port = udp_endpoint
        client = RpcClient(UdpTransport(host, port), PROG, VERS)
        for i in range(50):
            enc = XdrEncoder()
            enc.pack_int(i)
            assert XdrDecoder(client.call_raw(1, enc.getvalue())).unpack_int() == 2 * i
        client.close()

    def test_mid_size_payload_within_datagram(self, udp_endpoint):
        _server, host, port = udp_endpoint
        client = RpcClient(UdpTransport(host, port), PROG, VERS)
        payload = bytes(range(256)) * 128  # 32 KiB: fits a datagram
        enc = XdrEncoder()
        enc.pack_opaque(payload)
        raw = client.call_raw(2, enc.getvalue())
        assert XdrDecoder(raw).unpack_opaque() == payload
        client.close()

    def test_null_proc(self, udp_endpoint):
        _server, host, port = udp_endpoint
        client = RpcClient(UdpTransport(host, port), PROG, VERS)
        client.null_call()
        client.close()


class TestWhyCricketNeedsTcp:
    def test_gpu_sized_argument_rejected(self, udp_endpoint):
        """A cudaMemcpy-sized argument cannot travel by datagram at all."""
        _server, host, port = udp_endpoint
        client = RpcClient(UdpTransport(host, port), PROG, VERS)
        big = b"\x00" * (1 << 20)  # 1 MiB "GPU buffer"
        enc = XdrEncoder()
        enc.pack_opaque(big)
        with pytest.raises(RpcTransportError, match="datagram limit"):
            client.call_raw(2, enc.getvalue())
        client.close()

    def test_same_payload_works_over_tcp(self):
        """The identical call succeeds over TCP with fragmented records."""
        server = RpcServer()
        server.register_program(PROG, VERS, {2: lambda args, ctx: args})
        host, port = server.serve_tcp("127.0.0.1", 0)
        try:
            from repro.oncrpc import TcpTransport

            client = RpcClient(TcpTransport(host, port, fragment_size=64 * 1024), PROG, VERS)
            big = b"\x5a" * (1 << 20)
            enc = XdrEncoder()
            enc.pack_opaque(big)
            raw = client.call_raw(2, enc.getvalue())
            assert XdrDecoder(raw).unpack_opaque() == big
            client.close()
        finally:
            server.shutdown()

    def test_max_payload_constant_sane(self):
        assert 60_000 < MAX_UDP_PAYLOAD < 65_536


class TestTimeoutsAndRetransmission:
    def test_timeout_when_no_server(self):
        transport = UdpTransport("127.0.0.1", 9, timeout_s=0.05, retries=1)
        client = RpcClient(transport, PROG, VERS)
        with pytest.raises((RpcTimeoutError, RpcTransportError)):
            client.null_call()
        assert transport.retransmissions <= 1
        client.close()

    def test_retransmission_counter(self, udp_endpoint):
        """A lossy first attempt is recovered by retransmission."""
        _server, host, port = udp_endpoint

        class LossyUdp(UdpTransport):
            def __init__(self, *a, **kw):
                super().__init__(*a, **kw)
                self._dropped_once = False

            def send_record(self, record):
                if not self._dropped_once:
                    # swallow the first datagram: simulate network loss
                    self._dropped_once = True
                    self._last_record = record
                    return
                super().send_record(record)

        transport = LossyUdp(host, port, timeout_s=0.1, retries=3)
        client = RpcClient(transport, PROG, VERS)
        enc = XdrEncoder()
        enc.pack_int(5)
        assert XdrDecoder(client.call_raw(1, enc.getvalue())).unpack_int() == 10
        assert transport.retransmissions >= 1
        client.close()

    def test_closed_transport(self):
        transport = UdpTransport("127.0.0.1", 9)
        transport.close()
        with pytest.raises(RpcTransportError):
            transport.send_record(b"x")
        with pytest.raises(RpcTransportError):
            transport.recv_record()
