"""Overload control: bounded queues, deadlines, fair shedding, cancellation.

The deterministic pieces (queue policies, WFQ, token buckets, the chaos
harness) run in virtual time; the threaded controller tests use real
threads against a saturated server, bounded by short timeouts.
"""

import threading
import time

import pytest

from repro.cricket import CricketClient, CricketServer
from repro.net.simclock import SimClock
from repro.oncrpc import LoopbackTransport, RpcClient
from repro.oncrpc import message as msg
from repro.oncrpc.auth import call_meta_auth, client_token_auth
from repro.oncrpc.errors import (
    RpcBusyError,
    RpcCancelled,
    RpcDeadlineExceeded,
    RpcTransportError,
)
from repro.oncrpc.server import CallContext, RpcServer
from repro.resilience import (
    REJECT_LOWEST_PRIORITY,
    REJECT_NEWEST,
    REJECT_OLDEST,
    CallCancelledError,
    OverloadChaosHarness,
    OverloadChaosPlan,
    OverloadConfig,
    OverloadController,
    OverloadQueue,
    Refusal,
    RetryPolicy,
    TokenBucket,
    is_retryable,
)

PROG, VERS = 0x20000099, 3
MS = 1_000_000  # ns


def make_queue(**kwargs) -> OverloadQueue:
    return OverloadQueue(OverloadConfig(**kwargs))


class TestShedPolicies:
    def test_reject_newest_refuses_incoming(self):
        q = make_queue(max_queue_depth=2)
        assert not isinstance(q.offer("a", 1, 0), Refusal)
        assert not isinstance(q.offer("a", 2, 0), Refusal)
        refusal = q.offer("a", 3, 0)
        assert isinstance(refusal, Refusal) and refusal.kind == "busy"
        assert [t.xid for t in q.tickets()] == [1, 2]

    def test_reject_oldest_evicts_earliest_arrival(self):
        q = make_queue(max_queue_depth=2, shed_policy=REJECT_OLDEST)
        q.offer("a", 1, 0)
        q.offer("b", 2, 0)
        admitted = q.offer("c", 3, 0)
        assert not isinstance(admitted, Refusal)
        evicted = q.take_evicted()
        assert [t.xid for t in evicted] == [1]
        assert evicted[0].shed and evicted[0].cancel.requested
        assert sorted(t.xid for t in q.tickets()) == [2, 3]

    def test_reject_lowest_priority_spares_the_important(self):
        q = make_queue(max_queue_depth=2, shed_policy=REJECT_LOWEST_PRIORITY)
        q.offer("a", 1, 0, priority=5)
        q.offer("b", 2, 0, priority=1)
        q.offer("c", 3, 0, priority=3)
        assert [t.xid for t in q.take_evicted()] == [2]
        # An incoming call less important than everything queued is the
        # victim itself, not the queue.
        refusal = q.offer("d", 4, 0, priority=0)
        assert isinstance(refusal, Refusal) and refusal.kind == "busy"
        assert sorted(t.xid for t in q.tickets()) == [1, 3]

    def test_per_client_bound_does_not_evict_others(self):
        q = make_queue(max_queue_depth=8, max_queue_depth_per_client=1)
        q.offer("hot", 1, 0)
        refusal = q.offer("hot", 2, 0)
        assert isinstance(refusal, Refusal) and refusal.kind == "busy"
        assert not isinstance(q.offer("cold", 3, 0), Refusal)

    def test_peak_depth_gauge(self):
        q = make_queue(max_queue_depth=8)
        for xid in range(5):
            q.offer("a", xid, 0)
        q.pop_next(0)
        q.pop_next(0)
        assert q.stats.queue_peak_depth == 5


class TestDeadlinesInQueue:
    def test_expired_refused_at_offer(self):
        q = make_queue()
        refusal = q.offer("a", 1, now_ns=10, expires_at_ns=10)
        assert isinstance(refusal, Refusal) and refusal.kind == "expired"
        assert q.stats.deadline_expired_in_queue == 1

    def test_expired_dropped_at_pop_never_returned(self):
        q = make_queue()
        q.offer("a", 1, 0, expires_at_ns=5)
        q.offer("a", 2, 0, expires_at_ns=1000)
        ticket, dropped = q.pop_next(now_ns=500)
        assert ticket is not None and ticket.xid == 2
        assert [t.xid for t in dropped] == [1]
        assert q.stats.deadline_expired_in_queue == 1

    def test_cancelled_skipped_at_pop(self):
        q = make_queue()
        q.offer("a", 1, 0)
        q.offer("a", 2, 0)
        assert q.cancel("a", 1)
        assert not q.cancel("a", 99)
        assert not q.cancel("b", 2)  # wrong identity: tenant isolation
        ticket, dropped = q.pop_next(0)
        assert ticket.xid == 2
        assert [t.xid for t in dropped] == [1]
        assert q.stats.cancelled_in_queue == 1


class TestWeightedFairQueueing:
    def test_pop_order_follows_weights(self):
        q = make_queue(max_queue_depth=64, weights={"heavy": 2.0, "light": 1.0})
        for xid in range(12):
            q.offer("heavy", xid, 0)
            q.offer("light", 100 + xid, 0)
        order = []
        while True:
            ticket, _ = q.pop_next(0)
            if ticket is None:
                break
            order.append(ticket.identity)
        first_nine = order[:9]
        assert first_nine.count("heavy") == 2 * first_nine.count("light")

    def test_equal_weights_interleave(self):
        q = make_queue(max_queue_depth=64)
        for xid in range(6):
            q.offer("a", xid, 0)
        for xid in range(6):
            q.offer("b", 100 + xid, 0)
        order = []
        while True:
            ticket, _ = q.pop_next(0)
            if ticket is None:
                break
            order.append(ticket.identity)
        # b arrived later but must not starve behind a's backlog
        assert "b" in order[:3]


class TestTokenBucket:
    def test_burst_then_refusal_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now_ns=0)
        assert all(bucket.try_take(0) for _ in range(3))
        assert not bucket.try_take(0)
        # 0.5 virtual seconds refills one token at 2/s
        assert bucket.try_take(500 * MS)
        assert not bucket.try_take(500 * MS)

    def test_queue_rate_limit_counts_and_refuses(self):
        q = make_queue(rate_limit_per_client=1.0, rate_limit_burst=1.0)
        assert not isinstance(q.offer("a", 1, 0), Refusal)
        refusal = q.offer("a", 2, 0)
        assert isinstance(refusal, Refusal) and refusal.kind == "busy"
        assert q.stats.rate_limited == 1
        # other identities have their own bucket
        assert not isinstance(q.offer("b", 3, 0), Refusal)
        # a full virtual second later the bucket refilled
        assert not isinstance(q.offer("a", 4, 1_000 * MS), Refusal)


class TestOverloadController:
    def test_blocked_waiter_granted_on_release(self):
        ctl = OverloadController(
            OverloadConfig(max_concurrency=1), now_ns=time.monotonic_ns
        )
        outcome, token = ctl.acquire("a", 1)
        assert outcome == OverloadController.ADMITTED and token is not None
        results = []

        def waiter():
            results.append(ctl.acquire("b", 2))

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        deadline = time.monotonic() + 2.0
        while not len(ctl.queue) and time.monotonic() < deadline:
            time.sleep(0.005)
        ctl.release()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert results and results[0][0] == OverloadController.ADMITTED
        ctl.release()

    def test_queued_waiter_cancelled(self):
        ctl = OverloadController(
            OverloadConfig(max_concurrency=1), now_ns=time.monotonic_ns
        )
        ctl.acquire("a", 1)
        results = []

        def waiter():
            results.append(ctl.acquire("b", 2))

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        deadline = time.monotonic() + 2.0
        while not len(ctl.queue) and time.monotonic() < deadline:
            time.sleep(0.005)
        assert ctl.cancel("b", 2)
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert results == [(OverloadController.CANCELLED, None)]
        assert ctl.stats.cancelled_in_queue == 1
        ctl.release()

    def test_queued_waiter_expires(self):
        ctl = OverloadController(
            OverloadConfig(max_concurrency=1), now_ns=time.monotonic_ns
        )
        ctl.acquire("a", 1)
        expiry = time.monotonic_ns() + 50 * MS
        outcome, token = ctl.acquire("b", 2, expires_at_ns=expiry)
        assert outcome == OverloadController.EXPIRED and token is None
        assert ctl.stats.deadline_expired_in_queue == 1
        ctl.release()

    def test_full_queue_refused_immediately(self):
        ctl = OverloadController(
            OverloadConfig(max_concurrency=1, max_queue_depth=0),
            now_ns=time.monotonic_ns,
        )
        ctl.acquire("a", 1)
        started = time.monotonic()
        outcome, _ = ctl.acquire("b", 2)
        assert outcome == OverloadController.BUSY
        assert time.monotonic() - started < 1.0  # refused, not queued
        ctl.release()


def saturate(server):
    """Occupy the server's only slot and only queue seat."""
    assert server.overload is not None
    outcome, _ = server.overload.acquire("token:holder", 10_001)
    assert outcome == OverloadController.ADMITTED
    server.overload.queue.offer("token:waiter", 10_002, server.clock.now_ns)


class TestServerReplies:
    def test_saturated_server_raises_typed_retryable_busy(self):
        server = CricketServer(
            overload=OverloadConfig(max_concurrency=1, max_queue_depth=1)
        )
        client = CricketClient.loopback(server)
        saturate(server)
        try:
            with pytest.raises(RpcBusyError) as excinfo:
                client.get_device_count()
            assert is_retryable(excinfo.value)
            assert client.stub.client.stats.busy_rejections == 1
        finally:
            server.overload.release()

    def test_busy_is_retried_to_success(self):
        clock = SimClock()
        server = CricketServer(
            clock=clock,
            overload=OverloadConfig(max_concurrency=1, max_queue_depth=1),
        )
        saturate(server)
        attempts = []

        class Unsaturate(LoopbackTransport):
            def send_record(self, payload):
                attempts.append(1)
                if len(attempts) == 2:
                    # capacity frees before retry 2: drop the phantom
                    # waiter, then hand back the held slot
                    server.overload.queue.cancel("token:waiter", 10_002)
                    server.overload.release()
                return super().send_record(payload)

        client = CricketClient.loopback(server)
        client.stub.client.transport = Unsaturate(server.dispatch_record)
        client.stub.client.retry_policy = RetryPolicy(max_attempts=4, base_delay_s=0.01)
        client.stub.client.clock = clock
        assert client.get_device_count() >= 1
        assert len(attempts) >= 2

    def test_expired_call_never_reaches_device(self):
        """Regression: a dead-on-arrival call must not allocate GPU memory."""
        server = CricketServer()
        used_before = sum(d.allocator.used_bytes for d in server.devices)
        call = msg.CallBody(
            prog=0x20000199,
            vers=1,
            proc=10,  # rpc_cudaMalloc
            cred=client_token_auth(b"tenant"),
            verf=call_meta_auth(0),  # remaining budget: none
            args=(1 << 16).to_bytes(8, "big"),
        )
        reply = server.dispatch_record(msg.RpcMessage(77, call).encode())
        assert msg.RpcMessage.decode(reply).body.stat == msg.CALL_EXPIRED
        assert sum(d.allocator.used_bytes for d in server.devices) == used_before
        assert server.server_stats.deadline_expired_in_queue == 1
        # fatal refusals are not cached: a retransmit is refused again
        reply2 = server.dispatch_record(msg.RpcMessage(77, call).encode())
        assert msg.RpcMessage.decode(reply2).body.stat == msg.CALL_EXPIRED
        assert server.server_stats.reply_cache_hits == 0

    def test_exempt_procs_bypass_admission(self):
        server = CricketServer(
            lease_s=10.0,
            overload=OverloadConfig(max_concurrency=1, max_queue_depth=1),
        )
        client = CricketClient.loopback(server)
        client.get_device_count()  # establish the session
        saturate(server)
        try:
            # rpc_ping (62) and rpc_cancel (63) must not queue behind the
            # very backlog they exist to manage
            assert client.renew_lease() > 0
            assert client.cancel(999_999) is False
        finally:
            server.overload.release()


class TestCancellation:
    def test_cancelled_xid_retransmit_replays_not_reexecutes(self):
        """rpc_cancel x at-most-once: the cancelled reply is sticky."""
        server = CricketServer()
        token = b"tenant"
        identity = f"token:{token.hex()}"
        cached = server.record_cancelled(identity, 42)
        used_before = sum(d.allocator.used_bytes for d in server.devices)
        call = msg.CallBody(
            prog=0x20000199,
            vers=1,
            proc=10,  # re-execution would visibly allocate
            cred=client_token_auth(token),
            args=(1 << 16).to_bytes(8, "big"),
        )
        reply = server.dispatch_record(msg.RpcMessage(42, call).encode())
        assert reply == cached
        assert msg.RpcMessage.decode(reply).body.stat == msg.CALL_CANCELLED
        assert server.server_stats.reply_cache_hits == 1
        assert sum(d.allocator.used_bytes for d in server.devices) == used_before

    def test_queued_call_cancelled_server_side(self):
        server = CricketServer(
            overload=OverloadConfig(max_concurrency=1, max_queue_depth=4)
        )
        outcome, _ = server.overload.acquire("token:holder", 1)
        assert outcome == OverloadController.ADMITTED
        client = CricketClient.loopback(server)
        errors = []

        def blocked_call():
            try:
                client.get_device_count()
            except Exception as exc:  # noqa: BLE001 - recorded for assertion
                errors.append(exc)

        t = threading.Thread(target=blocked_call, daemon=True)
        t.start()
        deadline = time.monotonic() + 5.0
        while not len(server.overload.queue) and time.monotonic() < deadline:
            time.sleep(0.005)
        assert len(server.overload.queue) == 1
        xid = client.stub.client.last_xid
        assert server.cancel_call(client.session_identity, xid)
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert len(errors) == 1 and isinstance(errors[0], RpcCancelled)
        assert server.server_stats.cancelled_in_queue == 1
        server.overload.release()

    def test_in_flight_call_aborts_at_safe_point(self):
        server = RpcServer()
        started = threading.Event()
        release = threading.Event()
        seen = {}

        def slow_handler(args, ctx):
            seen["identity"] = ctx.identity
            started.set()
            release.wait(timeout=5.0)
            ctx.cancel.raise_if_requested()
            return args

        server.register_program(PROG, VERS, {1: slow_handler})
        client = RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)
        errors = []

        def call():
            try:
                client.call_raw(1, b"payload!")
            except Exception as exc:  # noqa: BLE001 - recorded for assertion
                errors.append(exc)

        t = threading.Thread(target=call, daemon=True)
        t.start()
        assert started.wait(timeout=5.0)
        assert server.cancel_call(seen["identity"], client.last_xid)
        release.set()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert len(errors) == 1 and isinstance(errors[0], RpcCancelled)
        assert server.server_stats.cancelled_in_flight == 1

    def test_malloc_safe_point_undoes_allocation(self):
        server = CricketServer()
        impl = server.implementation
        ctx = CallContext(
            prog=0x20000199,
            vers=1,
            proc=10,
            cred=client_token_auth(b"tenant"),
            client_id="t",
            session={},
            identity="token:" + b"tenant".hex(),
        )
        ctx.cancel.cancel()  # fires before the handler runs
        with pytest.raises(CallCancelledError):
            impl.rpc_cudaMalloc(4096, ctx)
        assert sum(d.allocator.used_bytes for d in server.devices) == 0

    def test_client_cancel_scope_cancels_on_error(self):
        server = CricketServer()
        client = CricketClient.loopback(server)
        with pytest.raises(RuntimeError, match="boom"):
            with client.cancel_scope() as scope:
                client.get_device_count()
                raise RuntimeError("boom")
        assert len(scope.xids) == 1
        # observer restored: later calls are not tracked by the dead scope
        client.get_device_count()
        assert len(scope.xids) == 1

    def test_cancel_unknown_xid_returns_false(self):
        server = CricketServer()
        client = CricketClient.loopback(server)
        assert client.cancel(123_456) is False


class TestDeadlineAccounting:
    def test_reconnect_time_charged_against_deadline(self):
        """Satellite: probe/backoff time between attempts burns the budget."""
        clock = SimClock()
        sends = []

        class FailingTransport:
            def send_record(self, payload):
                sends.append(payload)
                raise RpcTransportError("connection refused")

            def recv_record(self):  # pragma: no cover - never reached
                raise AssertionError

            def reconnect(self):
                # a slow connect storm: probing the dead endpoint costs
                # far more virtual time than the backoff schedule predicts
                clock.advance_s(0.5)

            def close(self):
                pass

        policy = RetryPolicy(
            max_attempts=10, base_delay_s=0.01, jitter=0.0, deadline_s=0.4
        )
        client = RpcClient(
            FailingTransport(), PROG, VERS, retry_policy=policy, clock=clock
        )
        with pytest.raises(RpcDeadlineExceeded):
            client.call_raw(1, b"xxxx")
        # attempt 1 failed and the reconnect probe burned the whole budget:
        # the top-of-attempt check must refuse to send attempt 2
        assert len(sends) == 1
        assert clock.now_s >= 0.4


class TestOverloadChaos:
    @pytest.mark.parametrize("load", [1.0, 2.0, 5.0])
    def test_soak_is_clean(self, load):
        plan = OverloadChaosPlan(
            load_factor=load, seed=7, hot_tenant_factor=3.0, slow_readers=0
        )
        result = OverloadChaosHarness(plan).run()
        assert result.executed_expired == 0
        assert result.peak_queue_depth <= result.queue_bound
        assert result.max_accepted_latency_ns <= result.latency_bound_ns
        assert result.fairness_ratio <= 2.0
        assert result.busy_reply_typed and result.cancel_replay_ok
        assert result.clean

    def test_overload_actually_sheds_at_5x(self):
        result = OverloadChaosHarness(
            OverloadChaosPlan(load_factor=5.0, seed=0, slow_readers=0)
        ).run()
        assert result.shed_busy > 0
        assert result.expired_in_queue > 0

    def test_same_seed_same_outcome(self):
        plan = OverloadChaosPlan(load_factor=2.0, seed=3, slow_readers=0)
        a = OverloadChaosHarness(plan).run()
        b = OverloadChaosHarness(plan).run()
        assert a.goodput == b.goodput
        assert a.shed_busy == b.shed_busy
        assert a.counters == b.counters

    def test_slow_reader_probe_disconnects(self):
        plan = OverloadChaosPlan(
            load_factor=1.0, calls_per_tenant=5, seed=0, slow_readers=1
        )
        result = OverloadChaosHarness(plan).run()
        assert result.slow_reader_disconnects == 1
        assert result.counters["server.slow_readers_disconnected"] >= 1
