"""High availability: replication, failover, sticky faults, CRC integrity.

Covers the HA stack top to bottom: the sticky device-fault model and
server-side device failover, CRC32 record/stripe integrity with
transparent retransmission, hot-standby replication (full sync + op-log),
transparent client failover with at-most-once intact across the
execute-then-crash window, reply-cache survival through drain
checkpoints, and a property test that op-log replay reproduces exactly
the state a full checkpoint carries.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cricket import CricketClient, CricketServer, restore_server, snapshot_server
from repro.cricket.data_channel import DataChannelClient, DataChannelServer
from repro.cricket.replication import (
    MUTATING_PROC_NAMES,
    ReplicationLink,
    make_ha_pair,
    mutating_proc_numbers,
    promote,
    state_fingerprint,
)
from repro.cuda import constants as C
from repro.cuda.errors import CudaError
from repro.gpu.catalog import A100, V100
from repro.gpu.device import GpuDevice
from repro.gpu.errors import DeviceFaultError
from repro.net.simclock import SimClock
from repro.oncrpc.errors import RpcError, RpcIntegrityError, RpcTransportError
from repro.oncrpc.record import append_crc, verify_crc
from repro.resilience import (
    FailoverChaosHarness,
    FailoverChaosPlan,
    FailoverTransport,
    FaultPlan,
    LoopbackEndpoint,
    RetryPolicy,
)

MB = 1 << 20


def ha_pair(**kwargs):
    primary = CricketServer(clock=SimClock(), **kwargs)
    standby = CricketServer(clock=SimClock(), **kwargs)
    return primary, standby


# -- sticky device faults -------------------------------------------------


class TestStickyDeviceFaults:
    def test_fault_is_sticky_until_reset(self):
        device = GpuDevice(A100)
        device.inject_fault("ecc")
        for _ in range(3):
            with pytest.raises(DeviceFaultError) as exc_info:
                device.alloc(1024)
            assert exc_info.value.code == C.cudaErrorECCUncorrectable
        assert not device.healthy
        device.reset()
        assert device.healthy
        assert device.alloc(1024) > 0

    def test_context_fault_code(self):
        device = GpuDevice(A100)
        device.inject_fault("context")
        with pytest.raises(DeviceFaultError) as exc_info:
            device.memset(0, 0, 1)
        assert exc_info.value.code == C.cudaErrorIllegalAddress

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            GpuDevice(A100).inject_fault("gremlins")

    def test_fault_surfaces_as_sticky_cuda_error(self):
        server = CricketServer(clock=SimClock())
        client = CricketClient.loopback(server)
        server.inject_device_fault(0, "ecc")
        for _ in range(3):  # sticky: same code every time
            with pytest.raises(CudaError) as exc_info:
                client.device_synchronize()
            assert exc_info.value.code == C.cudaErrorECCUncorrectable
        assert server.device_health() == {0: False}

    def test_snapshot_is_admin_path_despite_fault(self):
        device = GpuDevice(A100)
        ptr = device.alloc(256)
        device.memcpy_h2d(ptr, b"\x11" * 256)
        device.inject_fault("ecc")
        blob = device.snapshot()  # must not raise
        assert pickle.loads(blob)["allocations"]


class TestDeviceFailover:
    def make_server(self):
        return CricketServer(
            [GpuDevice(A100), GpuDevice(A100)], clock=SimClock()
        )

    def test_failover_preserves_pointers_and_data(self):
        server = self.make_server()
        client = CricketClient.loopback(server)
        ptr = client.malloc(1 * MB)
        client.memcpy_h2d(ptr, b"\xcd" * 512)
        stream = client.stream_create()
        server.inject_device_fault(0, "ecc")
        spare = server.failover_device(0)
        assert spare == 1
        # same ordinal, same pointer, same bytes, healthy again
        assert server.device_health()[0] is True
        assert client.memcpy_d2h(ptr, 512) == b"\xcd" * 512
        client.stream_synchronize(stream)  # stream handle survived the move
        assert server.server_stats.device_failovers == 1

    def test_runtime_and_contexts_follow_the_swap(self):
        server = self.make_server()
        client = CricketClient.loopback(server)
        client.malloc(1 * MB)
        server.inject_device_fault(0, "context")
        server.failover_device(0)
        # the runtime's device list is a copy: both views must agree
        assert server.runtime.devices[0] is server.devices[0]
        assert server._drivers[0].device is server.devices[0]
        # the swapped-out card was reset and is the new idle spare
        assert server.devices[1].healthy
        assert server.devices[1].allocator.used_bytes == 0
        # and the workload keeps running
        client.malloc(1 * MB)

    def test_no_spare_raises(self):
        server = CricketServer([GpuDevice(A100)], clock=SimClock())
        server.inject_device_fault(0, "ecc")
        with pytest.raises(RuntimeError):
            server.failover_device(0)

    def test_spare_must_match_spec(self):
        server = CricketServer(
            [GpuDevice(A100), GpuDevice(V100)], clock=SimClock()
        )
        server.inject_device_fault(0, "ecc")
        with pytest.raises(RuntimeError):
            server.failover_device(0)


# -- CRC32 integrity on the RPC path --------------------------------------


class TestRecordCrc:
    def test_roundtrip(self):
        record = b"hello cricket"
        assert verify_crc(append_crc(record)) == record

    def test_corruption_detected(self):
        framed = bytearray(append_crc(b"hello cricket"))
        framed[3] ^= 0x5A
        with pytest.raises(RpcIntegrityError):
            verify_crc(bytes(framed))

    def test_short_record_rejected(self):
        with pytest.raises(RpcIntegrityError):
            verify_crc(b"abc")

    def test_corrupt_request_dropped_then_retried(self):
        server = CricketServer(clock=SimClock(), crc_records=True)
        plan = FaultPlan(seed=1, corrupt_request_first=1)
        client = CricketClient.loopback(
            server, faults=plan, retry_policy=RetryPolicy(max_attempts=6)
        )
        ptr = client.malloc(2048)
        assert ptr > 0
        assert server.server_stats.crc_rejected >= 1

    def test_corrupt_reply_retransmit_hits_cache(self):
        server = CricketServer(clock=SimClock(), crc_records=True)
        plan = FaultPlan(seed=1, corrupt_reply_first=1)
        client = CricketClient.loopback(
            server, faults=plan, retry_policy=RetryPolicy(max_attempts=6)
        )
        # non-idempotent call whose first reply is corrupted in flight:
        # the retransmit must be answered from the reply cache
        ptr = client.malloc(2048)
        assert ptr > 0
        assert client.stats.crc_rejected >= 1
        assert server.server_stats.reply_cache_hits >= 1
        assert server.device.allocator.used_bytes == 2048  # exactly once

    def test_crc_disabled_by_default(self):
        server = CricketServer(clock=SimClock())
        client = CricketClient.loopback(server)
        assert client.malloc(1024) > 0
        assert server.server_stats.crc_rejected == 0


class TestDataChannelCrc:
    def test_write_corruption_refused_and_retransmitted(self):
        device = GpuDevice(A100)
        ptr = device.alloc(1 * MB)
        server = DataChannelServer(device)
        try:
            client = DataChannelClient(server.address, sockets=4, chunk=64 * 1024)
            client.corrupt_next_writes = 2
            payload = bytes(range(256)) * 4096
            client.write(ptr, payload)
            assert device.allocator.read(ptr, len(payload)) == payload
            assert server.crc_rejected == 2
            assert client.stripe_retransmits == 2
        finally:
            server.close()

    def test_read_corruption_detected_and_refetched(self):
        device = GpuDevice(A100)
        ptr = device.alloc(1 * MB)
        payload = bytes(reversed(range(256))) * 4096
        device.memcpy_h2d(ptr, payload)
        server = DataChannelServer(device)
        try:
            client = DataChannelClient(server.address, sockets=4, chunk=64 * 1024)
            server.corrupt_next_reads = 2
            assert client.read(ptr, len(payload)) == payload
            assert client.stripe_retransmits == 2
        finally:
            server.close()

    def test_persistent_corruption_finally_raises(self):
        device = GpuDevice(A100)
        ptr = device.alloc(64 * 1024)
        server = DataChannelServer(device)
        try:
            client = DataChannelClient(server.address, sockets=1)
            client.corrupt_next_writes = DataChannelClient.MAX_STRIPE_ATTEMPTS
            with pytest.raises(ConnectionError):
                client.write(ptr, b"\xff" * 1024)
        finally:
            server.close()


# -- replication ----------------------------------------------------------


class TestReplication:
    def test_mutating_procs_resolve(self):
        primary = CricketServer(clock=SimClock())
        numbers = mutating_proc_numbers(primary.interface)
        assert len(numbers) == len(MUTATING_PROC_NAMES)
        sigs = primary.interface.signatures
        assert sigs["rpc_cudaMalloc"].number in numbers
        assert sigs["rpc_cudaMemcpyD2H"].number not in numbers  # read-only
        assert sigs["rpc_cudaGetLastError"].number in numbers  # read-and-clear

    def test_synchronous_replication_mirrors_state(self):
        primary, standby = ha_pair()
        link = ReplicationLink(primary, standby)
        client = CricketClient.loopback(primary)
        ptr = client.malloc(1 * MB)
        client.memcpy_h2d(ptr, b"\x77" * 1024)
        stream = client.stream_create()
        client.free(client.malloc(4096))
        assert link.lag == 0
        assert state_fingerprint(primary) == state_fingerprint(standby)
        assert standby.device.allocator.read(ptr, 1024) == b"\x77" * 1024
        assert primary.server_stats.replication_ops_shipped == \
            primary.server_stats.replication_ops_applied
        assert stream in {s.handle for s in standby.device.streams.streams()}

    def test_reads_are_not_shipped(self):
        primary, standby = ha_pair()
        ReplicationLink(primary, standby)
        client = CricketClient.loopback(primary)
        ptr = client.malloc(4096)
        shipped = primary.server_stats.replication_ops_shipped
        client.memcpy_d2h(ptr, 16)
        client.peek_last_error()
        client.device_synchronize()
        assert primary.server_stats.replication_ops_shipped == shipped

    def test_bounded_lag_batches_then_flushes(self):
        primary, standby = ha_pair()
        link = ReplicationLink(primary, standby, max_lag=3)
        client = CricketClient.loopback(primary)
        client.malloc(4096)
        client.malloc(4096)
        assert 0 < link.lag <= 3
        assert standby.device.allocator.used_bytes == 0  # not applied yet
        for _ in range(4):
            client.malloc(4096)
        assert link.lag <= 3  # auto-flush kept the bound
        link.flush()
        assert link.lag == 0
        assert state_fingerprint(primary) == state_fingerprint(standby)

    def test_full_sync_seeds_existing_state(self):
        primary, standby = ha_pair()
        client = CricketClient.loopback(primary)
        ptr = client.malloc(1 * MB)
        client.memcpy_h2d(ptr, b"\x42" * 64)
        link = ReplicationLink(primary, standby)  # attach mid-life
        assert state_fingerprint(primary) == state_fingerprint(standby)
        assert primary.server_stats.replication_full_syncs == 1
        client.malloc(4096)  # and the op-log continues from there
        assert state_fingerprint(primary) == state_fingerprint(standby)
        assert link.applied_seq == link.primary_seq

    def test_replication_populates_standby_reply_cache(self):
        primary, standby = ha_pair()
        ReplicationLink(primary, standby)
        client = CricketClient.loopback(primary)
        client.malloc(4096)
        # replayed under the original identity: a retransmit would hit
        assert any(
            identity == client.session_identity
            for (identity, _xid) in standby._reply_cache
        )

    def test_second_observer_rejected(self):
        primary, standby = ha_pair()
        ReplicationLink(primary, standby)
        with pytest.raises(RuntimeError):
            ReplicationLink(primary, CricketServer(clock=SimClock()))

    def test_promote_flushes_and_detaches(self):
        primary, standby = ha_pair()
        link = ReplicationLink(primary, standby, max_lag=10)
        client = CricketClient.loopback(primary)
        ptr = client.malloc(1 * MB)
        client.memcpy_h2d(ptr, b"\x99" * 128)
        assert link.lag > 0
        promoted = promote(link)
        assert promoted is standby
        assert link.lag == 0
        assert not link.attached
        assert primary.on_executed is None
        assert standby.server_stats.standby_promotions == 1
        assert standby.device.allocator.read(ptr, 128) == b"\x99" * 128
        promote(link)  # idempotent
        assert standby.server_stats.standby_promotions == 1

    def test_crc_standby_applies_ops(self):
        primary = CricketServer(clock=SimClock())
        standby = CricketServer(clock=SimClock(), crc_records=True)
        ReplicationLink(primary, standby)
        client = CricketClient.loopback(primary)
        ptr = client.malloc(4096)
        # the standby verified and applied the re-checksummed record
        assert standby.device.allocator.used_bytes == 4096
        assert standby.server_stats.crc_rejected == 0
        assert ptr > 0


# -- client failover ------------------------------------------------------


class TestClientFailover:
    def test_failover_transport_rotates(self):
        primary, standby = ha_pair()
        eps = [LoopbackEndpoint(primary, name="p"), LoopbackEndpoint(standby, name="s")]
        transport = FailoverTransport(eps)
        assert transport.active_endpoint is eps[0]
        primary.kill()
        transport.reconnect(force=True)
        assert transport.active_endpoint is eps[1]
        assert transport.stats.failovers == 1

    def test_all_endpoints_dead_raises(self):
        primary, standby = ha_pair()
        eps = [LoopbackEndpoint(primary), LoopbackEndpoint(standby)]
        transport = FailoverTransport(eps)
        primary.kill()
        standby.kill()
        with pytest.raises(RpcTransportError):
            transport.reconnect(force=True)

    def test_immediate_crash_fails_over_transparently(self):
        primary, standby = ha_pair()
        link, endpoints = make_ha_pair(primary, standby, unfenced=True)
        client = CricketClient.failover(
            endpoints, retry_policy=RetryPolicy(max_attempts=8)
        )
        ptr = client.malloc(1 * MB)
        client.memcpy_h2d(ptr, b"\x10" * 64)
        primary.kill()
        ptr2 = client.malloc(4096)  # retried, failed over, executed once
        assert ptr2 > ptr
        assert client.stats.failovers == 1
        assert standby.server_stats.standby_promotions == 1
        assert client.memcpy_d2h(ptr, 64) == b"\x10" * 64

    def test_dangerous_window_no_double_execution(self):
        primary, standby = ha_pair()
        link, endpoints = make_ha_pair(primary, standby, unfenced=True)
        client = CricketClient.failover(
            endpoints, retry_policy=RetryPolicy(max_attempts=8)
        )
        client.malloc(1 * MB)
        # crash after executing (and replicating) the malloc, before the
        # reply: the standby must answer the retransmit from cache
        endpoints[0].kill_after_next_execute()
        client.malloc(2 * MB)
        assert standby.server_stats.reply_cache_hits >= 1
        assert standby.device.allocator.used_bytes == 3 * MB
        assert client.stats.failovers == 1

    def test_failover_without_retry_policy_surfaces_error(self):
        primary, standby = ha_pair()
        _link, endpoints = make_ha_pair(primary, standby, unfenced=True)
        client = CricketClient.failover(endpoints)
        client.malloc(4096)
        primary.kill()
        with pytest.raises(RpcError):
            client.malloc(4096)

    def test_crc_failover_pair(self):
        primary = CricketServer(clock=SimClock(), crc_records=True)
        standby = CricketServer(clock=SimClock(), crc_records=True)
        _link, endpoints = make_ha_pair(primary, standby, unfenced=True)
        client = CricketClient.failover(
            endpoints, retry_policy=RetryPolicy(max_attempts=8)
        )
        ptr = client.malloc(1 * MB)
        client.memcpy_h2d(ptr, b"\x33" * 64)
        endpoints[0].kill_after_next_execute()
        client.malloc(4096)
        assert client.memcpy_d2h(ptr, 64) == b"\x33" * 64
        assert standby.device.allocator.used_bytes == 1 * MB + 4096


def test_tcp_failover_real_sockets():
    """Primary on a real socket dies; the client fails over to the standby."""
    from repro.cricket.client import cricket_interface
    from repro.resilience import ResilienceStats, TcpEndpoint, null_probe

    primary, standby = ha_pair()
    link = ReplicationLink(primary, standby)
    primary_addr = primary.serve_tcp("127.0.0.1", 0)
    standby_addr = standby.serve_tcp("127.0.0.1", 0)
    try:
        iface = cricket_interface()
        stats = ResilienceStats()
        transport = FailoverTransport(
            [
                TcpEndpoint(*primary_addr, name="primary", io_timeout=2.0),
                TcpEndpoint(*standby_addr, name="standby", io_timeout=2.0),
            ],
            stats=stats,
            probe=null_probe(iface.prog_number, iface.vers_number),
        )
        client = CricketClient(
            transport, retry_policy=RetryPolicy(max_attempts=6), stats=stats
        )
        ptr = client.malloc(8192)
        client.memcpy_h2d(ptr, b"\x42" * 128)
        primary.kill()
        primary.shutdown()
        promote(link)
        client.malloc(4096)
        assert client.memcpy_d2h(ptr, 128) == b"\x42" * 128
        assert stats.failovers == 1
        assert standby.device.allocator.used_bytes == 8192 + 4096
    finally:
        standby.shutdown()


# -- reply cache across drain checkpoints (satellite fix) ------------------


class TestReplyCacheSurvivesRestore:
    def test_checkpoint_carries_reply_cache(self):
        server = CricketServer(clock=SimClock())
        client = CricketClient.loopback(server)
        client.malloc(4096)
        blob = snapshot_server(server)
        replacement = CricketServer(clock=SimClock())
        restore_server(replacement, blob)
        assert replacement._reply_cache == server._reply_cache
        assert (
            replacement.server_stats.reply_cache_bytes
            == server.server_stats.reply_cache_bytes
        )

    def test_version1_blob_still_restores(self):
        server = CricketServer(clock=SimClock())
        client = CricketClient.loopback(server)
        client.malloc(4096)
        state = pickle.loads(snapshot_server(server))
        state["version"] = 1
        del state["reply_cache"]
        replacement = CricketServer(clock=SimClock())
        restore_server(replacement, pickle.dumps(state))
        assert replacement.device.allocator.used_bytes == 4096

    def test_retransmit_across_drain_restore_not_reexecuted(self):
        server = CricketServer(clock=SimClock(), lease_s=30.0)
        client = CricketClient.loopback(server)
        client.malloc(1 * MB)
        xid_before = client.stub.client.calls_made
        server.shutdown(drain=True)
        assert server.drain_checkpoint is not None
        replacement = CricketServer(clock=SimClock(), lease_s=30.0)
        restore_server(replacement, server.drain_checkpoint)
        # replay the client's last request verbatim against the restored
        # server: at-most-once must answer from the restored cache
        hits_before = replacement.server_stats.reply_cache_hits
        client.recover(server.drain_checkpoint, server=replacement)
        assert replacement.device.allocator.used_bytes == 1 * MB
        assert replacement.server_stats.reply_cache_hits >= hits_before
        client.malloc(4096)  # and new work proceeds
        assert xid_before < client.stub.client.calls_made


# -- property test: op-log replay == checkpoint ---------------------------


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"), st.integers(min_value=256, max_value=64 * 1024)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("h2d"), st.integers(min_value=1, max_value=4096)),
        st.tuples(st.just("stream"), st.none()),
        st.tuples(st.just("event"), st.none()),
        st.tuples(st.just("blas"), st.none()),
        st.tuples(st.just("d2h"), st.integers(min_value=1, max_value=4096)),
        st.tuples(st.just("memset"), st.integers(min_value=0, max_value=255)),
    ),
    min_size=1,
    max_size=24,
)


@given(ops=OPS)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_oplog_replay_equals_checkpoint(ops):
    """Replaying the op-log on a fresh standby reproduces exactly the
    state a full checkpoint carries at the same sequence number."""
    primary = CricketServer(clock=SimClock())
    standby = CricketServer(clock=SimClock())
    link = ReplicationLink(primary, standby)  # fresh: op-log is authoritative
    client = CricketClient.loopback(primary)
    ptrs = []
    for kind, arg in ops:
        if kind == "malloc":
            ptrs.append(client.malloc(arg))
        elif kind == "free" and ptrs:
            client.free(ptrs.pop(arg % len(ptrs)))
        elif kind == "h2d" and ptrs:
            client.memcpy_h2d(ptrs[-1], b"\xa5" * min(arg, 256))
        elif kind == "stream":
            client.stream_create()
        elif kind == "event":
            client.event_create()
        elif kind == "blas":
            client.cublas_destroy(client.cublas_create())
        elif kind == "d2h" and ptrs:
            client.memcpy_d2h(ptrs[-1], 16)
        elif kind == "memset" and ptrs:
            client.memset(ptrs[-1], arg, 64)
    assert link.applied_seq == link.primary_seq
    # the standby built purely from the op-log...
    replayed = state_fingerprint(standby)
    # ...must equal a checkpoint-restored twin at the same sequence number
    twin = CricketServer(clock=SimClock())
    restore_server(twin, snapshot_server(primary))
    assert replayed == state_fingerprint(twin)
    assert replayed == state_fingerprint(primary)


# -- failover chaos soak --------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_failover_chaos_is_clean(seed):
    result = FailoverChaosHarness(FailoverChaosPlan(seed=seed)).run()
    assert result.clean
    assert result.promotions == 1
    assert result.failovers >= 1
    if result.dangerous_window:
        # the in-flight call was answered from the replicated cache
        assert result.reply_cache_hits_after_failover >= 1


def test_failover_chaos_deterministic():
    a = FailoverChaosHarness(FailoverChaosPlan(seed=3)).run()
    b = FailoverChaosHarness(FailoverChaosPlan(seed=3)).run()
    assert (a.kill_round, a.poison_round, a.dangerous_window, a.failovers) == (
        b.kill_round,
        b.poison_round,
        b.dangerous_window,
        b.failovers,
    )
