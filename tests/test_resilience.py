"""Resilient RPC path: retry/backoff, fault injection, recovery.

Deterministic by construction: fault schedules and jitter come from fixed
seeds, and every delay is charged to the experiment's SimClock, so the
timing assertions here are exact, not flaky.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro import GpuSession, SessionConfig
from repro.cricket import CricketClient, CricketServer
from repro.cricket.errors import CheckpointError
from repro.net.simclock import SimClock, WallClock
from repro.oncrpc import (
    LoopbackTransport,
    RpcCircuitOpenError,
    RpcClient,
    RpcDeadlineExceeded,
    RpcRetryExhausted,
    RpcServer,
    RpcTimeoutError,
    RpcTransportError,
    TcpTransport,
)
from repro.resilience import (
    CircuitBreaker,
    FaultInjectingTransport,
    FaultPlan,
    ReconnectingTransport,
    RetryPolicy,
)
from repro.unikernel import rustyhermit

PROG, VERS = 0x20000099, 3


def echo_server(**kwargs) -> RpcServer:
    server = RpcServer(**kwargs)
    server.register_program(PROG, VERS, {1: lambda args, ctx: args})
    return server


def make_client(server, plan=None, policy=None, clock=None):
    clock = clock if clock is not None else SimClock()
    transport = LoopbackTransport(server.dispatch_record)
    if plan is not None:
        transport = FaultInjectingTransport(transport, plan, clock=clock)
    stats = transport.stats if plan is not None else None
    return RpcClient(
        transport, PROG, VERS, retry_policy=policy, clock=clock, stats=stats
    )


class TestRetryPolicy:
    def test_backoff_schedule_jitterless(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.001, multiplier=2.0,
            max_delay_s=0.005, jitter=0.0,
        )
        assert policy.schedule() == (0.001, 0.002, 0.004, 0.005)

    def test_jitter_reproducible_from_seed(self):
        policy = RetryPolicy(jitter=0.2, seed=99)
        a = [policy.backoff_s(i, policy.make_rng()) for i in range(1, 5)]
        b = [policy.backoff_s(i, policy.make_rng()) for i in range(1, 5)]
        assert a == b

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_s=0.01, multiplier=1.0, jitter=0.1)
        rng = policy.make_rng()
        for _ in range(100):
            delay = policy.backoff_s(1, rng)
            assert 0.009 <= delay <= 0.011

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)


class TestRetryTiming:
    def test_backoff_charges_virtual_time_exactly(self):
        """Two lost requests cost exactly base + 2*base of clock time."""
        clock = SimClock()
        server = echo_server()
        policy = RetryPolicy(base_delay_s=0.001, multiplier=2.0, jitter=0.0)
        client = make_client(
            server, FaultPlan(drop_request_first=2), policy, clock
        )
        assert client.call_raw(1, b"ping") == b"ping"
        assert clock.now_ns == int(0.003 * 1e9)  # 1 ms + 2 ms
        assert client.stats.retries == 2
        # subsequent clean calls charge nothing
        assert client.call_raw(1, b"pong") == b"pong"
        assert clock.now_ns == int(0.003 * 1e9)

    def test_deadline_exhaustion(self):
        """When backoff would overrun the budget, the call fails fast."""
        clock = SimClock()
        server = echo_server()
        policy = RetryPolicy(
            max_attempts=50, base_delay_s=0.010, multiplier=2.0,
            jitter=0.0, deadline_s=0.025,
        )
        client = make_client(
            server, FaultPlan(drop_request_rate=1.0), policy, clock
        )
        with pytest.raises(RpcDeadlineExceeded):
            client.call_raw(1, b"doomed\x00\x00")
        # charged 10ms + (20ms refused: it would cross the 25ms deadline)
        assert clock.now_ns == int(0.010 * 1e9)
        assert client.stats.deadlines_exceeded == 1

    def test_retries_exhausted(self):
        server = echo_server()
        policy = RetryPolicy(max_attempts=3, jitter=0.0, deadline_s=None)
        client = make_client(server, FaultPlan(drop_request_rate=1.0), policy)
        with pytest.raises(RpcRetryExhausted):
            client.call_raw(1, b"doomed\x00\x00")
        assert client.stats.retries == 2  # attempts 2 and 3
        assert client.stats.retries_exhausted == 1

    def test_fatal_errors_not_retried(self):
        """A decoded server verdict must not burn retry budget."""
        server = echo_server()
        policy = RetryPolicy(jitter=0.0)
        clock = SimClock()
        client = make_client(server, None, policy, clock)
        from repro.oncrpc import RpcProcUnavailable

        with pytest.raises(RpcProcUnavailable):
            client.call_raw(99, b"")  # no such procedure
        assert clock.now_ns == 0  # no backoff was charged


class TestFaultDeterminism:
    def test_same_seed_same_fault_sequence(self):
        counts = []
        for _ in range(2):
            server = echo_server()
            plan = FaultPlan(
                drop_request_rate=0.3, duplicate_rate=0.2, truncate_rate=0.1,
                seed=1234,
            )
            client = make_client(
                server, plan,
                RetryPolicy(max_attempts=16, deadline_s=None, jitter=0.0, seed=5),
            )
            for i in range(50):
                assert client.call_raw(1, i.to_bytes(4, "big")) == i.to_bytes(4, "big")
            counts.append(dict(client.stats.faults_injected))
        assert counts[0] == counts[1]
        assert sum(counts[0].values()) > 0

    def test_first_n_knob_does_not_shift_rate_stream(self):
        """Scripted drop_request_first must not consume or skip RNG draws:
        the rate-based decisions of every later operation stay identical."""

        class _Recorder:
            def __init__(self):
                self.sent = []

            def send_record(self, record):
                self.sent.append(record)

            def recv_record(self):  # pragma: no cover - not used here
                raise AssertionError("recv not expected")

            def close(self):
                pass

        def surviving(first_n):
            inner = _Recorder()
            transport = FaultInjectingTransport(
                inner,
                FaultPlan(drop_request_rate=0.5, drop_request_first=first_n, seed=7),
            )
            for i in range(40):
                transport.send_record(i.to_bytes(4, "big"))
            return {int.from_bytes(r, "big") for r in inner.sent}

        base = surviving(0)
        shifted = surviving(3)
        # requests 1..3 (indices 0..2) are force-dropped; everything else
        # must fault exactly as in the base run
        assert shifted == base - {0, 1, 2}

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_request_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay_s=-1)
        with pytest.raises(ValueError):
            FaultPlan(disconnect_after_bytes=-8)


class TestAtMostOnce:
    def test_duplicate_request_not_reexecuted(self):
        """Replaying a request record hits the reply cache, not the handler."""
        executions = []
        server = RpcServer()
        server.register_program(
            PROG, VERS, {1: lambda args, ctx: executions.append(args) or args}
        )
        client = RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)
        # capture the raw request by replaying through dispatch_record directly
        from repro.oncrpc import message as msg
        from repro.oncrpc.auth import NULL_AUTH

        call = msg.RpcMessage(
            0x42, msg.CallBody(PROG, VERS, 1, cred=NULL_AUTH, args=b"once")
        )
        record = call.encode()
        first = server.dispatch_record(record)
        second = server.dispatch_record(record)  # retransmission, same xid
        assert first == second
        assert len(executions) == 1
        assert server.duplicate_hits == 1
        client.close()

    def test_reply_cache_evicts_lru(self):
        server = echo_server(reply_cache_size=4)
        client = RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)
        for i in range(10):
            client.call_raw(1, i.to_bytes(4, "big"))
        assert len(server._reply_cache) == 4

    def test_reply_cache_survives_reconnect(self):
        """The cache keys on the client token, not the transport address.

        After a reconnect the client's ephemeral port (and hence the
        server-side ``client_id``) changes; a retransmission of the same
        xid must still hit the cache instead of re-executing the handler.
        """
        from repro.oncrpc import message as msg
        from repro.oncrpc.auth import client_token_auth

        executions = []
        server = RpcServer()
        server.register_program(
            PROG, VERS, {1: lambda args, ctx: executions.append(args) or args}
        )
        cred = client_token_auth(b"\x5a" * 16)
        call = msg.RpcMessage(
            0x99, msg.CallBody(PROG, VERS, 1, cred=cred, args=b"alloc\x00\x00\x00")
        )
        record = call.encode()
        first = server.dispatch_record(record, client_id="10.0.0.7:41001")
        # reconnect: same client token, new source port
        second = server.dispatch_record(record, client_id="10.0.0.7:41002")
        assert first == second
        assert len(executions) == 1
        assert server.duplicate_hits == 1

    def test_client_autogenerates_distinct_tokens(self):
        """Default clients carry a generated token cred; explicit creds win."""
        from repro.oncrpc import AUTH_CLIENT_TOKEN, AUTH_SYS, AuthSysParams

        server = echo_server()
        a = RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)
        b = RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)
        assert a.cred.flavor == AUTH_CLIENT_TOKEN
        assert b.cred.flavor == AUTH_CLIENT_TOKEN
        assert a.cred.body != b.cred.body
        explicit = AuthSysParams(machinename="vm").to_opaque()
        c = RpcClient(
            LoopbackTransport(server.dispatch_record), PROG, VERS, cred=explicit
        )
        assert c.cred.flavor == AUTH_SYS

    def test_reply_cache_byte_budget(self):
        """Eviction honours the total-bytes budget, not just entry count."""
        server = echo_server(reply_cache_bytes=4096)
        client = RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)
        for i in range(10):
            client.call_raw(1, bytes(1024))
        assert server._reply_cache_total <= 4096
        assert 0 < len(server._reply_cache) < 10

    def test_oversized_reply_not_cached(self):
        """Bulk-data replies are skipped so they cannot pin cache memory."""
        server = echo_server(reply_cache_entry_bytes=256)
        client = RpcClient(LoopbackTransport(server.dispatch_record), PROG, VERS)
        client.call_raw(1, bytes(1024))  # echo reply > 256 bytes: skipped
        assert len(server._reply_cache) == 0
        assert server._reply_cache_total == 0
        client.call_raw(1, b"tiny")  # small reply still cached
        assert len(server._reply_cache) == 1

    def test_nonidempotent_call_safe_under_reply_loss(self):
        """cudaMalloc whose reply is lost must not allocate twice."""
        server = CricketServer()
        client = CricketClient.loopback(
            server,
            faults=FaultPlan(drop_reply_first=1),
            retry_policy=RetryPolicy(jitter=0.0),
        )
        before = server.device.allocator.used_bytes
        ptr = client.malloc(1 << 16)
        assert server.duplicate_hits == 1  # retransmit answered from cache
        after = server.device.allocator.used_bytes
        assert after - before == 1 << 16  # exactly one allocation
        assert client.memcpy_d2h(ptr, 16) == b"\x00" * 16


class TestStaleReplies:
    def test_duplicated_replies_discarded(self):
        server = echo_server()
        plan = FaultPlan(duplicate_rate=1.0, seed=0)
        client = make_client(server, plan, RetryPolicy(jitter=0.0))
        for i in range(20):
            assert client.call_raw(1, i.to_bytes(4, "big")) == i.to_bytes(4, "big")
        assert client.stats.stale_replies_discarded > 0


class TestCircuitBreaker:
    def test_open_halfopen_closed_cycle(self):
        clock = SimClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=0.1, clock=clock
        )
        assert breaker.state == "closed"
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance_s(0.1)
        assert breaker.state == "half-open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_reconnect_respects_breaker(self):
        clock = SimClock()
        attempts = []

        def factory():
            attempts.append(1)
            raise RpcTransportError("nobody home")

        transport = ReconnectingTransport(
            factory,
            breaker=CircuitBreaker(failure_threshold=2, reset_timeout_s=1.0, clock=clock),
            connect_now=False,
        )
        for _ in range(2):
            with pytest.raises(RpcTransportError):
                transport.reconnect()
        # breaker now open: factory must NOT be called again
        with pytest.raises(RpcCircuitOpenError):
            transport.reconnect()
        assert len(attempts) == 2
        # force bypasses the breaker (explicit operator recovery)
        with pytest.raises(RpcTransportError):
            transport.reconnect(force=True)
        assert len(attempts) == 3


class TestTcpTimeouts:
    def test_connect_failure_is_transport_error(self):
        # a listener backlog of 0 on a bound-but-unaccepting socket still
        # accepts connects on Linux; use a closed port instead
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()  # nothing listens here now
        with pytest.raises(RpcTransportError):
            TcpTransport(host, port, connect_timeout=0.5)

    def test_io_timeout_maps_to_rpc_timeout_error(self):
        """A server that accepts but never replies trips RpcTimeoutError."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        silent = []

        def accept_and_hold():
            conn, _ = listener.accept()
            silent.append(conn)  # keep open, never reply

        thread = threading.Thread(target=accept_and_hold, daemon=True)
        thread.start()
        transport = TcpTransport(host, port, io_timeout=0.2)
        transport.send_record(b"\x00" * 8)
        with pytest.raises(RpcTimeoutError):
            transport.recv_record()
        transport.close()
        for conn in silent:
            conn.close()
        listener.close()


class TestWallClock:
    def test_advance_sleeps_real_time(self):
        clock = WallClock()
        t0 = time.monotonic()
        clock.advance_s(0.02)
        assert time.monotonic() - t0 >= 0.019
        assert clock.now_ns >= 19_000_000

    def test_validation_and_reset(self):
        clock = WallClock()
        with pytest.raises(ValueError):
            clock.advance_s(-1)
        clock.advance_s(0.001)
        clock.reset()
        assert clock.now_s < 0.001

    def test_connect_tcp_runs_on_wall_clock(self):
        """Real-socket sessions must enforce backoff/deadlines in real time."""
        server = CricketServer()
        host, port = server.serve_tcp("127.0.0.1", 0)
        client = CricketClient.connect_tcp(host, port)
        try:
            assert isinstance(client.clock, WallClock)
            assert client.get_device_count() == 1
        finally:
            client.close()
            server.shutdown()

    def test_tcp_retry_backoff_takes_wall_time(self):
        """Against a dead server, retries must actually pace themselves."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()  # nothing listens here now
        transport = ReconnectingTransport(
            lambda: TcpTransport(host, port, connect_timeout=0.2),
            clock=WallClock(),
            connect_now=False,
        )
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.02, multiplier=1.0,
            jitter=0.0, deadline_s=None,
        )
        client = RpcClient(
            transport, PROG, VERS, retry_policy=policy, clock=WallClock()
        )
        t0 = time.monotonic()
        with pytest.raises(RpcRetryExhausted):
            client.call_raw(1, b"dead")
        # two backoffs of 20 ms each must have really elapsed
        assert time.monotonic() - t0 >= 0.04


class TestRecovery:
    def test_recover_requires_checkpoint(self):
        server = CricketServer()
        client = CricketClient.loopback(server)
        with pytest.raises(CheckpointError):
            client.recover()

    def test_loopback_server_swap_recovery(self):
        """Kill the loopback server mid-workload; recover on a fresh one."""
        node_a = CricketServer()
        client = CricketClient.loopback(node_a, retry_policy=RetryPolicy(jitter=0.0))
        ptr = client.malloc(256)
        payload = bytes(range(256))
        client.memcpy_h2d(ptr, payload)
        client.checkpoint()
        del node_a  # the node dies
        node_b = CricketServer()
        client.recover(server=node_b)
        assert client.memcpy_d2h(ptr, 256) == payload  # same pointer, same data
        assert client.stats.recoveries == 1

    def test_tcp_kill_restart_recover_end_to_end(self):
        """The full Cricket path: server killed, restarted, session recovered."""
        node_a = CricketServer()
        host, port = node_a.serve_tcp("127.0.0.1", 0)
        client = CricketClient.connect_tcp(
            host, port,
            io_timeout=2.0,
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0, deadline_s=None),
        )
        ptr = client.malloc(64)
        payload = bytes(range(64))
        client.memcpy_h2d(ptr, payload)
        client.checkpoint()
        node_a.shutdown()

        # the connection thread may serve one last in-flight call before it
        # notices the shutdown flag, so poke until the outage is visible
        with pytest.raises(RpcTransportError):
            for _ in range(5):
                client.get_device_count()

        node_b = CricketServer()
        node_b.serve_tcp(host, port)
        try:
            client.recover()  # ...and survivable
            assert client.memcpy_d2h(ptr, 64) == payload
            assert client.get_device_count() == 1
            assert client.stats.recoveries == 1
            assert client.stats.reconnects >= 1
        finally:
            client.close()
            node_b.shutdown()


class TestSessionLevelResilience:
    def test_faulty_session_bit_identical_to_clean(self):
        """The acceptance scenario: 5% drop/disconnect, default retries,
        bit-identical workload output and counters in the trace."""

        def workload(session: GpuSession) -> bytes:
            module = session.load_builtin_module(["vectorAdd"])
            kernel = module.function("vectorAdd")
            n = 1 << 10
            a_host = np.random.default_rng(0).random(n, dtype=np.float32)
            b_host = np.random.default_rng(1).random(n, dtype=np.float32)
            a = session.upload(a_host)
            b = session.upload(b_host)
            c = session.alloc(4 * n)
            kernel.launch((n // 256, 1, 1), (256, 1, 1), a, b, c, n)
            session.synchronize()
            return bytes(c.read())

        clean = workload(GpuSession(SessionConfig(platform=rustyhermit())))
        faulty_session = GpuSession(
            SessionConfig(
                platform=rustyhermit(),
                faults=FaultPlan(
                    drop_request_rate=0.05, disconnect_rate=0.05, seed=2024
                ),
                retry_policy=RetryPolicy(seed=2024),
            )
        )
        tracer = faulty_session.enable_tracing()
        assert workload(faulty_session) == clean
        counters = tracer.counter_snapshot()
        assert counters["retries"] == faulty_session.client.stats.retries
        if faulty_session.client.stats.total_faults:
            assert "fault." in tracer.summary()

    def test_tracer_counter_snapshot_merges_sources(self):
        from repro.core.tracing import Tracer

        tracer = Tracer(SimClock())
        tracer.count("manual", 2)

        class Source:
            def as_dict(self):
                return {"retries": 7}

        tracer.attach_counters(Source())
        snapshot = tracer.counter_snapshot()
        assert snapshot == {"manual": 2, "retries": 7}
        assert "retries" in tracer.summary()
