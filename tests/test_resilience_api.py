"""The public surface of :mod:`repro.resilience` is complete and honest.

Two invariants, checked mechanically so they cannot rot:

* every name in ``__all__`` actually resolves on the package (no stale
  exports surviving a refactor), and
* every name that tests/ or examples/ import *from* the package (or its
  ``simulation`` subpackage) is declared in the corresponding ``__all__``
  -- the consumers in this repo define the supported surface, so an
  import that works only by accident of a submodule re-export fails
  here first.
"""

import ast
from pathlib import Path

import repro.resilience as resilience
import repro.resilience.simulation as simulation

REPO = Path(__file__).resolve().parent.parent


def _imported_names(module_name: str) -> dict[str, list[str]]:
    """Map ``file -> names`` for ``from <module_name> import ...`` across
    every test and example in the repo."""
    uses: dict[str, list[str]] = {}
    for root in ("tests", "examples"):
        for path in sorted((REPO / root).glob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            names = [
                alias.name
                for node in ast.walk(tree)
                if isinstance(node, ast.ImportFrom)
                and node.module == module_name
                for alias in node.names
            ]
            if names:
                uses[f"{root}/{path.name}"] = names
    return uses


class TestPackageSurface:
    def test_all_names_resolve(self):
        for name in resilience.__all__:
            assert hasattr(resilience, name), f"stale export: {name}"

    def test_simulation_all_names_resolve(self):
        for name in simulation.__all__:
            assert hasattr(simulation, name), f"stale export: {name}"

    def test_no_duplicate_exports(self):
        assert len(resilience.__all__) == len(set(resilience.__all__))
        assert len(simulation.__all__) == len(set(simulation.__all__))

    def test_simulation_api_reexported_at_package_level(self):
        # The core simulation entry points are reachable without knowing
        # the subpackage layout.
        for name in (
            "SimulationPlan", "run_simulation", "shrink_schedule",
            "save_trace", "load_trace", "replay_trace", "HistoryChecker",
            "NemesisEvent", "generate_schedule",
        ):
            assert name in resilience.__all__, name


class TestConsumersCovered:
    def test_package_imports_are_declared(self):
        exported = set(resilience.__all__)
        for where, names in _imported_names("repro.resilience").items():
            missing = [n for n in names if n != "*" and n not in exported]
            assert not missing, f"{where} imports undeclared {missing}"

    def test_simulation_imports_are_declared(self):
        exported = set(simulation.__all__)
        uses = _imported_names("repro.resilience.simulation")
        assert uses, "no consumer imports the simulation package?"
        for where, names in uses.items():
            missing = [n for n in names if n != "*" and n not in exported]
            assert not missing, f"{where} imports undeclared {missing}"
