"""Unit tests for the RPCL tokenizer."""

import pytest

from repro.rpcl.errors import RpclSyntaxError
from repro.rpcl.lexer import parse_int_literal, tokenize


def kinds_values(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "eof"]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        toks = kinds_values("struct foo int bar unsigned")
        assert toks == [
            ("keyword", "struct"),
            ("ident", "foo"),
            ("keyword", "int"),
            ("ident", "bar"),
            ("keyword", "unsigned"),
        ]

    def test_punctuation(self):
        toks = kinds_values("{ } ( ) [ ] < > * = , ; :")
        assert all(k == "punct" for k, _ in toks)
        assert [v for _, v in toks] == list("{}()[]<>*=,;:")

    def test_numbers(self):
        toks = kinds_values("0 42 -17 0x1A 010")
        assert [v for _, v in toks] == ["0", "42", "-17", "0x1A", "010"]
        assert all(k == "number" for k, _ in toks)

    def test_identifier_with_underscores_and_digits(self):
        toks = kinds_values("rpc_cudaMalloc_1")
        assert toks == [("ident", "rpc_cudaMalloc_1")]

    def test_positions_tracked(self):
        toks = tokenize("a\n  bb")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)


class TestCommentsAndPassthrough:
    def test_block_comment_skipped(self):
        assert kinds_values("a /* comment \n more */ b") == [
            ("ident", "a"),
            ("ident", "b"),
        ]

    def test_line_comment_skipped(self):
        assert kinds_values("a // rest of line\nb") == [("ident", "a"), ("ident", "b")]

    def test_percent_passthrough_line_skipped(self):
        assert kinds_values("%#include <stdio.h>\nint") == [("keyword", "int")]

    def test_unterminated_block_comment(self):
        with pytest.raises(RpclSyntaxError):
            tokenize("a /* never closed")

    def test_line_numbers_after_block_comment(self):
        toks = tokenize("/* a\nb\nc */ x")
        assert toks[0].line == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(RpclSyntaxError) as exc:
            tokenize("int $bad")
        assert exc.value.line == 1

    def test_malformed_hex(self):
        with pytest.raises(RpclSyntaxError):
            tokenize("0xZZ")


class TestIntLiterals:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0", 0),
            ("42", 42),
            ("-42", -42),
            ("0x10", 16),
            ("0X10", 16),
            ("010", 8),
            ("-0x20", -32),
        ],
    )
    def test_parse_int_literal(self, text, value):
        assert parse_int_literal(text) == value
