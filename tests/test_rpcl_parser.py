"""Unit tests for the RPCL parser and semantic checks."""

import pytest

from repro.rpcl import ast, parse
from repro.rpcl.errors import RpclSemanticError, RpclSyntaxError

SAMPLE = """
const MAX_NAME = 64;
const BLOCK = 0x100;

enum op_kind { OP_READ = 0, OP_WRITE = 1 };

typedef opaque buffer<>;
typedef unsigned hyper devptr;

struct request {
    op_kind kind;
    devptr addr;
    opaque payload<BLOCK>;
    string tag<MAX_NAME>;
    int flags[4];
    request *next;
};

union result switch (int status) {
case 0:
    buffer data;
case 1:
case 2:
    void;
default:
    string message<>;
};

program MEMSVC {
    version MEMVERS {
        void NOOP(void) = 1;
        result DO(request) = 2;
        int ADD(int, int) = 3;
    } = 1;
    version MEMVERS2 {
        void NOOP(void) = 1;
    } = 2;
} = 0x20000055;
"""


class TestDefinitions:
    def test_constants(self):
        spec = parse(SAMPLE)
        assert spec.constants["MAX_NAME"] == 64
        assert spec.constants["BLOCK"] == 256
        assert spec.constants["OP_WRITE"] == 1

    def test_enum(self):
        spec = parse(SAMPLE)
        enum = next(d for d in spec.definitions if isinstance(d, ast.EnumDef))
        assert enum.name == "op_kind"
        assert enum.members == (("OP_READ", 0), ("OP_WRITE", 1))

    def test_typedefs(self):
        spec = parse(SAMPLE)
        tds = [d for d in spec.definitions if isinstance(d, ast.TypedefDef)]
        names = {t.name for t in tds}
        assert names == {"buffer", "devptr"}
        buffer = next(t for t in tds if t.name == "buffer")
        assert buffer.declaration.kind == "variable"
        assert buffer.declaration.type.name == "opaque"

    def test_struct_fields(self):
        spec = parse(SAMPLE)
        struct = next(d for d in spec.definitions if isinstance(d, ast.StructDef))
        kinds = [(f.name, f.kind) for f in struct.fields]
        assert kinds == [
            ("kind", "plain"),
            ("addr", "plain"),
            ("payload", "variable"),
            ("tag", "variable"),
            ("flags", "fixed"),
            ("next", "optional"),
        ]
        payload = struct.fields[2]
        assert payload.size == 256  # resolved from const BLOCK

    def test_union_cases(self):
        spec = parse(SAMPLE)
        union = next(d for d in spec.definitions if isinstance(d, ast.UnionDef))
        assert union.discriminant.name == "status"
        assert union.cases[0].values == (0,)
        assert union.cases[1].values == (1, 2)
        assert union.cases[1].declaration.kind == "void"
        assert union.default is not None

    def test_program(self):
        spec = parse(SAMPLE)
        prog = spec.program("MEMSVC")
        assert prog.number == 0x20000055
        assert len(prog.versions) == 2
        v1 = prog.version(1)
        assert [p.name for p in v1.procedures] == ["NOOP", "DO", "ADD"]
        add = v1.procedures[2]
        assert len(add.args) == 2
        assert add.result.name == "int"

    def test_program_lookup_missing(self):
        spec = parse(SAMPLE)
        with pytest.raises(KeyError):
            spec.program("NOPE")
        with pytest.raises(KeyError):
            spec.program("MEMSVC").version(99)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "const X 5;",  # missing =
            "struct {};",  # missing name
            "enum e { A = };",  # missing value
            "program P { } = 5;",  # no versions
            "union u switch (int x) { };",  # no cases -- wait, grammar allows? we require case/default
            "typedef void;",
        ],
    )
    def test_malformed(self, source):
        with pytest.raises((RpclSyntaxError, RpclSemanticError)):
            parse(source)

    def test_undefined_constant_reference(self):
        with pytest.raises(RpclSemanticError):
            parse("struct s { opaque p<UNKNOWN>; };")


class TestSemanticErrors:
    def test_duplicate_type(self):
        with pytest.raises(RpclSemanticError):
            parse("struct a { int x; };\nstruct a { int y; };")

    def test_duplicate_proc_numbers(self):
        src = """
        program P { version V { void A(void) = 1; void B(void) = 1; } = 1; } = 9;
        """
        with pytest.raises(RpclSemanticError):
            parse(src)

    def test_duplicate_version_numbers(self):
        src = """
        program P {
            version V1 { void A(void) = 1; } = 1;
            version V2 { void A(void) = 1; } = 1;
        } = 9;
        """
        with pytest.raises(RpclSemanticError):
            parse(src)


class TestGrammarCorners:
    def test_unsigned_variants(self):
        spec = parse("struct s { unsigned int a; unsigned hyper b; unsigned c; };")
        struct = spec.definitions[0]
        assert isinstance(struct, ast.StructDef)
        assert struct.fields[0].type.name == "unsigned int"
        assert struct.fields[1].type.name == "unsigned hyper"
        assert struct.fields[2].type.name == "unsigned int"

    def test_struct_keyword_reference(self):
        spec = parse(
            "struct inner { int x; };\nstruct outer { struct inner i; };"
        )
        outer = spec.definitions[1]
        assert isinstance(outer, ast.StructDef)
        assert outer.fields[0].type.name == "inner"

    def test_unbounded_variable_array(self):
        spec = parse("typedef int many<>;")
        td = spec.definitions[0]
        assert isinstance(td, ast.TypedefDef)
        assert td.declaration.size is None

    def test_comments_everywhere(self):
        spec = parse(
            "/* head */ const A /* mid */ = 1; // tail\nconst B = A;"
        )
        assert spec.constants == {"A": 1, "B": 1}
