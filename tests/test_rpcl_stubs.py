"""End-to-end tests for RPCL-driven stub generation and server dispatch."""

import pytest

from repro.oncrpc import LoopbackTransport, RpcServer
from repro.rpcl import ProgramInterface, generate_module, parse
from repro.rpcl.compiler import SpecCompiler
from repro.rpcl.errors import RpclSemanticError

CALC_SPEC = """
const CALC_PROG = 0x20000077;

enum calc_status { CALC_OK = 0, CALC_DIV_ZERO = 1 };

struct pair { int a; int b; };

union div_result switch (calc_status status) {
case CALC_OK:
    int quotient;
case CALC_DIV_ZERO:
    void;
};

typedef opaque blob<>;

struct node { int value; node *next; };

program CALC {
    version CALC_V1 {
        int ADD(pair) = 1;
        div_result DIV(int, int) = 2;
        blob REVERSE(blob) = 3;
        int SUM_LIST(node) = 4;
        string GREET(string) = 5;
    } = 1;
} = CALC_PROG;
"""


class CalcImpl:
    """Reference implementation of the CALC program."""

    def ADD(self, pair):
        return pair["a"] + pair["b"]

    def DIV(self, a, b):
        if b == 0:
            return (1, None)
        return (0, a // b)

    def REVERSE(self, blob):
        return blob[::-1]

    def SUM_LIST(self, node):
        total = 0
        while node is not None:
            total += node["value"]
            node = node["next"]
        return total

    def GREET(self, name, ctx=None):
        who = ctx.client_id if ctx is not None else "?"
        return f"hello {name} from {who}"


@pytest.fixture()
def calc_stub():
    iface = ProgramInterface.from_source(CALC_SPEC, "CALC", 1)
    server = RpcServer()
    server.register_program(
        iface.prog_number, iface.vers_number, iface.make_server_dispatch(CalcImpl())
    )
    stub = iface.bind_client(LoopbackTransport(server.dispatch_record))
    yield stub
    stub.close()


class TestStubCalls:
    def test_struct_argument(self, calc_stub):
        assert calc_stub.ADD({"a": 19, "b": 23}) == 42

    def test_multiple_scalar_args(self, calc_stub):
        assert calc_stub.DIV(10, 3) == (0, 3)

    def test_union_void_arm(self, calc_stub):
        assert calc_stub.DIV(10, 0) == (1, None)

    def test_opaque_roundtrip(self, calc_stub):
        data = bytes(range(200))
        assert calc_stub.REVERSE(data) == data[::-1]

    def test_recursive_linked_list(self, calc_stub):
        chain = {"value": 1, "next": {"value": 2, "next": {"value": 3, "next": None}}}
        assert calc_stub.SUM_LIST(chain) == 6

    def test_handler_receives_context(self, calc_stub):
        assert calc_stub.GREET("hermit").startswith("hello hermit from ")

    def test_call_by_name(self, calc_stub):
        assert calc_stub.call("ADD", {"a": 1, "b": 2}) == 3

    def test_unknown_procedure_attribute(self, calc_stub):
        with pytest.raises(AttributeError):
            calc_stub.NOPE

    def test_wrong_arity(self, calc_stub):
        with pytest.raises(TypeError):
            calc_stub.DIV(1)

    def test_constants_exposed(self, calc_stub):
        assert calc_stub.constants["CALC_PROG"] == 0x20000077
        assert calc_stub.constants["CALC_DIV_ZERO"] == 1

    def test_procedures_listed(self, calc_stub):
        assert set(calc_stub.procedures()) == {"ADD", "DIV", "REVERSE", "SUM_LIST", "GREET"}


class TestServerDispatchErrors:
    def test_missing_implementation_method(self):
        iface = ProgramInterface.from_source(CALC_SPEC, "CALC", 1)
        with pytest.raises(RpclSemanticError):
            iface.make_server_dispatch(object())

    def test_mapping_implementation(self):
        iface = ProgramInterface.from_source(CALC_SPEC, "CALC", 1)
        impl = {
            "ADD": lambda pair: pair["a"] + pair["b"],
            "DIV": lambda a, b: (0, a // b) if b else (1, None),
            "REVERSE": lambda blob: blob[::-1],
            "SUM_LIST": lambda node: 0,
            "GREET": lambda name: name,
        }
        server = RpcServer()
        server.register_program(
            iface.prog_number, iface.vers_number, iface.make_server_dispatch(impl)
        )
        stub = iface.bind_client(LoopbackTransport(server.dispatch_record))
        assert stub.ADD({"a": 2, "b": 3}) == 5


class TestCompilerTypes:
    def test_signatures_table(self):
        compiler = SpecCompiler(parse(CALC_SPEC))
        prog, vers, sigs = compiler.signatures("CALC", 1)
        assert prog == 0x20000077
        assert vers == 1
        assert sigs["DIV"].number == 2
        assert len(sigs["DIV"].arg_types) == 2

    def test_undefined_type_reference_raises_on_use(self):
        spec = parse(
            "struct s { int x; };\n"
            "program P { version V { ghost F(void) = 1; } = 1; } = 2;"
        )
        compiler = SpecCompiler(spec)
        _, _, sigs = compiler.signatures("P", 1)
        with pytest.raises(RpclSemanticError):
            sigs["F"].encode_result({"whatever": 1})


class TestCodegen:
    def test_generated_module_executes(self, tmp_path):
        source = generate_module(CALC_SPEC)
        namespace: dict = {}
        exec(compile(source, "calc_gen.py", "exec"), namespace)
        assert namespace["CALC_PROG"] == 0x20000077
        assert namespace["CALC_DIV_ZERO"] == 1
        assert "CalcV1Client" in namespace

    def test_generated_client_against_server(self):
        source = generate_module(CALC_SPEC)
        namespace: dict = {}
        exec(compile(source, "calc_gen.py", "exec"), namespace)

        iface = ProgramInterface.from_source(CALC_SPEC, "CALC", 1)
        server = RpcServer()
        server.register_program(
            iface.prog_number, iface.vers_number, iface.make_server_dispatch(CalcImpl())
        )
        client = namespace["CalcV1Client"](LoopbackTransport(server.dispatch_record))
        assert client.ADD({"a": 5, "b": 7}) == 12
        assert client.DIV(9, 2) == (0, 4)
        assert client.REVERSE(b"abc") == b"cba"
        chain = {"value": 4, "next": None}
        assert client.SUM_LIST(chain) == 4
        client.close()

    def test_generated_types_registry(self):
        source = generate_module(CALC_SPEC)
        namespace: dict = {}
        exec(compile(source, "calc_gen.py", "exec"), namespace)
        assert set(namespace["_TYPES"]) >= {"pair", "div_result", "blob", "node"}
