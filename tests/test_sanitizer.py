"""Tests for the device-memory sanitizer, kernel watchdog and recovery ladder."""

import numpy as np
import pytest

from repro.cuda import constants as C
from repro.cuda.errors import CudaError, code_for_exception
from repro.cuda.runtime import CudaRuntime
from repro.gpu import A100, GpuDevice
from repro.gpu.errors import (
    DoubleFreeError,
    GpuError,
    InvalidDevicePointerError,
    KernelHangError,
    OutOfBoundsError,
    OutOfMemoryError,
    QuarantineDoubleFreeError,
    RedzoneCorruptionError,
    SanitizerError,
    UseAfterFreeError,
)
from repro.gpu.memory import ALIGNMENT, DEBUG_ALLOCATOR_ENV, DeviceAllocator
from repro.gpu.sanitizer import CANARY, POISON, SanitizerConfig
from repro.gpu.watchdog import DEFAULT_BUDGET_NS, KernelWatchdog
from repro.net import SimClock

MIB = 1024 * 1024


def sanitized(capacity=4 * MIB, **cfg) -> DeviceAllocator:
    return DeviceAllocator(capacity, sanitizer=SanitizerConfig(**cfg))


class TestSanitizerConfig:
    def test_redzone_must_be_aligned_multiple(self):
        with pytest.raises(ValueError):
            SanitizerConfig(redzone_bytes=100)
        with pytest.raises(ValueError):
            SanitizerConfig(redzone_bytes=0)

    def test_quarantine_bounds_validated(self):
        with pytest.raises(ValueError):
            SanitizerConfig(quarantine_max_bytes=-1)


class TestRedzones:
    def test_user_pointer_stays_aligned(self):
        alloc = sanitized()
        ptr = alloc.alloc(100)
        assert ptr % ALIGNMENT == 0

    def test_oob_write_past_end_is_typed_and_sticky(self):
        alloc = sanitized()
        ptr = alloc.alloc(1000)
        with pytest.raises(OutOfBoundsError) as exc:
            alloc.write(ptr, b"x" * 1001)
        assert exc.value.kind == "oob-write"
        assert exc.value.sticky
        assert code_for_exception(exc.value) == C.cudaErrorIllegalAddress

    def test_oob_caught_inside_alignment_slack(self):
        # 100 bytes aligns up to 256: a write at +100 stays inside the
        # aligned span but is out of bounds for the allocation
        alloc = sanitized()
        ptr = alloc.alloc(100)
        with pytest.raises(OutOfBoundsError):
            alloc.write(ptr + 100, b"x")

    def test_oob_read_is_typed(self):
        alloc = sanitized()
        ptr = alloc.alloc(64)
        with pytest.raises(OutOfBoundsError) as exc:
            alloc.read(ptr, 65)
        assert exc.value.kind == "oob-read"

    def test_in_bounds_access_untouched(self):
        alloc = sanitized()
        ptr = alloc.alloc(512)
        alloc.write(ptr, b"a" * 512)
        assert alloc.read(ptr, 512) == b"a" * 512

    def test_wild_write_corrupts_canaries_and_sweep_detects(self):
        alloc = sanitized()
        ptr = alloc.alloc(256)
        hit = alloc.wild_write(ptr + 256, b"\xff" * 16)
        assert hit == 16
        with pytest.raises(RedzoneCorruptionError) as exc:
            alloc.verify_canaries()
        assert exc.value.sticky

    def test_corruption_detected_at_free(self):
        alloc = sanitized()
        ptr = alloc.alloc(256)
        alloc.wild_write(ptr - 8, b"\xff" * 8)  # front redzone
        with pytest.raises(RedzoneCorruptionError):
            alloc.free(ptr)
        # the free itself completed: allocator stays consistent
        assert not alloc.is_live(ptr)

    def test_clean_sweep_counts_allocations(self):
        alloc = sanitized()
        alloc.alloc(64)
        alloc.alloc(64)
        assert alloc.verify_canaries() == 2


class TestQuarantine:
    def test_use_after_free_write_detected(self):
        alloc = sanitized()
        ptr = alloc.alloc(128)
        alloc.free(ptr)
        with pytest.raises(UseAfterFreeError) as exc:
            alloc.write(ptr, b"x")
        assert exc.value.sticky

    def test_use_after_free_read_detected(self):
        alloc = sanitized()
        ptr = alloc.alloc(128)
        alloc.free(ptr)
        with pytest.raises(UseAfterFreeError):
            alloc.read(ptr, 16)

    def test_double_free_typed_and_not_sticky(self):
        alloc = sanitized()
        ptr = alloc.alloc(128)
        alloc.free(ptr)
        with pytest.raises(QuarantineDoubleFreeError) as exc:
            alloc.free(ptr)
        assert not exc.value.sticky
        # stays a DoubleFreeError for legacy callers
        assert isinstance(exc.value, DoubleFreeError)
        assert code_for_exception(exc.value) == C.cudaErrorInvalidDevicePointer

    def test_freed_contents_are_poisoned(self):
        alloc = sanitized()
        ptr = alloc.alloc(64)
        view = alloc.view(ptr, 64)
        view[:] = 7
        alloc.free(ptr)
        assert (view == POISON).all()

    def test_quarantined_address_not_reused_immediately(self):
        alloc = sanitized()
        first = alloc.alloc(256)
        alloc.free(first)
        second = alloc.alloc(256)
        assert second != first

    def test_eviction_honours_entry_bound(self):
        alloc = sanitized(quarantine_max_entries=2)
        ptrs = [alloc.alloc(64) for _ in range(4)]
        for ptr in ptrs:
            alloc.free(ptr)
        assert len(alloc.sanitizer.quarantine_entries()) == 2
        # evicted spans are usable again; detection is kept for the rest
        with pytest.raises(UseAfterFreeError):
            alloc.read(ptrs[-1], 8)

    def test_quarantine_flushed_before_oom(self):
        alloc = sanitized(capacity=1 * MIB)
        big = 1 * MIB - 2 * 256  # one allocation spans the device
        ptr = alloc.alloc(big)
        alloc.free(ptr)
        # the whole capacity sits in quarantine; a new allocation must
        # flush it rather than report OOM
        again = alloc.alloc(big)
        assert alloc.is_live(again)

    def test_true_oom_still_raises(self):
        alloc = sanitized(capacity=1 * MIB)
        alloc.alloc(MIB // 2)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc(MIB)


class TestZeroByteEdgeCases:
    def test_malloc_zero_returns_distinct_valid_pointers(self):
        alloc = sanitized()
        a = alloc.alloc(0)
        b = alloc.alloc(0)
        assert a != 0 and b != 0 and a != b
        alloc.free(a)
        alloc.free(b)

    def test_zero_length_ops_validate_base_pointer(self):
        alloc = sanitized()
        ptr = alloc.alloc(0)
        # no-ops on a valid pointer
        alloc.write(ptr, b"")
        assert alloc.read(ptr, 0) == b""
        alloc.memset(ptr, 0, 0)
        # still validated on a bogus pointer
        with pytest.raises(InvalidDevicePointerError):
            alloc.read(0xDEAD000, 0)

    def test_runtime_zero_byte_paths(self):
        rt = CudaRuntime(
            [GpuDevice(A100, mem_bytes=4 * MIB, sanitizer=SanitizerConfig())],
            SimClock(),
        )
        err, a = rt.cudaMalloc(0)
        assert err == C.cudaSuccess and a != 0
        err, b = rt.cudaMalloc(0)
        assert err == C.cudaSuccess and b != 0 and b != a
        assert rt.cudaMemcpy(a, b"", 0, C.cudaMemcpyHostToDevice)[0] == C.cudaSuccess
        assert rt.cudaMemcpy(0, a, 0, C.cudaMemcpyDeviceToHost) == (C.cudaSuccess, b"")
        assert rt.cudaMemset(a, 0, 0) == C.cudaSuccess
        # zero length does not exempt a wild base pointer
        err, _ = rt.cudaMemcpy(0, 0xDEAD000, 0, C.cudaMemcpyDeviceToHost)
        assert err == C.cudaErrorInvalidDevicePointer
        assert rt.cudaFree(a) == C.cudaSuccess
        assert rt.cudaFree(b) == C.cudaSuccess


class TestAttribution:
    def test_annotate_and_site_of(self):
        alloc = sanitized()
        ptr = alloc.alloc(64)
        alloc.annotate(ptr, owner="tenant-a", site="cudaMalloc#7")
        assert alloc.site_of(ptr) == ("tenant-a", "cudaMalloc#7")

    def test_violations_carry_owner_and_site(self):
        alloc = sanitized()
        ptr = alloc.alloc(64)
        alloc.annotate(ptr, owner="tenant-a", site="cudaMalloc#7")
        alloc.free(ptr)
        with pytest.raises(UseAfterFreeError) as exc:
            alloc.write(ptr, b"x")
        assert exc.value.owner == "tenant-a"
        assert exc.value.site == "cudaMalloc#7"

    def test_live_report_lists_owners(self):
        alloc = sanitized()
        ptr = alloc.alloc(64)
        alloc.annotate(ptr, owner="t", site="s")
        assert alloc.live_report() == [(ptr, 64, "t", "s")]


class TestInvariantsAndAllocAt:
    def test_check_invariants_with_quarantine(self):
        alloc = sanitized()
        keep = alloc.alloc(300)
        alloc.free(alloc.alloc(512))
        alloc.alloc(0)
        alloc.check_invariants()
        alloc.free(keep)
        alloc.check_invariants()

    def test_debug_env_flag_runs_invariants(self, monkeypatch):
        monkeypatch.setenv(DEBUG_ALLOCATOR_ENV, "1")
        alloc = sanitized()
        assert alloc._debug_invariants
        ptr = alloc.alloc(128)  # would raise if bookkeeping were broken
        alloc.free(ptr)

    def test_alloc_at_reproduces_layout(self):
        alloc = sanitized()
        a = alloc.alloc(300)
        b = alloc.alloc(512)
        alloc.free(a)
        rebuilt = sanitized()
        assert rebuilt.alloc_at(b, 512) == b
        rebuilt.check_invariants()
        # sanitization is fully armed at the pinned address
        with pytest.raises(OutOfBoundsError):
            rebuilt.write(b, b"x" * 513)

    def test_alloc_at_rejects_occupied_footprint(self):
        alloc = sanitized()
        a = alloc.alloc(256)
        with pytest.raises(GpuError):
            alloc.alloc_at(a, 256)


class TestWatchdog:
    def test_budget_verdict_flagged_on_launch(self):
        device = GpuDevice(
            A100, mem_bytes=4 * MIB, watchdog=KernelWatchdog(budget_ns=1)
        )
        device.launch("vectorAdd", (1, 1, 1), (64, 1, 1), self._va_params(device))
        (stream,) = device.streams.hung_streams()
        assert stream.hang == "budget"
        assert device.watchdog.hangs_flagged == 1

    def test_fast_kernel_stays_under_budget(self):
        device = GpuDevice(A100, mem_bytes=4 * MIB, watchdog=KernelWatchdog())
        device.launch("vectorAdd", (1, 1, 1), (64, 1, 1), self._va_params(device))
        assert not device.streams.hung_streams()

    def test_inject_hang_requires_watchdog(self):
        device = GpuDevice(A100, mem_bytes=4 * MIB)
        with pytest.raises(GpuError):
            device.inject_hang()

    def test_inject_hang_rejects_unknown_kind(self):
        device = GpuDevice(A100, mem_bytes=4 * MIB, watchdog=KernelWatchdog())
        with pytest.raises(ValueError):
            device.inject_hang(kind="mystery")

    def test_sync_reports_timeout_without_advancing_clock(self):
        clock = SimClock()
        device = GpuDevice(A100, mem_bytes=4 * MIB, watchdog=KernelWatchdog())
        rt = CudaRuntime([device], clock)
        device.inject_hang(kind="spin")
        before = clock.now_ns
        assert rt.cudaDeviceSynchronize() == C.cudaErrorLaunchTimeout
        assert clock.now_ns == before
        assert rt.cudaGetLastError() == C.cudaErrorLaunchTimeout

    def test_memcpy_times_out_on_hung_default_stream(self):
        device = GpuDevice(A100, mem_bytes=4 * MIB, watchdog=KernelWatchdog())
        rt = CudaRuntime([device], SimClock())
        _, ptr = rt.cudaMalloc(64)
        device.inject_hang(kind="fused")
        err, _ = rt.cudaMemcpy(ptr, b"x" * 64, 64, C.cudaMemcpyHostToDevice)
        assert err == C.cudaErrorLaunchTimeout

    def test_stream_synchronize_times_out(self):
        device = GpuDevice(A100, mem_bytes=4 * MIB, watchdog=KernelWatchdog())
        rt = CudaRuntime([device], SimClock())
        _, handle = rt.cudaStreamCreate()
        device.inject_hang(stream=handle, kind="spin")
        assert rt.cudaStreamSynchronize(handle) == C.cudaErrorLaunchTimeout

    def test_kernel_hang_error_maps_to_launch_timeout(self):
        assert (
            code_for_exception(KernelHangError("stuck", stream=1))
            == C.cudaErrorLaunchTimeout
        )

    def test_default_budget_is_10ms(self):
        assert KernelWatchdog().budget_ns == DEFAULT_BUDGET_NS

    @staticmethod
    def _va_params(device):
        a = device.alloc(256)
        b = device.alloc(256)
        c = device.alloc(256)
        return (a, b, c, 64)


class TestDeviceSanitizerIntegration:
    def device(self):
        return GpuDevice(A100, mem_bytes=4 * MIB, sanitizer=SanitizerConfig())

    def test_sticky_violation_poisons_context(self):
        device = self.device()
        ptr = device.alloc(64)
        device.allocator.annotate(ptr, owner="t0", site="s0")
        with pytest.raises(OutOfBoundsError):
            device.memcpy_h2d(ptr, b"x" * 65)
        assert not device.healthy
        assert device.fault.origin == "sanitizer"
        assert device.fault.culprit == "t0"
        assert device.fault.code == C.cudaErrorIllegalAddress

    def test_double_free_does_not_poison(self):
        device = self.device()
        ptr = device.alloc(64)
        device.free(ptr)
        with pytest.raises(QuarantineDoubleFreeError):
            device.free(ptr)
        assert device.healthy

    def test_reset_rearms_sanitizer(self):
        device = self.device()
        ptr = device.alloc(64)
        with pytest.raises(OutOfBoundsError):
            device.memcpy_h2d(ptr, b"x" * 65)
        device.reset()
        assert device.healthy
        ptr = device.alloc(64)
        with pytest.raises(OutOfBoundsError):
            device.memcpy_h2d(ptr, b"x" * 65)

    def test_snapshot_verifies_canaries_when_healthy(self):
        device = self.device()
        ptr = device.alloc(256)
        device.allocator.wild_write(ptr + 256, b"\xff" * 4)
        with pytest.raises(RedzoneCorruptionError):
            device.snapshot()

    def test_snapshot_skips_verification_when_faulted(self):
        # failover's salvage path: the fault is known, memory is rescued
        device = self.device()
        ptr = device.alloc(256)
        device.memcpy_h2d(ptr, b"a" * 256)
        device.allocator.wild_write(ptr + 256, b"\xff" * 4)
        device.inject_fault("context")
        blob = device.snapshot()
        assert blob

    def test_restore_keeps_sanitization_and_attribution(self):
        device = self.device()
        keep = device.alloc(300)
        gone = device.alloc(512)
        device.memcpy_h2d(keep, b"k" * 300)
        device.allocator.annotate(keep, owner="t0", site="cudaMalloc#1")
        device.free(gone)  # fragments the layout (quarantine holds the span)
        blob = device.snapshot()

        target = self.device()
        target.restore(blob)
        assert target.allocator.sanitizer is not None
        assert target.memcpy_d2h(keep, 300)[0] == b"k" * 300
        assert target.allocator.site_of(keep) == ("t0", "cudaMalloc#1")
        with pytest.raises(OutOfBoundsError):
            target.memcpy_h2d(keep, b"x" * 301)

    def test_unsanitized_checkpoint_restores_onto_sanitized_device(self):
        plain = GpuDevice(A100, mem_bytes=4 * MIB)
        a = plain.alloc(256)
        b = plain.alloc(256)  # adjacent: no redzone gaps to carve
        plain.memcpy_h2d(a, b"a" * 256)
        plain.memcpy_h2d(b, b"b" * 256)
        target = self.device()
        target.restore(plain.snapshot())
        # contents and addresses survive; sanitization is off until reset
        assert target.memcpy_d2h(a, 256)[0] == b"a" * 256
        assert target.memcpy_d2h(b, 256)[0] == b"b" * 256


class TestRecoveryLadder:
    def make_server(self, devices=2, **kw):
        from repro.cricket.server import CricketServer

        return CricketServer(
            [GpuDevice(A100, mem_bytes=16 * MIB) for _ in range(devices)],
            clock=SimClock(),
            sanitizer=True,
            watchdog=True,
            **kw,
        )

    def loopback(self, server):
        from repro.cricket.client import CricketClient

        return CricketClient.loopback(server)

    def test_rung1_cooperative_cancel(self):
        server = self.make_server()
        client = self.loopback(server)
        server.devices[0].inject_hang(kind="spin")
        client.malloc(64)  # next dispatch heals before executing
        stats = server.server_stats
        assert stats.watchdog_hangs == 1
        assert stats.ladder_cooperative_cancels == 1
        assert not server.devices[0].streams.hung_streams()

    def test_rung2_stream_abort(self):
        server = self.make_server()
        client = self.loopback(server)
        handle = client.stream_create()
        server.devices[0].inject_hang(stream=handle, kind="fused")
        client.malloc(64)
        assert server.server_stats.ladder_stream_aborts == 1
        # the handle survives the abort
        client.stream_synchronize(handle)

    def test_fused_hang_on_default_stream_escalates(self):
        server = self.make_server(devices=1)
        client = self.loopback(server)
        ptr = client.malloc(256)  # the tenant holds state on the device
        client.memcpy_h2d(ptr, b"t" * 256)
        server.devices[0].inject_hang(kind="fused")
        client.ping()
        stats = server.server_stats
        assert stats.watchdog_hangs == 1
        # the default stream has no attributable owner: everyone is a
        # bystander, so the device is salvaged CRAC-style with nobody
        # evicted -- the tenant's memory survives the recovery
        assert stats.ladder_context_resets == 1
        assert stats.sessions_reclaimed == 0
        assert server.devices[0].healthy
        assert client.memcpy_d2h(ptr, 256) == b"t" * 256

    def test_rung3_context_reset_sole_tenant(self):
        server = self.make_server(devices=1)
        client = self.loopback(server)
        ptr = client.malloc(64)
        client.free(ptr)
        with pytest.raises(CudaError):
            client.memcpy_h2d(ptr, b"x" * 16)  # use-after-free: sticky
        client.ping()  # heals: culprit was the only tenant
        assert server.server_stats.ladder_context_resets == 1
        assert server.devices[0].healthy

    def test_rung4_device_failover_protects_bystander(self):
        server = self.make_server(devices=2)
        good, bad = self.loopback(server), self.loopback(server)
        keep = good.malloc(256)
        good.memcpy_h2d(keep, b"g" * 256)
        ptr = bad.malloc(64)
        bad.free(ptr)
        with pytest.raises(CudaError):
            bad.memcpy_h2d(ptr, b"x" * 16)
        # the bystander's next call triggers the heal and succeeds
        assert good.memcpy_d2h(keep, 256) == b"g" * 256
        assert server.server_stats.ladder_device_failovers == 1
        assert all(d.healthy for d in server.devices)

    def test_rung5_session_reclaim_without_spare(self):
        server = self.make_server(devices=1)
        good, bad = self.loopback(server), self.loopback(server)
        keep = good.malloc(256)
        good.memcpy_h2d(keep, b"g" * 256)
        ptr = bad.malloc(64)
        bad.free(ptr)
        with pytest.raises(CudaError):
            bad.memcpy_h2d(ptr, b"x" * 16)
        assert good.memcpy_d2h(keep, 256) == b"g" * 256
        stats = server.server_stats
        assert stats.ladder_session_reclaims == 1
        assert stats.sessions_reclaimed == 1
        assert server.devices[0].healthy

    def test_operator_injected_faults_are_not_auto_healed(self):
        server = self.make_server(devices=2)
        client = self.loopback(server)
        client.malloc(64)
        server.inject_device_fault(0, "ecc")
        with pytest.raises(CudaError):
            client.device_synchronize()
        assert not server.devices[0].healthy  # PR-3 manual semantics kept
        server.failover_device(0)
        assert server.devices[0].healthy


class TestServerSanitizerIntegration:
    def make(self, **kw):
        from repro.cricket.client import CricketClient
        from repro.cricket.server import CricketServer

        server = CricketServer(
            [GpuDevice(A100, mem_bytes=16 * MIB)],
            clock=SimClock(),
            sanitizer=True,
            watchdog=True,
            **kw,
        )
        return server, CricketClient.loopback(server)

    def test_violations_counted_and_attributed(self):
        server, client = self.make()
        ptr = client.malloc(64)
        with pytest.raises(CudaError):
            client.memcpy_h2d(ptr, b"x" * 65)
        assert server.server_stats.sanitizer_oob_writes == 1
        (kind, owner, site, addr) = server.violations[0]
        assert kind == "oob-write"
        assert owner == client.session_identity
        assert site.startswith("cudaMalloc#")
        assert addr == ptr

    def test_periodic_sweep_catches_wild_write(self):
        server, client = self.make(sanitizer_sweep_every=1)
        ptr = client.malloc(256)
        server.devices[0].allocator.wild_write(ptr + 256, b"\xff" * 8)
        client.ping()  # one dispatch is enough at sweep_every=1
        assert server.server_stats.sanitizer_redzone_hits == 1
        # and the ladder healed the poison within the same dispatch
        assert server.devices[0].healthy

    def test_leak_report_on_ledger_release(self):
        server, client = self.make(lease_s=1.0, grace_s=0.5)
        a = client.malloc(512)
        b = client.malloc(256)
        freed = client.malloc(128)
        client.free(freed)
        identity = client.session_identity
        server.clock.advance_s(2.0)  # lease lapses, no heartbeat
        server.reap_sessions()  # orphans the session
        server.clock.advance_s(1.0)  # grace lapses
        server.reap_sessions()  # reclaims the ledger, files the report
        leaks = [r for r in server.leak_reports if r["owner"] == identity]
        assert {r["ptr"] for r in leaks} == {a, b}
        assert all(r["site"].startswith("cudaMalloc#") for r in leaks)
        assert server.server_stats.sanitizer_leaks_reported == 2

    def test_checkpoint_surfaces_corruption_as_typed_error(self):
        server, client = self.make()
        ptr = client.malloc(256)
        server.devices[0].allocator.wild_write(ptr + 256, b"\xff" * 8)
        reply = server.implementation.rpc_checkpoint()
        assert reply["err"] == C.cudaErrorIllegalAddress

    def test_sanitizer_flag_arms_default_device(self):
        from repro.cricket.server import CricketServer

        server = CricketServer(sanitizer=True)
        assert server.devices[0].allocator.sanitizer is not None
        assert server.auto_recover

    def test_unarmed_server_has_no_overhead_paths(self):
        from repro.cricket.server import CricketServer

        server = CricketServer()
        assert server.devices[0].allocator.sanitizer is None
        assert not server.auto_recover


class TestSanitizerChaos:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_detection_and_containment(self, seed):
        from repro.resilience.chaos import SanitizerChaosHarness, SanitizerChaosPlan

        harness = SanitizerChaosHarness(SanitizerChaosPlan(seed=seed))
        result = harness.run()
        assert result.clean, result
        assert all(result.detected.values())
        assert result.healthy_failed_calls == 0
        assert result.lost_allocations == 0
        assert result.devices_healthy
        assert result.ladder_rungs_taken > 0
        assert result.leaks_attributed > 0
        # the ladder healed in place: same server object, no restart
        assert harness.server.server_stats.standby_promotions == 0

    def test_plan_validates_bug_kinds(self):
        from repro.resilience.chaos import SanitizerChaosPlan

        with pytest.raises(ValueError):
            SanitizerChaosPlan(bugs=("segfault",))

    def test_sanitizer_error_str_carries_attribution(self):
        err = SanitizerError("boom", addr=0x100, owner="t", site="s")
        assert "owner=t" in str(err) and "site=s" in str(err)

    def test_wild_write_lands_in_neighbour_payloads_too(self):
        alloc = sanitized()
        a = alloc.alloc(256)
        b = alloc.alloc(256)
        alloc.write(b, b"b" * 256)
        # a wild write straddling a's back redzone into b's payload
        alloc.wild_write(a + 256, b"\xff" * (512 + 64))
        assert (np.frombuffer(alloc.read(b, 64), dtype=np.uint8) == 0xFF).all()
        with pytest.raises(RedzoneCorruptionError):
            alloc.verify_canaries()
