"""Chaos-seed parsing: the one shared helper every soak surface uses."""

import pytest

from repro.resilience import (
    CHAOS_SEED_ENV,
    CHAOS_SEEDS_ENV,
    chaos_seeds,
    parse_chaos_seeds,
)


class TestParseChaosSeeds:
    def test_none_yields_default(self):
        assert parse_chaos_seeds(None) == (0,)
        assert parse_chaos_seeds(None, default=(3, 7)) == (3, 7)

    def test_empty_and_whitespace_yield_default(self):
        assert parse_chaos_seeds("", default=(5,)) == (5,)
        assert parse_chaos_seeds("   \t ", default=(5,)) == (5,)

    def test_whitespace_separated(self):
        assert parse_chaos_seeds("0 1 2 3") == (0, 1, 2, 3)

    def test_comma_separated_and_mixed(self):
        assert parse_chaos_seeds("3,7,12") == (3, 7, 12)
        assert parse_chaos_seeds("0, 1,\t2  3") == (0, 1, 2, 3)

    def test_single_seed(self):
        assert parse_chaos_seeds("42") == (42,)

    def test_base_prefixes_and_negatives(self):
        # int(token, 0): hex/octal/binary prefixes and signs all work.
        assert parse_chaos_seeds("0x10 -1 0b101") == (16, -1, 5)

    def test_malformed_token_raises_naming_it(self):
        with pytest.raises(ValueError, match="'banana'"):
            parse_chaos_seeds("0 banana 2")

    def test_malformed_float_raises(self):
        with pytest.raises(ValueError, match="3.5"):
            parse_chaos_seeds("3.5")

    def test_default_is_normalized_to_ints(self):
        assert parse_chaos_seeds(None, default=["7", "9"]) == (7, 9)


class TestChaosSeeds:
    def test_neither_set_returns_default(self):
        assert chaos_seeds(default=(2,), env={}) == (2,)

    def test_seed_list_env(self):
        env = {CHAOS_SEEDS_ENV: "0 1 2"}
        assert chaos_seeds(default=(9,), env=env) == (0, 1, 2)

    def test_single_seed_env_wins_over_list(self):
        env = {CHAOS_SEED_ENV: "5", CHAOS_SEEDS_ENV: "0 1 2"}
        assert chaos_seeds(default=(9,), env=env) == (5,)

    def test_blank_single_seed_falls_through_to_list(self):
        env = {CHAOS_SEED_ENV: "  ", CHAOS_SEEDS_ENV: "4 6"}
        assert chaos_seeds(default=(9,), env=env) == (4, 6)

    def test_malformed_list_raises(self):
        env = {CHAOS_SEEDS_ENV: "1 oops"}
        with pytest.raises(ValueError, match="'oops'"):
            chaos_seeds(env=env)

    def test_reads_process_environment_by_default(self, monkeypatch):
        monkeypatch.setenv(CHAOS_SEED_ENV, "11")
        assert chaos_seeds(default=(0,)) == (11,)
        monkeypatch.delenv(CHAOS_SEED_ENV)
        monkeypatch.setenv(CHAOS_SEEDS_ENV, "1, 2")
        assert chaos_seeds(default=(0,)) == (1, 2)
