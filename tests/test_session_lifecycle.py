"""Server-side session lifecycle: leases, reclamation, drain, admission.

The scenarios mirror the failure modes the subsystem exists for: a client
that dies mid-allocation loop must leak nothing once its lease and grace
lapse; a client that comes back within grace must find everything where it
left it; a draining server must finish in-flight work but admit nobody
new; and one tenant must not be able to exhaust the device past its quota.
All timing is virtual (SimClock), so the lease arithmetic is exact.
"""

import threading
import time

import pytest

from repro import GpuSession
from repro.cricket import (
    LEASE_FOREVER,
    CricketClient,
    CricketServer,
    SessionManager,
)
from repro.cuda import constants as C
from repro.cuda.errors import CudaError
from repro.oncrpc import RpcServer, RpcTransportError, client_token_auth
from repro.oncrpc import message as msg
from repro.resilience import (
    ChaosHarness,
    ChaosPlan,
    ReconnectingTransport,
    ServerStats,
    null_probe,
)

MB = 1 << 20


def make_server(**kwargs) -> CricketServer:
    return CricketServer(**kwargs)


class TestLeaseLifecycle:
    def test_leases_disabled_by_default(self):
        server = make_server()
        client = CricketClient.loopback(server)
        client.malloc(MB)
        server.clock.advance_s(1e6)  # a virtual week and a half
        assert server.reap_sessions() == 0
        session = server.sessions.lookup(client.session_identity)
        assert session is not None and session.state == "active"
        assert server.device.allocator.used_bytes == MB
        assert client.renew_lease() == LEASE_FOREVER

    def test_every_rpc_renews_the_lease(self):
        server = make_server(lease_s=1.0, grace_s=0.5)
        client = CricketClient.loopback(server)
        ptr = client.malloc(MB)
        for _ in range(10):
            server.clock.advance_s(0.6)  # past 0.6 leases, never a full one
            client.memcpy_h2d(ptr, b"hi")
        session = server.sessions.lookup(client.session_identity)
        assert session.state == "active"
        assert server.device.allocator.used_bytes == MB

    def test_expiry_orphans_then_reclaims(self):
        server = make_server(lease_s=1.0, grace_s=0.5)
        client = CricketClient.loopback(server)
        client.malloc(MB)
        client.stream_create()
        client.event_create()
        client.cublas_create()
        identity = client.session_identity
        assert server.bytes_owned_by(identity) == MB

        server.clock.advance_s(1.5)  # lease gone, grace running
        server.reap_sessions()
        session = server.sessions.lookup(identity)
        assert session.state == "orphaned"
        assert server.device.allocator.used_bytes == MB  # not yet freed

        server.clock.advance_s(1.0)  # grace gone
        freed = server.reap_sessions()
        assert freed == MB
        assert server.sessions.lookup(identity) is None
        assert server.bytes_owned_by(identity) == 0
        assert server.device.allocator.used_bytes == 0
        assert len(server.device.streams.streams()) == 1  # default stream only
        assert server.blas._handles == set()
        stats = server.server_stats
        assert stats.sessions_expired == 1
        assert stats.sessions_reclaimed == 1
        assert stats.bytes_reclaimed == MB

    def test_client_killed_mid_malloc_loop_leaks_nothing(self):
        server = make_server(lease_s=1.0, grace_s=0.5)
        victim = CricketClient.loopback(server)
        survivor = CricketClient.loopback(server)
        survivor_ptr = survivor.malloc(MB)
        for _ in range(5):
            victim.malloc(MB)
        identity = victim.session_identity
        del victim  # crashed unikernel: no frees, no goodbye
        assert server.bytes_owned_by(identity) == 5 * MB

        # Survivor keeps heartbeating while the victim's lease lapses.
        for _ in range(4):
            server.clock.advance_s(0.5)
            survivor.renew_lease()
        server.reap_sessions()
        assert server.bytes_owned_by(identity) == 0
        assert server.device.allocator.used_bytes == MB  # survivor's byte
        assert survivor.memcpy_d2h(survivor_ptr, 4) is not None

    def test_reattach_within_grace_keeps_allocations(self):
        server = make_server(lease_s=1.0, grace_s=5.0)
        client = CricketClient.loopback(server)
        data = b"unikernel state" * 100
        ptr = client.malloc(len(data))
        client.memcpy_h2d(ptr, data)
        identity = client.session_identity

        server.clock.advance_s(2.0)
        server.reap_sessions()
        assert server.sessions.lookup(identity).state == "orphaned"

        server.clock.advance_s(1.0)  # still inside the 5 s grace
        remaining = client.renew_lease()
        assert 0 < remaining <= int(1.0 * 1e9)
        session = server.sessions.lookup(identity)
        assert session.state == "active"
        assert server.server_stats.sessions_reattached == 1
        assert client.memcpy_d2h(ptr, len(data)) == data
        assert server.bytes_owned_by(identity) == len(data)

    def test_post_grace_identity_gets_fresh_session(self):
        server = make_server(lease_s=1.0, grace_s=0.5)
        client = CricketClient.loopback(server)
        client.malloc(MB)
        identity = client.session_identity

        server.clock.advance_s(2.0)
        server.reap_sessions()  # orphan (grace countdown starts now)
        server.clock.advance_s(1.0)
        server.reap_sessions()  # grace lapsed: reclaimed
        assert server.sessions.lookup(identity) is None

        client.renew_lease()  # same token, brand-new session
        session = server.sessions.lookup(identity)
        assert session is not None and session.state == "active"
        assert session.ledger.total_entries == 0
        assert server.server_stats.sessions_opened == 2
        assert server.server_stats.sessions_reattached == 0

    def test_reaper_runs_opportunistically_on_dispatch(self):
        server = make_server(lease_s=1.0, grace_s=0.5)
        victim = CricketClient.loopback(server)
        victim.malloc(MB)
        other = CricketClient.loopback(server)
        server.clock.advance_s(5.0)
        # No explicit reap: another client's ordinary call sweeps the orphan
        # through to orphaned, and a second call (post-grace) reclaims it.
        other.get_device_count()
        server.clock.advance_s(5.0)
        other.get_device_count()
        assert server.device.allocator.used_bytes == 0
        assert server.server_stats.sessions_reclaimed == 1

    def test_device_reset_drops_ledger_entries(self):
        server = make_server(lease_s=1.0, grace_s=0.5)
        client = CricketClient.loopback(server)
        client.malloc(MB)
        client.device_reset()
        session = server.sessions.lookup(client.session_identity)
        assert session.ledger.total_entries == 0
        # Reclaiming the session later must not double-free reset memory.
        server.clock.advance_s(5.0)
        server.reap_sessions()
        server.clock.advance_s(5.0)
        assert server.reap_sessions() == 0


class TestSessionManagerUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            SessionManager(lease_s=0)
        with pytest.raises(ValueError):
            SessionManager(grace_s=-1)
        with pytest.raises(ValueError):
            SessionManager(max_sessions=0)
        with pytest.raises(ValueError):
            SessionManager(memory_quota_bytes=-1)

    def test_mark_disconnected_noop_without_leases(self):
        manager = SessionManager()
        manager.open("token:aa", now_ns=0)
        manager.mark_disconnected(["token:aa"], now_ns=0)
        assert manager.lookup("token:aa").state == "active"

    def test_mark_disconnected_orphans_with_leases(self):
        manager = SessionManager(lease_s=10.0, grace_s=1.0)
        manager.open("token:aa", now_ns=0)
        manager.mark_disconnected(["token:aa"], now_ns=0)
        assert manager.lookup("token:aa").state == "orphaned"
        # grace still lets the client back in
        manager.renew("token:aa", now_ns=int(0.5e9))
        assert manager.lookup("token:aa").state == "active"

    def test_snapshot_restore_rebases_leases(self):
        stats = ServerStats()
        manager = SessionManager(lease_s=1.0, grace_s=1.0, stats=stats)
        session, _ = manager.open("token:aa", now_ns=0)
        session.ledger.allocations[0x1000] = (0, 4096)
        state = manager.snapshot_state()

        fresh = SessionManager(lease_s=1.0, grace_s=1.0)
        late = int(100e9)  # restore long after the original lease expired
        fresh.restore_state(state, now_ns=late)
        restored = fresh.lookup("token:aa")
        assert restored.state == "active"
        assert restored.lease_expires_ns == late + int(1e9)
        assert restored.ledger.allocations == {0x1000: (0, 4096)}


class TestAdmissionControl:
    def test_max_sessions_denial_is_a_cuda_error(self):
        server = make_server(max_sessions=1)
        first = CricketClient.loopback(server)
        first.malloc(MB)
        second = CricketClient.loopback(server)
        with pytest.raises(CudaError) as excinfo:
            second.malloc(MB)
        assert excinfo.value.code == C.cudaErrorDevicesUnavailable
        assert server.server_stats.admission_denied >= 1
        # The incumbent is unaffected.
        first.malloc(MB)

    def test_memory_quota_denial_and_release(self):
        server = make_server(memory_quota_bytes=MB)
        client = CricketClient.loopback(server)
        first = client.malloc(512 * 1024)
        client.malloc(256 * 1024)
        with pytest.raises(CudaError) as excinfo:
            client.malloc(512 * 1024)
        assert excinfo.value.code == C.cudaErrorMemoryAllocation
        assert server.server_stats.quota_denied == 1
        # Freeing restores quota headroom.
        client.free(first)
        client.malloc(512 * 1024)

    def test_quota_is_per_client(self):
        server = make_server(memory_quota_bytes=MB)
        a = CricketClient.loopback(server)
        b = CricketClient.loopback(server)
        a.malloc(MB)
        b.malloc(MB)  # b has its own quota
        with pytest.raises(CudaError):
            a.malloc(1)


class TestGracefulDrain:
    def test_drain_rejects_new_sessions_and_checkpoints(self):
        server = make_server()
        incumbent = CricketClient.loopback(server)
        ptr = incumbent.malloc(MB)
        incumbent.memcpy_h2d(ptr, b"keep me")

        server.shutdown(drain=True)
        assert server.draining
        assert server.server_stats.drains_completed == 1
        # Remaining sessions were snapshotted through the checkpoint path.
        assert server.drain_checkpoint is not None

        newcomer = CricketClient.loopback(server)
        with pytest.raises(CudaError) as excinfo:
            newcomer.malloc(MB)
        assert excinfo.value.code == C.cudaErrorDevicesUnavailable
        # The incumbent finishes its business.
        assert incumbent.memcpy_d2h(ptr, 7) == b"keep me"

    def test_drain_checkpoint_restores_sessions_elsewhere(self):
        server = make_server()
        client = CricketClient.loopback(server)
        data = b"x" * 4096
        ptr = client.malloc(len(data))
        client.memcpy_h2d(ptr, data)
        server.shutdown(drain=True)

        replacement = make_server()
        client.recover(server.drain_checkpoint, server=replacement)
        assert replacement.bytes_owned_by(client.session_identity) == len(data)
        assert client.memcpy_d2h(ptr, len(data)) == data

    def test_drain_completes_inflight_tcp_calls(self):
        server = make_server()
        # Make the next synchronize genuinely slow in wall time so the
        # drain provably overlaps an in-flight call.
        real_sync = server.runtime.cudaDeviceSynchronize

        def slow_sync():
            time.sleep(0.4)
            return real_sync()

        server.runtime.cudaDeviceSynchronize = slow_sync
        host, port = server.serve_tcp("127.0.0.1", 0)
        client = CricketClient.connect_tcp(host, port)
        try:
            client.get_device_count()  # open the session before draining
            outcome = {}

            def call():
                try:
                    client.device_synchronize()
                    outcome["ok"] = True
                except Exception as exc:  # pragma: no cover - failure path
                    outcome["error"] = exc

            worker = threading.Thread(target=call)
            worker.start()
            time.sleep(0.15)  # the slow call is now in flight
            server.shutdown(drain=True, drain_timeout_s=5.0)
            worker.join(timeout=5.0)
            assert outcome == {"ok": True}
            assert server.server_stats.drains_completed == 1
        finally:
            client.close()

    def test_hard_shutdown_closes_connection_threads(self):
        server = make_server()
        host, port = server.serve_tcp("127.0.0.1", 0)
        client = CricketClient.connect_tcp(host, port)
        try:
            client.get_device_count()
            assert any(
                t.name.startswith("rpc-conn-") and t.is_alive()
                for t in threading.enumerate()
            )
            server.shutdown()
            deadline = time.monotonic() + 3.0
            while time.monotonic() < deadline:
                if not any(
                    t.name.startswith("rpc-conn-") and t.is_alive()
                    for t in threading.enumerate()
                ):
                    break
                time.sleep(0.02)
            assert not any(
                t.name.startswith("rpc-conn-") and t.is_alive()
                for t in threading.enumerate()
            )
        finally:
            client.close()


class TestPingAndProbe:
    def test_ping_is_nullproc_and_renews(self):
        server = make_server(lease_s=1.0, grace_s=0.5)
        client = CricketClient.loopback(server)
        client.malloc(MB)
        calls_before = server.calls_served
        for _ in range(5):
            server.clock.advance_s(0.6)
            client.ping()  # NULLPROC heartbeat, no decoding, no payload
        assert server.sessions.lookup(client.session_identity).state == "active"
        # NULL replies are dispatched but carry no procedure result.
        assert server.calls_served > calls_before

    def test_renew_lease_reports_remaining(self):
        server = make_server(lease_s=2.0, grace_s=0.5)
        client = CricketClient.loopback(server)
        remaining = client.renew_lease()
        assert 0 < remaining <= int(2.0 * 1e9)

    def test_null_probe_accepts_live_server(self):
        server = make_server()
        from repro.oncrpc import LoopbackTransport

        probe = null_probe(server.interface.prog_number, server.interface.vers_number)
        transport = ReconnectingTransport(
            lambda: LoopbackTransport(server.dispatch_record),
            probe=probe,
        )
        transport.reconnect(force=True)  # probe runs, must not raise
        assert transport.connected

    def test_null_probe_rejects_dead_server(self):
        class DeadTransport:
            def send_record(self, record):
                raise RpcTransportError("connection reset")

            def recv_record(self):
                raise RpcTransportError("connection reset")

            def close(self):
                pass

        probe = null_probe(0x20000099, 1)
        transport = ReconnectingTransport(
            DeadTransport, probe=probe, connect_now=False
        )
        failures_before = transport.breaker._consecutive_failures
        with pytest.raises(RpcTransportError):
            transport.reconnect()
        assert transport.breaker._consecutive_failures == failures_before + 1
        assert not transport.connected


class TestServerCounters:
    def test_reply_cache_counters(self):
        server = make_server()
        cred = client_token_auth(b"counter-test")
        call = msg.RpcMessage(
            77, msg.CallBody(server.interface.prog_number,
                             server.interface.vers_number, 0, cred=cred, args=b"")
        )
        record = call.encode()
        server.dispatch_record(record)
        server.dispatch_record(record)  # retransmission: served from cache
        assert server.server_stats.reply_cache_hits == 1
        assert server.server_stats.reply_cache_bytes > 0
        assert server.duplicate_hits == 1  # legacy counter still advances

    def test_tracer_summary_includes_server_counters(self):
        session = GpuSession()
        tracer = session.enable_tracing()
        buffer = session.upload(b"traced bytes")
        assert buffer.read() == b"traced bytes"
        snapshot = tracer.counter_snapshot()
        assert snapshot.get("server.sessions_opened", 0) >= 1
        assert "server.sessions_opened" in tracer.summary()


class TestChaos:
    def test_seeded_chaos_run_is_leak_free(self):
        result = ChaosHarness(ChaosPlan(clients=4, rounds=3, kills=2, seed=7)).run()
        assert result.leaked_bytes_before_reap > 0  # the kills did leak...
        assert result.leaked_bytes_after_reap == 0  # ...until the reaper ran
        assert result.clean
        assert len(result.killed) == 2
        assert len(result.survivors) == 2
        assert result.counters["server.sessions_reclaimed"] == 2
        assert result.counters["server.bytes_reclaimed"] == (
            result.leaked_bytes_before_reap
        )

    def test_chaos_is_deterministic(self):
        plan = ChaosPlan(clients=5, rounds=4, kills=3, seed=123)
        first = ChaosHarness(plan).run()
        second = ChaosHarness(plan).run()
        assert first.leaked_bytes_before_reap == second.leaked_bytes_before_reap
        assert first.survivor_bytes == second.survivor_bytes
        assert first.counters == second.counters

    def test_chaos_plan_validation(self):
        with pytest.raises(ValueError):
            ChaosPlan(clients=2, kills=2)


class TestCheckpointCarriesSessions:
    def test_checkpoint_roundtrip_restores_session_table(self):
        server = make_server(lease_s=30.0)
        client = CricketClient.loopback(server)
        data = b"session state" * 64
        ptr = client.malloc(len(data))
        client.memcpy_h2d(ptr, data)
        blob = client.checkpoint()

        replacement = make_server(lease_s=30.0)
        client.recover(blob, server=replacement)
        identity = client.session_identity
        assert replacement.bytes_owned_by(identity) == len(data)
        assert client.memcpy_d2h(ptr, len(data)) == data
        # The restored lease is anchored at the new server's clock, so the
        # session is immediately healthy rather than instantly orphaned.
        session = replacement.sessions.lookup(identity)
        assert session.state == "active"

    def test_pre_session_checkpoints_still_restore(self):
        import pickle

        server = make_server()
        client = CricketClient.loopback(server)
        client.malloc(4096)
        blob = client.checkpoint()
        state = pickle.loads(blob)
        state.pop("sessions")  # a blob from before session tracking
        old_blob = pickle.dumps(state)
        replacement = make_server()
        client.recover(old_blob, server=replacement)
        assert client.get_device_count() >= 1
