"""Deterministic cluster simulation: nemesis, harness, shrinker, traces.

The acceptance path for the whole subsystem lives here: seeded runs
are bit-reproducible (identical history fingerprints), benign seeds
come out clean under the full composed nemesis, an injected
double-execution bug is caught by the checker and shrunk to a minimal
replayable trace, and the trace replays byte-for-byte.
"""

import json
import random

import pytest

from repro.resilience.simulation import (
    BUG_DOUBLE_EXECUTE,
    DOUBLE_EXECUTION,
    HA_PAIR_KINDS,
    SINGLE_KINDS,
    TOPOLOGIES,
    NemesisEvent,
    SimulationPlan,
    events_from_jsonable,
    events_to_jsonable,
    generate_schedule,
    load_trace,
    replay_trace,
    run_simulation,
    save_trace,
    shrink_schedule,
)

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


# -- plan ---------------------------------------------------------------------


class TestSimulationPlan:
    def test_jsonable_round_trip(self):
        plan = SimulationPlan(topology="single", seed=9, clients=3, steps=40)
        clone = SimulationPlan.from_jsonable(
            json.loads(json.dumps(plan.to_jsonable()))
        )
        assert clone == plan

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="topology"):
            SimulationPlan(topology="mesh")

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            SimulationPlan(clients=0)
        with pytest.raises(ValueError):
            SimulationPlan(steps=0)
        with pytest.raises(ValueError):
            SimulationPlan(horizon_s=0.0)


# -- nemesis schedule generation ---------------------------------------------


class TestNemesisSchedule:
    def test_same_seed_same_schedule(self):
        kwargs = dict(topology="ha_pair", events=12, clients=2, horizon_s=12.0)
        first = generate_schedule(random.Random(5), **kwargs)
        second = generate_schedule(random.Random(5), **kwargs)
        assert first == second
        assert len(first) == 12

    def test_schedule_sorted_and_inside_horizon(self):
        schedule = generate_schedule(
            random.Random(1), topology="single", events=20, clients=2,
            horizon_s=10.0,
        )
        times = [event.at_s for event in schedule]
        assert times == sorted(times)
        assert all(0.0 < t < 10.0 for t in times)

    def test_kinds_match_topology_and_never_the_bug(self):
        for topology, kinds in (("ha_pair", HA_PAIR_KINDS), ("single", SINGLE_KINDS)):
            schedule = generate_schedule(
                random.Random(2), topology=topology, events=40, clients=2,
                horizon_s=12.0,
            )
            assert {event.kind for event in schedule} <= set(kinds)
            assert BUG_DOUBLE_EXECUTE not in {event.kind for event in schedule}

    def test_events_jsonable_round_trip(self):
        schedule = generate_schedule(
            random.Random(3), topology="ha_pair", events=8, clients=2,
            horizon_s=12.0,
        )
        clone = events_from_jsonable(
            json.loads(json.dumps(events_to_jsonable(schedule)))
        )
        assert clone == schedule


# -- the harness: reproducibility and clean seeds -----------------------------


class TestDeterminism:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_bit_reproducible(self, topology):
        plan = SimulationPlan(topology=topology, seed=1)
        first = run_simulation(plan)
        second = run_simulation(plan)
        assert first.fingerprint == second.fingerprint
        assert first.violation_kinds() == second.violation_kinds()
        assert first.outcomes == second.outcomes
        assert first.applied == second.applied

    def test_different_seeds_diverge(self):
        plan_a = SimulationPlan(topology="ha_pair", seed=0)
        plan_b = SimulationPlan(topology="ha_pair", seed=1)
        assert run_simulation(plan_a).fingerprint != run_simulation(plan_b).fingerprint

    def test_explicit_schedule_overrides_generation(self):
        plan = SimulationPlan(topology="single", seed=4, steps=24, horizon_s=6.0)
        quiet = run_simulation(plan, schedule=[])
        assert quiet.clean, quiet.violations
        assert quiet.applied == []
        assert quiet.fingerprint == run_simulation(plan, schedule=[]).fingerprint


class TestCleanSeeds:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_composed_nemesis_run_is_clean(self, topology, seed):
        result = run_simulation(SimulationPlan(topology=topology, seed=seed))
        assert result.clean, result.violations
        assert result.converged
        assert result.applied, "nemesis applied no events"
        assert result.outcomes.get("ok", 0) > 0

    def test_workload_outcomes_are_typed(self):
        result = run_simulation(SimulationPlan(topology="ha_pair", seed=7))
        unknown = set(result.outcomes) - {
            "ok", "busy", "not_leader", "expired", "cancelled",
            "cuda_error", "ambiguous",
        }
        assert not unknown, unknown


# -- the acceptance path: catch, shrink, replay -------------------------------


def _buggy_schedule(plan):
    """The issue's acceptance scenario: a real nemesis schedule plus the
    intentional double-execution bug, armed before the nemesis's first
    move (generated events start at 5% of the horizon) so the leader is
    guaranteed alive to execute it."""
    rng = random.Random(plan.seed)
    schedule = generate_schedule(
        rng, topology=plan.topology, events=5, clients=plan.clients,
        horizon_s=plan.horizon_s,
    )
    schedule.append(NemesisEvent(
        at_s=plan.horizon_s * 0.02, kind=BUG_DOUBLE_EXECUTE,
        params={"count": 2},
    ))
    return sorted(schedule, key=lambda event: event.at_s)


class TestShrinker:
    def test_bug_caught_shrunk_and_replayable(self, tmp_path):
        plan = SimulationPlan(topology="ha_pair", seed=3)
        schedule = _buggy_schedule(plan)
        full = run_simulation(plan, schedule=schedule)
        assert DOUBLE_EXECUTION in full.violation_kinds()

        runs = []
        minimal, result = shrink_schedule(
            plan, schedule, kinds=[DOUBLE_EXECUTION],
            on_progress=lambda run, size: runs.append((run, size)),
        )
        assert len(minimal) <= 10  # the issue's acceptance bound
        assert [event.kind for event in minimal] == [BUG_DOUBLE_EXECUTE]
        assert DOUBLE_EXECUTION in result.violation_kinds()
        assert runs, "on_progress never fired"

        trace = tmp_path / "repro.json"
        save_trace(str(trace), plan, minimal, result)
        loaded_plan, loaded_schedule, data = load_trace(str(trace))
        assert loaded_plan == plan
        assert loaded_schedule == minimal
        assert data["fingerprint"] == result.fingerprint
        replayed = replay_trace(str(trace))
        assert replayed.fingerprint == result.fingerprint

    def test_shrink_refuses_a_passing_schedule(self):
        plan = SimulationPlan(
            topology="single", seed=0, steps=24, horizon_s=6.0
        )
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_schedule(plan, [])

    def test_kind_filter_ignores_other_violations(self):
        # The armed bug cascades into byte/readback anomalies, but it can
        # never regress an epoch -- filtering on that kind must refuse.
        plan = SimulationPlan(topology="ha_pair", seed=3)
        schedule = _buggy_schedule(plan)
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_schedule(plan, schedule, kinds=["epoch-regression"])

    def test_replay_detects_divergence(self, tmp_path):
        plan = SimulationPlan(topology="ha_pair", seed=3)
        minimal, result = shrink_schedule(
            plan, _buggy_schedule(plan), kinds=[DOUBLE_EXECUTION],
        )
        trace = tmp_path / "repro.json"
        save_trace(str(trace), plan, minimal, result)
        data = json.loads(trace.read_text())
        data["fingerprint"] = "0" * 64
        trace.write_text(json.dumps(data))
        with pytest.raises(AssertionError, match="fingerprint"):
            replay_trace(str(trace))

    def test_trace_rejects_unknown_version(self, tmp_path):
        trace = tmp_path / "repro.json"
        trace.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_trace(str(trace))


# -- the nightly matrix, opt-in via `-m soak` ---------------------------------


@pytest.mark.soak
class TestNemesisSoak:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("seed", range(12))
    def test_seed_matrix_clean_and_reproducible(self, topology, seed):
        plan = SimulationPlan(
            topology=topology, seed=seed, steps=80, nemesis_events=8,
            horizon_s=16.0,
        )
        first = run_simulation(plan)
        assert first.clean, (seed, topology, first.violations)
        assert first.fingerprint == run_simulation(plan).fingerprint
