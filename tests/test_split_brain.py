"""Split-brain protection: witness leases, epoch fencing, partition chaos.

Exercises the whole fencing stack: the witness's lease/epoch arbitration,
the server-side leadership fence (shed, renew, self-fence, demote), epoch
stamping on op-log ships and checkpoints, the failover client's epoch
awareness (redirects, stale-endpoint marks), the partition fault model,
and the end-to-end chaos harness across every topology the issue names --
asserting zero double executions, zero lost acknowledged writes, at most
one mutation-accepting server per epoch, and a provably fenced ex-primary.
"""

import pytest

from repro.cricket import CricketClient, CricketServer
from repro.cricket.ckptstore import CheckpointStore, decode_container
from repro.cricket.checkpoint import capture_server_state, restore_server_state
from repro.cricket.replication import (
    ReplicationLink,
    make_ha_pair,
    mutating_proc_numbers,
    promote_with_witness,
)
from repro.cricket.witness import (
    LeadershipFence,
    LeadershipRefused,
    StaleEpochError,
    Witness,
    WitnessUnreachableError,
)
from repro.net.simclock import SimClock
from repro.oncrpc import message as msg
from repro.oncrpc.auth import leader_epoch_auth, leader_epoch_from
from repro.oncrpc.errors import RpcNotLeaderError, RpcTransportError
from repro.resilience import (
    LoopbackEndpoint,
    PartitionChaosHarness,
    PartitionChaosPlan,
    PartitionPlan,
    PartitionState,
    PartitionWindow,
    RetryPolicy,
)
from repro.resilience.chaos import PARTITION_TOPOLOGIES

MB = 1 << 20


def fenced_pair(lease_s=0.25, **kwargs):
    """A fenced HA pair sharing ONE clock (as real deployments share time)."""
    clock = SimClock()
    primary = CricketServer(clock=clock, **kwargs)
    standby = CricketServer(clock=clock, **kwargs)
    link, endpoints = make_ha_pair(primary, standby, lease_s=lease_s)
    return clock, primary, standby, link, endpoints


# -- the witness ----------------------------------------------------------


class TestWitness:
    def test_first_acquire_grants_epoch_one(self):
        witness = Witness(SimClock())
        lease = witness.acquire("a")
        assert lease.epoch == 1 and lease.holder == "a"
        assert witness.leader() == "a"

    def test_incumbent_reacquire_is_renewal_same_epoch(self):
        witness = Witness(SimClock())
        witness.acquire("a")
        lease = witness.acquire("a")
        assert lease.epoch == 1
        assert witness.renewals == 1 and witness.grants == 1

    def test_challenger_refused_while_lease_live(self):
        witness = Witness(SimClock(), lease_s=1.0)
        witness.acquire("a")
        with pytest.raises(LeadershipRefused) as exc_info:
            witness.acquire("b")
        assert exc_info.value.epoch == 1
        assert exc_info.value.holder == "a"
        assert witness.refusals == 1

    def test_challenger_granted_next_epoch_after_expiry(self):
        clock = SimClock()
        witness = Witness(clock, lease_s=0.1)
        witness.acquire("a")
        clock.advance_s(0.2)
        lease = witness.acquire("b")
        assert lease.epoch == 2 and witness.leader() == "b"

    def test_epoch_never_reused(self):
        clock = SimClock()
        witness = Witness(clock, lease_s=0.1)
        epochs = []
        for holder in ("a", "b", "a", "b"):
            clock.advance_s(0.2)
            epochs.append(witness.acquire(holder).epoch)
        assert epochs == sorted(set(epochs))  # strictly increasing

    def test_renew_extends_lease(self):
        clock = SimClock()
        witness = Witness(clock, lease_s=0.1)
        witness.acquire("a")
        clock.advance_s(0.05)
        witness.renew("a", 1)
        clock.advance_s(0.08)  # beyond the original expiry, not the renewed
        assert witness.leader() == "a"

    def test_renew_after_expiry_ok_if_epoch_unchanged(self):
        # a quiet leader is not forced into re-election: nobody else was
        # granted in the gap, so extending epoch 1 is safe
        clock = SimClock()
        witness = Witness(clock, lease_s=0.1)
        witness.acquire("a")
        clock.advance_s(1.0)
        lease = witness.renew("a", 1)
        assert lease.epoch == 1 and witness.leader() == "a"

    def test_renew_refused_once_superseded(self):
        clock = SimClock()
        witness = Witness(clock, lease_s=0.1)
        witness.acquire("a")
        clock.advance_s(0.2)
        witness.acquire("b")  # epoch 2
        with pytest.raises(LeadershipRefused) as exc_info:
            witness.renew("a", 1)
        assert exc_info.value.epoch == 2 and exc_info.value.holder == "b"

    def test_link_filter_models_partition(self):
        witness = Witness(SimClock())
        witness.link_filter = lambda holder: holder != "a"
        with pytest.raises(WitnessUnreachableError):
            witness.acquire("a")
        assert witness.acquire("b").epoch == 1


# -- the leadership fence -------------------------------------------------


class TestLeadershipFence:
    def make_fence(self, lease_s=0.25):
        clock = SimClock()
        server = CricketServer(clock=clock)
        witness = Witness(clock, lease_s=lease_s)
        fence = LeadershipFence(
            server,
            witness,
            name="primary",
            mutating_procs=mutating_proc_numbers(server.interface),
            peer_hint="standby",
        )
        return clock, server, witness, fence

    def mutating_proc(self, server):
        return server.interface.signatures["rpc_cudaMalloc"].number

    def reading_proc(self, server):
        return server.interface.signatures["rpc_cudaGetDeviceCount"].number

    def test_installs_as_server_fencing(self):
        _clock, server, _witness, fence = self.make_fence()
        assert server.fencing is fence

    def test_follower_sheds_mutations_reads_drain(self):
        clock, server, _witness, fence = self.make_fence()
        assert (
            fence.shed_stat(self.mutating_proc(server), clock.now_ns)
            == msg.RPC_NOT_LEADER
        )
        assert fence.shed_stat(self.reading_proc(server), clock.now_ns) is None
        assert server.server_stats.fencing_not_leader_sheds == 1

    def test_leader_serves_and_records_epoch(self):
        clock, server, _witness, fence = self.make_fence()
        fence.lead()
        assert fence.shed_stat(self.mutating_proc(server), clock.now_ns) is None
        assert fence.epochs_served == {1}
        assert server.server_stats.fencing_epoch == 1

    def test_expired_lease_renews_through_witness(self):
        clock, server, witness, fence = self.make_fence(lease_s=0.1)
        fence.lead()
        clock.advance_s(0.2)
        assert fence.shed_stat(self.mutating_proc(server), clock.now_ns) is None
        assert fence.is_leader
        assert witness.renewals == 1
        assert server.server_stats.fencing_leases_renewed == 1

    def test_expired_lease_with_witness_cut_self_fences(self):
        clock, server, witness, fence = self.make_fence(lease_s=0.1)
        fence.lead()
        witness.link_filter = lambda holder: False
        clock.advance_s(0.2)
        assert (
            fence.shed_stat(self.mutating_proc(server), clock.now_ns)
            == msg.RPC_NOT_LEADER
        )
        assert not fence.is_leader
        assert server.server_stats.fencing_self_fences == 1
        assert server.server_stats.fencing_leases_expired == 1

    def test_superseded_renewal_adopts_newer_epoch(self):
        clock, server, witness, fence = self.make_fence(lease_s=0.1)
        fence.lead()
        clock.advance_s(0.2)
        witness.acquire("standby")  # epoch 2 granted away
        stat = fence.shed_stat(self.mutating_proc(server), clock.now_ns)
        assert stat == msg.RPC_NOT_LEADER
        assert fence.epoch == 2 and not fence.is_leader

    def test_observe_higher_epoch_demotes_leader(self):
        _clock, _server, _witness, fence = self.make_fence()
        fence.lead()
        fence.observe_epoch(5, hint="standby")
        assert not fence.is_leader
        assert fence.epoch == 5 and fence.peer_hint == "standby"

    def test_observe_lower_epoch_is_ignored(self):
        _clock, _server, _witness, fence = self.make_fence()
        fence.lead()
        fence.observe_epoch(0)
        assert fence.is_leader and fence.epoch == 1

    def test_unreachable_standby_with_witness_blessing_detaches(self):
        clock, server, witness, fence = self.make_fence()
        fence.lead()

        class FakeLink:
            attached = True

            def reachable(self):
                return False

            def detach(self):
                self.attached = False

        fence.link = FakeLink()
        assert fence.shed_stat(self.mutating_proc(server), clock.now_ns) is None
        assert not fence.link.attached  # witness-blessed solo

    def test_unreachable_standby_and_witness_sheds_busy(self):
        clock, server, witness, fence = self.make_fence()
        fence.lead()
        witness.link_filter = lambda holder: False

        class FakeLink:
            attached = True

            def reachable(self):
                return False

            def detach(self):  # pragma: no cover - must not happen
                raise AssertionError("detached without witness blessing")

        fence.link = FakeLink()
        # the mutation cannot replicate and the witness cannot bless a
        # solo: never acknowledge it
        assert (
            fence.shed_stat(self.mutating_proc(server), clock.now_ns)
            == msg.RPC_BUSY
        )
        assert 1 not in fence.epochs_served or not fence.epochs_served

    def test_fence_pauses_session_reaping_lead_resumes(self):
        _clock, server, _witness, fence = self.make_fence()
        fence.lead()
        assert not server.sessions.reaping_paused
        fence.fence("test")
        assert server.sessions.reaping_paused
        fence.lead()
        assert not server.sessions.reaping_paused

    def test_reply_verf_roundtrip(self):
        _clock, _server, _witness, fence = self.make_fence()
        fence.lead()
        info = leader_epoch_from(fence.reply_verf())
        assert info.epoch == 1 and info.leader and info.hint == "primary"
        fence.fence("demoted")
        info = leader_epoch_from(fence.reply_verf())
        assert not info.leader and info.hint == "standby"

    def test_verf_decode_tolerates_other_flavors(self):
        from repro.oncrpc.auth import NULL_AUTH

        assert leader_epoch_from(NULL_AUTH) is None
        assert leader_epoch_from(leader_epoch_auth(3, True, "x")).epoch == 3


# -- partition fault model ------------------------------------------------


class TestPartitionModel:
    def test_window_blocks_across_groups_only(self):
        window = PartitionWindow(0.0, 1.0, groups=(("a",), ("b", "c")))
        assert window.blocks("a", "b") and window.blocks("b", "a")
        assert not window.blocks("b", "c")
        # unlisted nodes form the rest group: connected to each other,
        # cut from every named group
        assert not window.blocks("x", "y")
        assert window.blocks("x", "a")

    def test_window_oneway_is_directional(self):
        window = PartitionWindow(0.0, 1.0, oneway=(("s", "c"),))
        assert window.blocks("s", "c")
        assert not window.blocks("c", "s")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            PartitionWindow(1.0, 0.5)
        with pytest.raises(ValueError):
            PartitionWindow(0.0, 1.0, groups=(("a",), ("a", "b")))

    def test_state_is_clock_driven(self):
        clock = SimClock()
        plan = PartitionPlan(
            windows=(PartitionWindow(0.1, 0.2, groups=(("a",),)),)
        )
        state = PartitionState(plan, clock)
        assert state.allowed("a", "b")
        clock.advance_s(0.15)
        assert not state.allowed("a", "b")
        clock.advance_s(0.1)  # window closed
        assert state.allowed("a", "b")
        assert state.blocked == 1

    def test_endpoint_gate_blocks_connect_and_request(self):
        clock = SimClock()
        server = CricketServer(clock=clock)
        state = PartitionState(
            PartitionPlan(windows=(PartitionWindow(0.0, 1.0, groups=(("s",),)),)),
            clock,
        )
        endpoint = LoopbackEndpoint(server, name="s", link=state, client_name="c")
        with pytest.raises(RpcTransportError):
            endpoint.connect()
        clock.advance_s(2.0)
        client = CricketClient.failover([endpoint], clock=clock)
        assert client.malloc(4096) > 0

    def test_asymmetric_cut_executes_but_loses_reply(self):
        # the worst case for at-most-once: the call runs, the reply dies.
        # The window opens *after* the connection is up, the directional
        # cut only kills server->client traffic.
        clock = SimClock()
        server = CricketServer(clock=clock)
        state = PartitionState(
            PartitionPlan(
                windows=(PartitionWindow(1.0, 10.0, oneway=(("s", "c"),)),)
            ),
            clock,
        )
        endpoint = LoopbackEndpoint(server, name="s", link=state, client_name="c")
        client = CricketClient.failover([endpoint], clock=clock)
        client.ping()
        clock.advance_s(2.0)  # into the window
        with pytest.raises(RpcTransportError):
            client.malloc(1 * MB)
        assert server.device.allocator.used_bytes == 1 * MB  # executed!


# -- epoch-fenced replication ---------------------------------------------


class TestEpochFencedReplication:
    def test_make_ha_pair_is_fenced_by_default(self):
        _clock, primary, standby, link, _eps = fenced_pair()
        assert primary.fencing.is_leader
        assert not standby.fencing.is_leader
        assert link.witness.leader() == "primary"

    def test_ships_apply_on_fenced_standby(self):
        # the follower's fence must not shed the leader's replicated ops
        _clock, primary, standby, link, _eps = fenced_pair()
        client = CricketClient.loopback(primary)
        ptr = client.malloc(1 * MB)
        client.memcpy_h2d(ptr, b"\x21" * 64)
        assert link.lag == 0
        assert standby.device.allocator.used_bytes == 1 * MB
        assert standby.server_stats.fencing_not_leader_sheds == 0
        assert len(standby._reply_cache) == 2  # at-most-once replicated too

    def test_standby_connect_does_not_promote_while_lease_live(self):
        _clock, primary, standby, _link, endpoints = fenced_pair()
        client = CricketClient.failover(
            [endpoints[1], endpoints[0]],  # standby first: connect hook fires
            retry_policy=RetryPolicy(max_attempts=8),
        )
        ptr = client.malloc(4096)
        assert ptr > 0
        # the connect hook ran but the witness refused: no promotion, the
        # mutation was shed with NOT_LEADER and redirected to the primary
        assert not standby.fencing.is_leader
        assert standby.server_stats.standby_promotions == 0
        assert primary.device.allocator.used_bytes == 4096
        assert client.stats.not_leader_rejections >= 1
        assert client.stats.leader_redirects >= 1

    def test_unfenced_escape_hatch_promotes_on_connect(self):
        primary = CricketServer(clock=SimClock())
        standby = CricketServer(clock=SimClock())
        _link, endpoints = make_ha_pair(primary, standby, unfenced=True)
        endpoints[1].connect()
        assert standby.server_stats.standby_promotions == 1

    def test_stale_epoch_ship_rejected_and_primary_demoted(self):
        _clock, primary, standby, link, _eps = fenced_pair()
        client = CricketClient.loopback(primary)
        client.malloc(4096)
        # the standby learns of a newer leader out-of-band (e.g. a
        # checkpoint from epoch 7); the next ship from epoch 1 is stale
        standby.fencing.observe_epoch(7)
        client.malloc(4096)  # executes, ships, ship refused
        assert standby.server_stats.fencing_stale_epoch_rejections == 1
        assert not link.attached
        assert not primary.fencing.is_leader  # demoted on the spot
        assert primary.fencing.epoch == 7
        with pytest.raises(RpcNotLeaderError):
            client.malloc(4096)  # next mutation is shed

    def test_demoted_primary_cannot_reattach_without_fresh_epoch(self):
        clock = SimClock()
        primary = CricketServer(clock=clock)
        standby = CricketServer(clock=clock)
        witness = Witness(clock)
        mutating = mutating_proc_numbers(primary.interface)
        pf = LeadershipFence(primary, witness, name="p", mutating_procs=mutating)
        sf = LeadershipFence(standby, witness, name="s", mutating_procs=mutating)
        pf.lead()
        sf.observe_epoch(9)
        with pytest.raises(StaleEpochError):
            ReplicationLink(primary, standby)

    def test_full_sync_propagates_epoch_to_standby(self):
        _clock, primary, standby, _link, _eps = fenced_pair()
        # the link's construction full-syncs; the standby adopted epoch 1
        assert standby.fencing.epoch == 1
        assert not standby.fencing.is_leader

    def test_witness_gated_promotion_after_lease_lapse(self):
        clock, primary, standby, link, _eps = fenced_pair(lease_s=0.1)
        fence = link.standby_fence
        promote_with_witness(link, fence)
        assert not fence.is_leader  # refused: primary's lease is live
        clock.advance_s(0.5)
        promote_with_witness(link, fence)
        assert fence.is_leader and fence.epoch == 2
        assert standby.server_stats.standby_promotions == 1
        # idempotent re-promotion
        promote_with_witness(link, fence)
        assert standby.server_stats.standby_promotions == 1


# -- epochs in checkpoints ------------------------------------------------


class TestEpochPersistence:
    def test_capture_and_restore_round_trip_epoch(self):
        _clock, primary, _standby, _link, _eps = fenced_pair()
        state = capture_server_state(primary)
        assert state["leader_epoch"] == 1
        clock2 = SimClock()
        target = CricketServer(clock=clock2)
        witness2 = Witness(clock2)
        LeadershipFence(
            target,
            witness2,
            name="restored",
            mutating_procs=mutating_proc_numbers(target.interface),
        )
        restore_server_state(target, state)
        assert target.fencing.epoch == 1
        assert not target.fencing.is_leader

    def test_leader_restoring_newer_blob_self_fences(self):
        _clock, primary, _standby, _link, _eps = fenced_pair()
        state = capture_server_state(primary)
        state["leader_epoch"] = 11
        restore_server_state(primary, state)
        assert primary.fencing.epoch == 11
        assert not primary.fencing.is_leader

    def test_unfenced_blob_restores_on_fenced_server(self):
        source = CricketServer(clock=SimClock())
        state = capture_server_state(source)
        assert "leader_epoch" not in state
        _clock, primary, _standby, _link, _eps = fenced_pair()
        restore_server_state(primary, state)
        assert primary.fencing.is_leader  # nothing observed, nothing lost

    def test_ckptstore_manifest_carries_epoch(self, tmp_path):
        _clock, primary, _standby, _link, _eps = fenced_pair()
        store = CheckpointStore(str(tmp_path))
        generation = store.save_full(primary)
        blob = (tmp_path / f"ckpt-{generation:08d}.ckpt").read_bytes()
        assert decode_container(blob).manifest["leader_epoch"] == 1

    def test_ckptstore_manifest_epoch_zero_unfenced(self, tmp_path):
        server = CricketServer(clock=SimClock())
        store = CheckpointStore(str(tmp_path))
        generation = store.save_full(server)
        blob = (tmp_path / f"ckpt-{generation:08d}.ckpt").read_bytes()
        assert decode_container(blob).manifest["leader_epoch"] == 0


# -- the failover client under fencing ------------------------------------


class TestClientEpochAwareness:
    def test_client_learns_epoch_from_replies(self):
        clock, _primary, _standby, _link, endpoints = fenced_pair()
        client = CricketClient.failover(endpoints, clock=clock)
        client.malloc(4096)
        assert client.leader_epoch == 1
        assert client.active_endpoint_name == "primary"

    def test_demoted_primary_retransmit_hits_replicated_cache(self):
        # The issue's dangerous window, fenced edition: a client executes
        # a non-idempotent call on epoch 1, the reply is lost and the
        # primary goes dark; the retransmit lands on the epoch-2 standby
        # and must be answered from the replicated reply cache -- exactly
        # once, never re-executed.
        clock, primary, standby, _link, endpoints = fenced_pair(lease_s=0.1)
        client = CricketClient.failover(
            endpoints,
            clock=clock,
            retry_policy=RetryPolicy(max_attempts=16, deadline_s=None),
        )
        client.malloc(1 * MB)
        endpoints[0].kill_after_next_execute()
        client.malloc(2 * MB)  # executed+shipped, reply lost, retransmitted
        assert standby.server_stats.reply_cache_hits >= 1
        assert standby.device.allocator.used_bytes == 3 * MB  # no double exec
        # note: the replay did NOT require an election -- the cache check
        # precedes the fence, so at-most-once holds even on a follower.
        # The next *fresh* mutation forces the epoch-2 promotion.
        client.malloc(4096)
        assert standby.fencing.is_leader and standby.fencing.epoch == 2
        assert standby.device.allocator.used_bytes == 3 * MB + 4096
        assert client.leader_epoch == 2
        assert client.active_endpoint_name == "standby"

    def test_client_refuses_rotation_back_to_stale_primary(self):
        clock, primary, standby, link, endpoints = fenced_pair(lease_s=0.1)
        client = CricketClient.failover(
            endpoints,
            clock=clock,
            retry_policy=RetryPolicy(max_attempts=16, deadline_s=None),
        )
        client.malloc(4096)
        # leadership moves while the primary is still alive
        clock.advance_s(0.5)
        promote_with_witness(link, link.standby_fence)
        ptr = client.malloc(4096)  # NOT_LEADER from primary, redirected
        assert ptr > 0
        assert client.active_endpoint_name == "standby"
        transport = client.stub.client._leader_sink()
        assert 0 in transport._stale  # the old primary is marked stale
        # further mutations stay on the standby even though the primary
        # still answers connects
        client.malloc(4096)
        assert client.active_endpoint_name == "standby"

    def test_not_leader_replies_are_not_cached(self):
        _clock, primary, standby, _link, _eps = fenced_pair()
        probe = CricketClient.loopback(standby)
        for _ in range(2):
            with pytest.raises(RpcNotLeaderError) as exc_info:
                probe.malloc(4096)
        assert exc_info.value.epoch == 1
        assert exc_info.value.leader_hint == "primary"
        assert standby.server_stats.reply_cache_hits == 0
        assert len(standby._reply_cache) == 0

    def test_reads_drain_on_fenced_server(self):
        _clock, _primary, standby, _link, _eps = fenced_pair()
        probe = CricketClient.loopback(standby)
        assert probe.get_device_count() >= 1  # read passes the fence

    def test_fencing_counters_surface_in_tracer(self):
        from repro.core.tracing import Tracer

        clock, primary, standby, _link, _eps = fenced_pair()
        with pytest.raises(RpcNotLeaderError):
            CricketClient.loopback(standby).malloc(4096)
        tracer = Tracer(clock)
        tracer.attach_counters(standby.server_stats)
        snapshot = tracer.counter_snapshot()
        assert snapshot["server.fencing_not_leader_sheds"] == 1
        assert snapshot["server.fencing_epoch"] == 1
        assert "server.fencing_not_leader_sheds" in tracer.summary()


# -- the partition chaos harness ------------------------------------------


class TestPartitionChaosHarness:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            PartitionChaosPlan(topology="nonsense")
        with pytest.raises(ValueError):
            PartitionChaosPlan(partition_round=9, rounds=3)
        with pytest.raises(ValueError):
            PartitionChaosPlan(partition_s=0.1, lease_s=0.2)

    @pytest.mark.parametrize("topology", PARTITION_TOPOLOGIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_split_brain_across_topologies_and_seeds(self, topology, seed):
        result = PartitionChaosHarness(
            PartitionChaosPlan(topology=topology, seed=seed)
        ).run()
        assert result.clean, result
        assert result.double_lease_epochs == []
        assert result.lost_acked_writes == 0
        assert result.bytes_unaccounted == 0
        assert result.stale_primary_executions == 0
        assert result.clients_converged

    def test_primary_isolation_elects_standby(self):
        result = PartitionChaosHarness(
            PartitionChaosPlan(topology="primary_isolated", seed=3)
        ).run()
        assert result.final_leader == "standby" and result.final_epoch == 2
        assert result.primary_epochs_served == [1]
        assert result.standby_epochs_served == [2]
        # the old primary provably self-fenced: post-heal mutations all
        # rejected with NOT_LEADER, none executed
        assert result.stale_primary_rejections == 3
        assert result.stale_primary_executions == 0

    def test_standby_isolation_keeps_primary_solo(self):
        result = PartitionChaosHarness(
            PartitionChaosPlan(topology="standby_isolated", seed=3)
        ).run()
        # witness-blessed solo: the primary detaches the dead standby and
        # keeps serving under its original epoch -- no spurious election
        assert result.final_leader == "primary" and result.final_epoch == 1
        assert result.standby_epochs_served == []

    def test_witness_isolation_fences_primary_at_lease_expiry(self):
        result = PartitionChaosHarness(
            PartitionChaosPlan(topology="witness_isolated", seed=3)
        ).run()
        # the primary cannot renew, self-fences, and the standby wins the
        # next epoch after heal; clients followed the redirects
        assert result.final_leader == "standby" and result.final_epoch == 2
        assert result.not_leader_rejections > 0
        assert result.counters["server.fencing_self_fences"] == 0  # standby's
        assert result.stale_primary_executions == 0

    def test_heal_divergence_sheds_instead_of_diverging(self):
        result = PartitionChaosHarness(
            PartitionChaosPlan(topology="heal_divergence", seed=3)
        ).run()
        # the cut-off primary kept its clients but could neither
        # replicate nor renew: every mutation in the window was refused
        # unexecuted, so heal finds nothing to reconcile
        assert result.final_leader == "standby"
        assert result.double_lease_epochs == []
        assert result.not_leader_rejections > 0
        assert result.links_blocked > 0
