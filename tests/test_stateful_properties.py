"""Stateful property-based tests (hypothesis RuleBasedStateMachine).

These drive the device allocator and the Rust-lifetime buffer layer with
arbitrary interleavings of operations, maintaining a shadow model and
checking the allocator invariants after every step.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.errors import DoubleFreeClientError, UseAfterFreeError
from repro.gpu.errors import OutOfMemoryError
from repro.gpu.memory import DeviceAllocator

MIB = 1 << 20


class AllocatorMachine(RuleBasedStateMachine):
    """Random alloc/free/write/read workload against a shadow model."""

    def __init__(self):
        super().__init__()
        self.allocator = DeviceAllocator(2 * MIB)
        #: ptr -> shadow contents (bytearray)
        self.shadow: dict[int, bytearray] = {}

    ptrs = Bundle("ptrs")

    @rule(target=ptrs, size=st.integers(min_value=1, max_value=64 * 1024))
    def alloc(self, size):
        try:
            ptr = self.allocator.alloc(size)
        except OutOfMemoryError:
            return None
        assert ptr not in self.shadow
        self.shadow[ptr] = bytearray(size)
        return ptr

    @rule(ptr=ptrs)
    def free(self, ptr):
        if ptr is None:
            return
        if ptr in self.shadow:
            self.allocator.free(ptr)
            del self.shadow[ptr]
        else:
            # already freed by an earlier rule invocation on the same ptr
            try:
                self.allocator.free(ptr)
                raise AssertionError("double free not detected")
            except Exception:
                pass

    @rule(ptr=ptrs, data=st.binary(min_size=1, max_size=512),
          offset=st.integers(min_value=0, max_value=1024))
    def write_read(self, ptr, data, offset):
        if ptr is None or ptr not in self.shadow:
            return
        shadow = self.shadow[ptr]
        if offset + len(data) > len(shadow):
            return
        self.allocator.write(ptr + offset, data)
        shadow[offset : offset + len(data)] = data
        assert self.allocator.read(ptr, len(shadow)) == bytes(shadow)

    @rule(ptr=ptrs)
    def read_whole(self, ptr):
        if ptr is None or ptr not in self.shadow:
            return
        shadow = self.shadow[ptr]
        assert self.allocator.read(ptr, len(shadow)) == bytes(shadow)

    @invariant()
    def allocator_invariants_hold(self):
        self.allocator.check_invariants()

    @invariant()
    def usage_matches_shadow(self):
        assert len(self.allocator.live_allocations()) == len(self.shadow)


TestAllocatorStateMachine = AllocatorMachine.TestCase
TestAllocatorStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


class BufferLifetimeMachine(RuleBasedStateMachine):
    """Random lifetime operations on DeviceBuffers must never corrupt state
    nor let a lifetime violation reach the server."""

    def __init__(self):
        super().__init__()
        from repro import GpuSession, SessionConfig

        self.session = GpuSession(SessionConfig(device_mem_bytes=4 * MIB))
        self.live: list = []
        self.dead: list = []

    buffers = Bundle("buffers")

    @rule(target=buffers, size=st.integers(min_value=1, max_value=32 * 1024))
    def alloc(self, size):
        buffer = self.session.alloc(size)
        self.live.append(buffer)
        return buffer

    @rule(buffer=buffers)
    def free(self, buffer):
        if buffer in self.live:
            buffer.free()
            self.live.remove(buffer)
            self.dead.append(buffer)
        else:
            try:
                buffer.free()
                raise AssertionError("double free not detected client-side")
            except DoubleFreeClientError:
                pass

    @rule(buffer=buffers, value=st.integers(min_value=0, max_value=255))
    def touch(self, buffer, value):
        if buffer in self.live:
            buffer.fill(value)
            data = buffer.read()
            assert data == bytes([value]) * buffer.size
        else:
            calls_before = self.session.api_calls
            try:
                buffer.fill(value)
                raise AssertionError("use after free not detected")
            except UseAfterFreeError:
                pass
            # the violation never became an RPC
            assert self.session.api_calls == calls_before

    @invariant()
    def server_state_consistent(self):
        live_on_server = len(self.session.server.device.allocator.live_allocations())
        assert live_on_server == len(self.live)

    def teardown(self):
        self.session.close()


TestBufferLifetimeMachine = BufferLifetimeMachine.TestCase
TestBufferLifetimeMachine.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)


class TestCompressionFuzz:
    """The decompressor must reject arbitrary garbage, never crash."""

    def test_fuzz_decompress_rejects_garbage(self):
        import random

        from repro.cubin.compression import DecompressionError, MAGIC, decompress

        rng = random.Random(99)
        rejected = 0
        for _ in range(300):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            try:
                decompress(blob)
            except DecompressionError:
                rejected += 1
        assert rejected >= 295  # nearly everything must be rejected cleanly

    def test_fuzz_decompress_valid_magic_bad_stream(self):
        import random
        import struct

        from repro.cubin.compression import DecompressionError, MAGIC, decompress

        rng = random.Random(7)
        for _ in range(200):
            body = bytes(rng.randrange(256) for _ in range(rng.randrange(40)))
            blob = struct.pack("<II", MAGIC, rng.randrange(1, 500)) + body
            try:
                result = decompress(blob)
                assert isinstance(result, bytes)  # rare accidental success ok
            except DecompressionError:
                pass


class TestLoaderFuzz:
    def test_fuzz_cubin_loader_never_crashes(self):
        import random

        from repro.cubin.errors import CubinError
        from repro.cubin.loader import load_cubin

        rng = random.Random(5)
        for _ in range(200):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(128)))
            try:
                load_cubin(blob)
            except CubinError:
                pass

    def test_fuzz_rpc_message_decode(self):
        import random

        from repro.oncrpc.errors import RpcProtocolError
        from repro.oncrpc.message import RpcMessage
        from repro.xdr.errors import XdrError

        rng = random.Random(3)
        for _ in range(300):
            blob = bytes(rng.randrange(256) for _ in range(4 * rng.randrange(1, 24)))
            try:
                RpcMessage.decode(blob)
            except (RpcProtocolError, XdrError):
                pass
