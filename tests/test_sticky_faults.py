"""Sticky-fault error mapping across every CUDA runtime entry point.

A poisoned context (injected ECC/context fault, or a sticky sanitizer
violation) must surface the same error from *every* state-touching call --
real CUDA sticky semantics -- until ``cudaDeviceReset`` clears it, while
device management and error peeks stay answerable.
"""

import pytest

from repro.cuda import constants as C
from repro.cuda.runtime import CudaRuntime
from repro.gpu import A100, GpuDevice
from repro.gpu.errors import OutOfBoundsError
from repro.gpu.sanitizer import SanitizerConfig
from repro.net import SimClock

MIB = 1024 * 1024


def make_runtime(sanitizer=False):
    device = GpuDevice(
        A100,
        mem_bytes=16 * MIB,
        sanitizer=SanitizerConfig() if sanitizer else None,
    )
    return CudaRuntime([device], SimClock()), device


def poisoned_runtime(kind="context"):
    """A runtime with resources created *before* the fault lands."""
    rt, device = make_runtime()
    _, ptr = rt.cudaMalloc(256)
    _, stream = rt.cudaStreamCreate()
    _, event = rt.cudaEventCreate()
    rt.cudaEventRecord(event, stream)
    _, event2 = rt.cudaEventCreate()
    rt.cudaEventRecord(event2, stream)
    device.inject_fault(kind)
    return rt, device, ptr, stream, event, event2


FAULT_CODES = {"context": C.cudaErrorIllegalAddress, "ecc": C.cudaErrorECCUncorrectable}


class TestStickyAcrossEntryPoints:
    @pytest.mark.parametrize("kind", ["context", "ecc"])
    def test_every_state_touching_call_reports_the_fault(self, kind):
        rt, device, ptr, stream, event, event2 = poisoned_runtime(kind)
        code = FAULT_CODES[kind]
        calls = [
            lambda: rt.cudaDeviceSynchronize(),
            lambda: rt.cudaMalloc(64)[0],
            lambda: rt.cudaFree(ptr),
            lambda: rt.cudaMemcpy(ptr, b"x" * 64, 64, C.cudaMemcpyHostToDevice)[0],
            lambda: rt.cudaMemcpy(0, ptr, 64, C.cudaMemcpyDeviceToHost)[0],
            lambda: rt.cudaMemcpy(ptr, ptr, 64, C.cudaMemcpyDeviceToDevice)[0],
            lambda: rt.cudaMemset(ptr, 0, 64),
            lambda: rt.cudaMemcpyAsync(
                ptr, b"x" * 64, 64, C.cudaMemcpyHostToDevice, stream
            )[0],
            lambda: rt.cudaStreamCreate()[0],
            lambda: rt.cudaStreamDestroy(stream),
            lambda: rt.cudaStreamSynchronize(stream),
            lambda: rt.cudaStreamWaitEvent(stream, event),
            lambda: rt.cudaEventCreate()[0],
            lambda: rt.cudaEventDestroy(event),
            lambda: rt.cudaEventRecord(event, stream),
            lambda: rt.cudaEventSynchronize(event),
            lambda: rt.cudaEventElapsedTime(event, event2)[0],
            lambda: rt.cudaLaunchKernel(
                "_Z9nopKernelv", (1, 1, 1), (1, 1, 1), ()
            ),
        ]
        for call in calls:
            assert call() == code

    def test_management_and_peek_calls_stay_answerable(self):
        rt, device, *_ = poisoned_runtime("context")
        assert rt.cudaGetDeviceCount() == (C.cudaSuccess, 1)
        assert rt.cudaGetDevice() == (C.cudaSuccess, 0)
        assert rt.cudaGetDeviceProperties(0)[0] == C.cudaSuccess
        assert rt.cudaSetDevice(0) == C.cudaSuccess

    def test_last_error_is_recorded_and_clears_on_read(self):
        rt, *_ = poisoned_runtime("context")
        rt.cudaDeviceSynchronize()
        assert rt.cudaPeekAtLastError() == C.cudaErrorIllegalAddress
        assert rt.cudaGetLastError() == C.cudaErrorIllegalAddress
        assert rt.cudaPeekAtLastError() == C.cudaSuccess

    def test_reset_clears_the_fault_everywhere(self):
        rt, device, *_ = poisoned_runtime("context")
        assert rt.cudaDeviceSynchronize() == C.cudaErrorIllegalAddress
        assert rt.cudaDeviceReset() == C.cudaSuccess
        assert device.healthy
        err, ptr = rt.cudaMalloc(64)
        assert err == C.cudaSuccess
        assert rt.cudaMemset(ptr, 0, 64) == C.cudaSuccess
        assert rt.cudaStreamCreate()[0] == C.cudaSuccess
        assert rt.cudaDeviceSynchronize() == C.cudaSuccess

    def test_sanitizer_violation_is_sticky_across_entry_points(self):
        rt, device = make_runtime(sanitizer=True)
        _, ptr = rt.cudaMalloc(64)
        err, _ = rt.cudaMemcpy(ptr, b"x" * 65, 65, C.cudaMemcpyHostToDevice)
        assert err == C.cudaErrorIllegalAddress
        assert device.fault is not None and device.fault.origin == "sanitizer"
        # the poison is sticky for unrelated calls too
        assert rt.cudaMalloc(64)[0] == C.cudaErrorIllegalAddress
        assert rt.cudaStreamCreate()[0] == C.cudaErrorIllegalAddress
        assert rt.cudaEventCreate()[0] == C.cudaErrorIllegalAddress
        assert rt.cudaDeviceSynchronize() == C.cudaErrorIllegalAddress
        # reset clears it and re-arms detection
        assert rt.cudaDeviceReset() == C.cudaSuccess
        _, ptr = rt.cudaMalloc(64)
        with_device = device.allocator
        assert with_device.sanitizer is not None
        err, _ = rt.cudaMemcpy(ptr, b"x" * 65, 65, C.cudaMemcpyHostToDevice)
        assert err == C.cudaErrorIllegalAddress

    def test_sanitizer_violation_raises_typed_error_at_device_layer(self):
        _, device = make_runtime(sanitizer=True)
        ptr = device.alloc(64)
        with pytest.raises(OutOfBoundsError):
            device.memcpy_h2d(ptr, b"x" * 65)

    def test_fault_faithful_after_failed_entry_points(self):
        # errors recorded via sticky last-error on every path
        rt, device, ptr, stream, event, _ = poisoned_runtime("ecc")
        rt.cudaEventElapsedTime(event, event)
        assert rt.cudaPeekAtLastError() == C.cudaErrorECCUncorrectable
