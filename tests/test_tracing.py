"""Tests for the per-RPC tracer."""

import json

import numpy as np
import pytest

from repro import GpuSession, SessionConfig
from repro.core.tracing import TraceEvent, Tracer
from repro.net import SimClock
from repro.unikernel import rustyhermit

MIB = 1 << 20


@pytest.fixture()
def session():
    config = SessionConfig(platform=rustyhermit(), device_mem_bytes=64 * MIB)
    with GpuSession(config) as s:
        yield s


class TestTracer:
    def test_events_carry_timing(self):
        clock = SimClock()
        tracer = Tracer(clock)
        tracer.record("x", 0, 1000, 4, 8)
        assert tracer.events[0].duration_ns == 1000
        assert tracer.total_ns() == 1000

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(SimClock(), enabled=False)
        tracer.record("x", 0, 1, 0, 0)
        assert tracer.events == []

    def test_by_procedure_sorted_by_total(self):
        tracer = Tracer(SimClock())
        tracer.record("cheap", 0, 10, 0, 0)
        tracer.record("hot", 10, 1000, 0, 0)
        tracer.record("hot", 1000, 2000, 0, 0)
        table = tracer.by_procedure()
        assert list(table) == ["hot", "cheap"]
        assert table["hot"] == (2, 1990)

    def test_percentiles_share_histogram_semantics(self):
        from repro.resilience.health import LatencyHistogram

        tracer = Tracer(SimClock())
        now = 0
        for duration in [2_000] * 95 + [2_000_000] * 5:
            tracer.record("launch", now, now + duration, 0, 0)
            now += duration
        reference = LatencyHistogram()
        for duration in [2_000] * 95 + [2_000_000] * 5:
            reference.record(duration)
        q = tracer.percentiles()["launch"]
        assert q["p50"] == reference.p50
        assert q["p95"] == reference.p95
        assert q["p99"] == reference.p99
        assert q["p50"] < q["p99"]  # the tail is visible, the median not

    def test_summary_has_percentile_columns(self):
        tracer = Tracer(SimClock())
        tracer.record("memcpy", 0, 5_000, 16, 0)
        lines = tracer.summary().splitlines()
        assert "p50 [us]" in lines[0]
        assert "p95 [us]" in lines[0]
        assert "p99 [us]" in lines[0]
        assert lines[1] == "-" * len(lines[0])
        # 5 us falls in the (3.16, 5.62] bucket: upper bound 5623 ns
        assert "5.6" in lines[2]


class TestSessionTracing:
    def test_traces_named_procedures(self, session):
        tracer = session.enable_tracing()
        session.client.get_device_count()
        buffer = session.alloc(1024)
        buffer.write(b"\x00" * 1024)
        names = [e.name for e in tracer.events]
        assert names[0] == "rpc_cudaGetDeviceCount"
        assert "rpc_cudaMalloc" in names
        assert "rpc_cudaMemcpyH2D" in names

    def test_durations_match_virtual_clock(self, session):
        tracer = session.enable_tracing()
        start = session.clock.now_ns
        session.client.get_device_count()
        elapsed = session.clock.now_ns - start
        assert tracer.events[0].duration_ns == elapsed
        assert tracer.events[0].duration_ns > 0

    def test_payload_sizes_recorded(self, session):
        tracer = session.enable_tracing()
        buffer = session.alloc(4 * MIB)
        buffer.write(b"\x00" * (4 * MIB))
        memcpy = next(e for e in tracer.events if e.name == "rpc_cudaMemcpyH2D")
        assert memcpy.args_bytes > 4 * MIB  # payload plus dst pointer

    def test_summary_identifies_hot_procedure(self, session):
        tracer = session.enable_tracing()
        buffer = session.alloc(8 * MIB)
        buffer.write(b"\x00" * (8 * MIB))
        for _ in range(5):
            session.client.get_device_count()
        summary = tracer.summary()
        # the bulk memcpy dominates; it must be the first data row
        first_row = summary.splitlines()[2]
        assert first_row.startswith("rpc_cudaMemcpyH2D")
        assert "TOTAL" in summary

    def test_chrome_trace_export(self, session, tmp_path):
        tracer = session.enable_tracing()
        session.client.get_device_count()
        path = str(tmp_path / "trace.json")
        tracer.save_chrome_trace(path)
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["traceEvents"][0]["name"] == "rpc_cudaGetDeviceCount"
        assert doc["traceEvents"][0]["ph"] == "X"
        assert doc["traceEvents"][0]["dur"] > 0

    def test_trace_total_accounts_for_rpc_time(self, session):
        tracer = session.enable_tracing()
        start = session.clock.now_ns
        for _ in range(10):
            session.client.get_device_count()
        elapsed = session.clock.now_ns - start
        assert tracer.total_ns() == pytest.approx(elapsed, rel=1e-9)
