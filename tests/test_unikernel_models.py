"""Unit tests for platform, netstack, virtio and language models."""

import pytest

from repro.net import SimClock
from repro.unikernel import (
    C_PROFILE,
    EVAL_LINK,
    HERMIT_STACK,
    LINUX_VM_STACK,
    NATIVE_STACK,
    RUST_PROFILE,
    UNIKRAFT_STACK,
    VirtioCosts,
    VirtioFeatures,
    linux_vm,
    native_c,
    native_rust,
    path_for,
    rustyhermit,
    table1_platforms,
    unikraft,
)
from repro.unikernel.platform import PlatformMeter

MIB = 1 << 20


class TestVirtio:
    def test_default_features_all_on(self):
        features = VirtioFeatures()
        assert features.csum and features.guest_csum and features.host_tso4
        assert "CSUM" in features.describe()

    def test_describe_empty(self):
        off = VirtioFeatures(False, False, False, False, False)
        assert off.describe() == "none"

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            VirtioCosts(kick_s=-1)

    def test_hermit_negotiates_paper_features(self):
        """The paper added CSUM, GUEST_CSUM and MRG_RXBUF to RustyHermit."""
        features = HERMIT_STACK.virtio
        assert features.csum and features.guest_csum and features.mrg_rxbuf
        assert not features.host_tso4  # TSO still missing (their outlook)

    def test_unikraft_lacks_checksum_offload(self):
        features = UNIKRAFT_STACK.virtio
        assert not features.csum and not features.guest_csum


class TestNetstackCosts:
    def test_tx_monotonic_in_size(self):
        for stack in (NATIVE_STACK, LINUX_VM_STACK, UNIKRAFT_STACK, HERMIT_STACK):
            small = stack.tx_time_s(100, EVAL_LINK)
            large = stack.tx_time_s(10 * MIB, EVAL_LINK)
            assert large > small

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NATIVE_STACK.tx_time_s(-1, EVAL_LINK)
        with pytest.raises(ValueError):
            NATIVE_STACK.rx_time_s(-1, EVAL_LINK)

    def test_tso_chunking(self):
        assert NATIVE_STACK.tx_chunk_bytes(EVAL_LINK) == 65536
        assert HERMIT_STACK.tx_chunk_bytes(EVAL_LINK) == EVAL_LINK.mtu - 40

    def test_missing_csum_offload_costs_per_byte(self):
        base = UNIKRAFT_STACK
        with_offload = base.with_virtio(
            VirtioFeatures(csum=True, guest_csum=True, host_tso4=False, mrg_rxbuf=True, sg=True)
        )
        n = 32 * MIB
        assert with_offload.tx_time_s(n, EVAL_LINK) < base.tx_time_s(n, EVAL_LINK)

    def test_bulk_threshold_spares_midsize_messages(self):
        """Sub-threshold messages avoid per-segment stall penalties."""
        stack = HERMIT_STACK
        midsize = 6 * MIB  # below the 8 MiB threshold (cuSolver-sized)
        bulk = 64 * MIB
        midsize_rate = midsize / stack.tx_time_s(midsize, EVAL_LINK)
        bulk_rate = bulk / stack.tx_time_s(bulk, EVAL_LINK)
        assert midsize_rate > 3 * bulk_rate

    def test_rx_inefficiency_multiplies(self):
        n = 16 * MIB
        fair = HERMIT_STACK
        assert fair.rx_time_s(n, EVAL_LINK) > NATIVE_STACK.rx_time_s(n, EVAL_LINK)

    def test_effective_tx_rate(self):
        rate = NATIVE_STACK.effective_tx_rate_Bps(EVAL_LINK)
        assert 1e9 < rate < 20e9  # single-core plausible


class TestLanguageProfiles:
    def test_rust_has_no_launch_extra(self):
        assert RUST_PROFILE.launch_extra_s == 0.0
        assert C_PROFILE.launch_extra_s > 0.0

    def test_c_rng_slower(self):
        assert C_PROFILE.rng_rate_Bps < RUST_PROFILE.rng_rate_Bps


class TestPlatforms:
    def test_table1_has_five_rows(self):
        platforms = table1_platforms()
        assert [p.name for p in platforms] == ["C", "Rust", "Linux VM", "Unikraft", "Hermit"]

    def test_virtualized_flags(self):
        assert not native_c().virtualized
        assert not native_rust().virtualized
        assert linux_vm().virtualized
        assert unikraft().virtualized
        assert rustyhermit().virtualized

    def test_offload_ablation_changes_stack(self):
        on = linux_vm(offloads=True)
        off = linux_vm(offloads=False)
        assert on.netstack.virtio.host_tso4
        assert not off.netstack.virtio.host_tso4
        assert not off.netstack.virtio.sg

    def test_with_language(self):
        hermit_c = rustyhermit().with_language(C_PROFILE)
        assert hermit_c.language.name == "C"
        assert hermit_c.netstack is rustyhermit().netstack


class TestRpcPathModel:
    def test_round_trip_is_sum(self):
        path = path_for(native_rust())
        assert path.round_trip_s(100, 50) == pytest.approx(
            path.request_time_s(100) + path.reply_time_s(50)
        )

    def test_native_fastest_small_call(self):
        paths = {p.name: path_for(p) for p in table1_platforms()}
        native = paths["Rust"].round_trip_s(120, 60)
        for name in ("Linux VM", "Unikraft", "Hermit"):
            assert paths[name].round_trip_s(120, 60) > native

    def test_linux_vm_slowest_small_call(self):
        paths = {p.name: path_for(p) for p in table1_platforms()}
        vm = paths["Linux VM"].round_trip_s(120, 60)
        for name in ("Rust", "Unikraft", "Hermit"):
            assert paths[name].round_trip_s(120, 60) < vm


class TestPlatformMeter:
    def test_meter_advances_clock(self):
        clock = SimClock()
        meter = PlatformMeter(path_for(native_rust()), clock)
        meter.on_send(1000)
        t1 = clock.now_ns
        assert t1 > 0
        meter.on_recv(1000)
        assert clock.now_ns > t1
        assert meter.bytes_sent == 1000
        assert meter.bytes_received == 1000

    def test_pending_extra_charged_once(self):
        clock = SimClock()
        meter = PlatformMeter(path_for(native_rust()), clock)
        meter.on_send(100)
        base = clock.now_ns
        meter.add_client_cpu_s(1e-3)
        meter.on_send(100)
        with_extra = clock.now_ns - base
        meter.on_send(100)
        without_extra = clock.now_ns - base - with_extra
        assert with_extra - without_extra == pytest.approx(1e6, rel=0.01)
