"""Unit tests for the XDR decoder, including malformed-input handling."""

import pytest

from repro.xdr import XdrDecoder, XdrEncoder
from repro.xdr.errors import XdrDecodeError


class TestRoundTrips:
    def test_int_roundtrip(self):
        enc = XdrEncoder()
        for v in (0, 1, -1, 2**31 - 1, -(2**31)):
            enc.pack_int(v)
        dec = XdrDecoder(enc.getvalue())
        assert [dec.unpack_int() for _ in range(5)] == [0, 1, -1, 2**31 - 1, -(2**31)]
        assert dec.done()

    def test_uint_roundtrip(self):
        enc = XdrEncoder()
        enc.pack_uint(2**32 - 1)
        assert XdrDecoder(enc.getvalue()).unpack_uint() == 2**32 - 1

    def test_hyper_roundtrip(self):
        enc = XdrEncoder()
        enc.pack_hyper(-(2**63))
        enc.pack_uhyper(2**64 - 1)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_hyper() == -(2**63)
        assert dec.unpack_uhyper() == 2**64 - 1

    def test_double_roundtrip_exact(self):
        enc = XdrEncoder()
        enc.pack_double(3.141592653589793)
        assert XdrDecoder(enc.getvalue()).unpack_double() == 3.141592653589793

    def test_string_roundtrip(self):
        enc = XdrEncoder()
        enc.pack_string("cuDeviceGetCount ü")
        assert XdrDecoder(enc.getvalue()).unpack_string() == "cuDeviceGetCount ü"

    def test_opaque_roundtrip(self):
        payload = bytes(range(251))
        enc = XdrEncoder()
        enc.pack_opaque(payload)
        assert XdrDecoder(enc.getvalue()).unpack_opaque() == payload


class TestMalformedInputs:
    def test_truncated_int(self):
        with pytest.raises(XdrDecodeError):
            XdrDecoder(b"\x00\x00").unpack_int()

    def test_truncated_opaque_body(self):
        # Claims 8 bytes but supplies 2.
        data = (8).to_bytes(4, "big") + b"ab"
        with pytest.raises(XdrDecodeError):
            XdrDecoder(data).unpack_opaque()

    def test_opaque_length_exceeding_buffer_rejected_before_alloc(self):
        data = (2**31).to_bytes(4, "big")
        with pytest.raises(XdrDecodeError):
            XdrDecoder(data).unpack_opaque()

    def test_bool_invalid_value(self):
        with pytest.raises(XdrDecodeError):
            XdrDecoder(b"\x00\x00\x00\x02").unpack_bool()

    def test_nonzero_padding_rejected(self):
        data = (1).to_bytes(4, "big") + b"a\x01\x00\x00"
        with pytest.raises(XdrDecodeError):
            XdrDecoder(data).unpack_opaque()

    def test_nonzero_padding_tolerated_when_lenient(self):
        data = (1).to_bytes(4, "big") + b"a\x01\x00\x00"
        assert XdrDecoder(data, strict_padding=False).unpack_opaque() == b"a"

    def test_string_invalid_utf8(self):
        enc = XdrEncoder()
        enc.pack_opaque(b"\xff\xfe")
        with pytest.raises(XdrDecodeError):
            XdrDecoder(enc.getvalue()).unpack_string()

    def test_assert_done_with_trailing_bytes(self):
        dec = XdrDecoder(b"\x00\x00\x00\x01\x00\x00\x00\x00")
        dec.unpack_int()
        with pytest.raises(XdrDecodeError):
            dec.assert_done()

    def test_array_header_exceeds_max(self):
        with pytest.raises(XdrDecodeError):
            XdrDecoder((100).to_bytes(4, "big")).unpack_array_header(max_size=10)


class TestCursor:
    def test_position_and_remaining(self):
        dec = XdrDecoder(b"\x00" * 12)
        assert dec.position == 0
        assert dec.remaining() == 12
        dec.unpack_int()
        assert dec.position == 4
        assert dec.remaining() == 8
        assert not dec.done()

    def test_fixed_opaque_consumes_padding(self):
        enc = XdrEncoder()
        enc.pack_fixed_opaque(b"xyz", 3)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_fixed_opaque(3) == b"xyz"
        assert dec.done()
