"""Unit tests for the XDR encoder primitives (RFC 4506 wire forms)."""

import pytest

from repro.xdr import XdrEncoder
from repro.xdr.errors import XdrEncodeError


class TestIntegers:
    def test_int_positive(self):
        enc = XdrEncoder()
        enc.pack_int(1)
        assert enc.getvalue() == b"\x00\x00\x00\x01"

    def test_int_negative_twos_complement(self):
        enc = XdrEncoder()
        enc.pack_int(-1)
        assert enc.getvalue() == b"\xff\xff\xff\xff"

    def test_int_bounds(self):
        enc = XdrEncoder()
        enc.pack_int(2**31 - 1)
        enc.pack_int(-(2**31))
        assert enc.getvalue() == b"\x7f\xff\xff\xff\x80\x00\x00\x00"

    def test_int_overflow_rejected(self):
        enc = XdrEncoder()
        with pytest.raises(XdrEncodeError):
            enc.pack_int(2**31)
        with pytest.raises(XdrEncodeError):
            enc.pack_int(-(2**31) - 1)

    def test_int_rejects_non_int(self):
        enc = XdrEncoder()
        with pytest.raises(XdrEncodeError):
            enc.pack_int("5")  # type: ignore[arg-type]
        with pytest.raises(XdrEncodeError):
            enc.pack_int(True)

    def test_uint_bounds(self):
        enc = XdrEncoder()
        enc.pack_uint(0)
        enc.pack_uint(2**32 - 1)
        assert enc.getvalue() == b"\x00\x00\x00\x00\xff\xff\xff\xff"

    def test_uint_rejects_negative(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_uint(-1)

    def test_hyper(self):
        enc = XdrEncoder()
        enc.pack_hyper(-2)
        assert enc.getvalue() == b"\xff" * 7 + b"\xfe"

    def test_uhyper_max(self):
        enc = XdrEncoder()
        enc.pack_uhyper(2**64 - 1)
        assert enc.getvalue() == b"\xff" * 8

    def test_uhyper_overflow_rejected(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_uhyper(2**64)

    def test_hyper_overflow_rejected(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_hyper(2**63)


class TestBoolEnumFloat:
    def test_bool_wire_form(self):
        enc = XdrEncoder()
        enc.pack_bool(True)
        enc.pack_bool(False)
        assert enc.getvalue() == b"\x00\x00\x00\x01\x00\x00\x00\x00"

    def test_enum_is_int(self):
        enc = XdrEncoder()
        enc.pack_enum(7)
        assert enc.getvalue() == b"\x00\x00\x00\x07"

    def test_float_big_endian(self):
        enc = XdrEncoder()
        enc.pack_float(1.0)
        assert enc.getvalue() == b"\x3f\x80\x00\x00"

    def test_double_big_endian(self):
        enc = XdrEncoder()
        enc.pack_double(1.0)
        assert enc.getvalue() == b"\x3f\xf0\x00\x00\x00\x00\x00\x00"

    def test_float_rejects_non_number(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_float("x")  # type: ignore[arg-type]


class TestOpaqueAndString:
    def test_fixed_opaque_padding(self):
        enc = XdrEncoder()
        enc.pack_fixed_opaque(b"abcde", 5)
        assert enc.getvalue() == b"abcde\x00\x00\x00"

    def test_fixed_opaque_wrong_size(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_fixed_opaque(b"abc", 5)

    def test_var_opaque_length_prefix_and_padding(self):
        enc = XdrEncoder()
        enc.pack_opaque(b"ab")
        assert enc.getvalue() == b"\x00\x00\x00\x02ab\x00\x00"

    def test_var_opaque_aligned_no_padding(self):
        enc = XdrEncoder()
        enc.pack_opaque(b"abcd")
        assert enc.getvalue() == b"\x00\x00\x00\x04abcd"

    def test_var_opaque_max_enforced(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_opaque(b"abcdef", max_size=4)

    def test_empty_opaque(self):
        enc = XdrEncoder()
        enc.pack_opaque(b"")
        assert enc.getvalue() == b"\x00\x00\x00\x00"

    def test_string_utf8(self):
        enc = XdrEncoder()
        enc.pack_string("héllo")
        raw = enc.getvalue()
        assert raw[:4] == (6).to_bytes(4, "big")  # é is 2 bytes in UTF-8
        assert len(raw) % 4 == 0

    def test_string_rejects_bytes(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_string(b"raw")  # type: ignore[arg-type]


class TestStructuralHelpers:
    def test_array_header(self):
        enc = XdrEncoder()
        enc.pack_array_header(3)
        assert enc.getvalue() == b"\x00\x00\x00\x03"

    def test_array_header_max_enforced(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_array_header(10, max_size=4)

    def test_array_header_negative(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_array_header(-1)

    def test_append_raw_requires_alignment(self):
        enc = XdrEncoder()
        enc.append_raw(b"\x00" * 8)
        with pytest.raises(XdrEncodeError):
            enc.append_raw(b"\x00" * 3)

    def test_reset(self):
        enc = XdrEncoder()
        enc.pack_int(5)
        enc.reset()
        assert enc.getvalue() == b""
        assert len(enc) == 0
