"""Property-based tests (hypothesis) for XDR codec invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xdr import (
    DOUBLE,
    INT,
    UINT,
    EnumType,
    OptionalType,
    StringType,
    StructField,
    StructType,
    UnionArm,
    UnionType,
    VarArray,
    VarOpaque,
    XdrDecoder,
    XdrEncoder,
)

ints32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
uints32 = st.integers(min_value=0, max_value=2**32 - 1)
ints64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
uints64 = st.integers(min_value=0, max_value=2**64 - 1)


@given(ints32)
def test_int_roundtrip(v):
    assert INT.from_bytes(INT.to_bytes(v)) == v


@given(uints32)
def test_uint_roundtrip(v):
    assert UINT.from_bytes(UINT.to_bytes(v)) == v


@given(ints64)
def test_hyper_roundtrip(v):
    enc = XdrEncoder()
    enc.pack_hyper(v)
    assert XdrDecoder(enc.getvalue()).unpack_hyper() == v


@given(uints64)
def test_uhyper_roundtrip(v):
    enc = XdrEncoder()
    enc.pack_uhyper(v)
    assert XdrDecoder(enc.getvalue()).unpack_uhyper() == v


@given(st.floats(allow_nan=False))
def test_double_roundtrip(v):
    assert DOUBLE.from_bytes(DOUBLE.to_bytes(v)) == v


@given(st.binary(max_size=300))
def test_opaque_roundtrip_and_alignment(data):
    t = VarOpaque()
    wire = t.to_bytes(data)
    assert len(wire) % 4 == 0
    assert t.from_bytes(wire) == data


@given(st.text(max_size=120))
def test_string_roundtrip(s):
    t = StringType()
    assert t.from_bytes(t.to_bytes(s)) == s


@given(st.lists(ints32, max_size=60))
def test_int_array_roundtrip(values):
    t = VarArray(INT)
    assert t.from_bytes(t.to_bytes(values)) == values


@given(st.one_of(st.none(), ints32))
def test_optional_roundtrip(v):
    t = OptionalType(INT)
    assert t.from_bytes(t.to_bytes(v)) == v


struct_t = StructType(
    "sample",
    [
        StructField("id", UINT),
        StructField("name", StringType()),
        StructField("payload", VarOpaque()),
        StructField("tags", VarArray(INT)),
    ],
)

struct_values = st.fixed_dictionaries(
    {
        "id": uints32,
        "name": st.text(max_size=40),
        "payload": st.binary(max_size=80),
        "tags": st.lists(ints32, max_size=12),
    }
)


@given(struct_values)
def test_struct_roundtrip(value):
    assert struct_t.from_bytes(struct_t.to_bytes(value)) == value


union_t = UnionType(
    "result",
    INT,
    [UnionArm(0, VarOpaque()), UnionArm(1, StringType())],
)


@given(
    st.one_of(
        st.tuples(st.just(0), st.binary(max_size=50)),
        st.tuples(st.just(1), st.text(max_size=50)),
    )
)
def test_union_roundtrip(value):
    assert union_t.from_bytes(union_t.to_bytes(value)) == value


enum_t = EnumType("ops", {"A": 0, "B": 5, "C": -3})


@given(st.sampled_from([0, 5, -3]))
def test_enum_roundtrip(v):
    assert enum_t.from_bytes(enum_t.to_bytes(v)) == v


@given(st.lists(st.one_of(ints32.map(INT.to_bytes), st.binary(max_size=40).map(VarOpaque().to_bytes))))
@settings(max_examples=50)
def test_concatenated_encodings_stay_aligned(encoded_items):
    """Concatenating any XDR items always yields a 4-byte-aligned stream."""
    blob = b"".join(encoded_items)
    assert len(blob) % 4 == 0
