"""Unit tests for declarative XDR type descriptors."""

import pytest

from repro.xdr import (
    BOOL,
    DOUBLE,
    HYPER,
    INT,
    UINT,
    VOID,
    EnumType,
    FixedArray,
    FixedOpaque,
    OptionalType,
    StringType,
    StructField,
    StructType,
    UnionArm,
    UnionType,
    VarArray,
    VarOpaque,
)
from repro.xdr.errors import XdrDecodeError, XdrEncodeError
from repro.xdr.types import TransparentType


class TestPrimitives:
    def test_int_to_from_bytes(self):
        assert INT.from_bytes(INT.to_bytes(-42)) == -42

    def test_void_is_empty(self):
        assert VOID.to_bytes(None) == b""
        assert VOID.from_bytes(b"") is None

    def test_void_rejects_value(self):
        with pytest.raises(XdrEncodeError):
            VOID.to_bytes(1)

    def test_from_bytes_exact_rejects_trailing(self):
        with pytest.raises(XdrDecodeError):
            INT.from_bytes(b"\x00\x00\x00\x01\x00")

    def test_from_bytes_lenient(self):
        assert INT.from_bytes(b"\x00\x00\x00\x01\x00\x00\x00\x00", exact=False) == 1


class TestContainers:
    def test_string_type_bound(self):
        st = StringType(max_size=4)
        assert st.from_bytes(st.to_bytes("abcd")) == "abcd"
        with pytest.raises(XdrEncodeError):
            st.to_bytes("abcde")

    def test_var_opaque(self):
        vo = VarOpaque()
        assert vo.from_bytes(vo.to_bytes(b"\x00\x01\x02")) == b"\x00\x01\x02"

    def test_fixed_opaque(self):
        fo = FixedOpaque(6)
        assert fo.from_bytes(fo.to_bytes(b"abcdef")) == b"abcdef"

    def test_fixed_array(self):
        fa = FixedArray(INT, 3)
        assert fa.from_bytes(fa.to_bytes([1, 2, 3])) == [1, 2, 3]
        with pytest.raises(XdrEncodeError):
            fa.to_bytes([1, 2])

    def test_var_array_bound(self):
        va = VarArray(UINT, max_size=2)
        assert va.from_bytes(va.to_bytes([7])) == [7]
        with pytest.raises(XdrEncodeError):
            va.to_bytes([1, 2, 3])

    def test_var_array_decode_bound(self):
        unbounded = VarArray(UINT)
        data = unbounded.to_bytes([1, 2, 3])
        with pytest.raises(XdrDecodeError):
            VarArray(UINT, max_size=2).from_bytes(data)

    def test_optional_present_and_absent(self):
        opt = OptionalType(HYPER)
        assert opt.from_bytes(opt.to_bytes(None)) is None
        assert opt.from_bytes(opt.to_bytes(123456789012345)) == 123456789012345

    def test_nested_array_of_optionals(self):
        t = VarArray(OptionalType(INT))
        values = [1, None, 3]
        assert t.from_bytes(t.to_bytes(values)) == values


class TestEnum:
    ENUM = EnumType("color", {"RED": 0, "GREEN": 1, "BLUE": 2})

    def test_roundtrip_by_value(self):
        assert self.ENUM.from_bytes(self.ENUM.to_bytes(1)) == 1

    def test_encode_by_name(self):
        assert self.ENUM.from_bytes(self.ENUM.to_bytes("BLUE")) == 2

    def test_unknown_member_encode(self):
        with pytest.raises(XdrEncodeError):
            self.ENUM.to_bytes(9)
        with pytest.raises(XdrEncodeError):
            self.ENUM.to_bytes("MAUVE")

    def test_unknown_member_decode(self):
        with pytest.raises(XdrDecodeError):
            self.ENUM.from_bytes(INT.to_bytes(9))

    def test_name_of(self):
        assert self.ENUM.name_of(2) == "BLUE"
        with pytest.raises(KeyError):
            self.ENUM.name_of(9)


class TestStruct:
    POINT = StructType(
        "point", [StructField("x", INT), StructField("y", INT), StructField("label", StringType())]
    )

    def test_roundtrip(self):
        value = {"x": 1, "y": -2, "label": "origin-ish"}
        assert self.POINT.from_bytes(self.POINT.to_bytes(value)) == value

    def test_missing_field(self):
        with pytest.raises(XdrEncodeError):
            self.POINT.to_bytes({"x": 1, "y": 2})

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            StructType("bad", [StructField("a", INT), StructField("a", INT)])

    def test_nested_struct(self):
        outer = StructType(
            "outer",
            [StructField("p", self.POINT), StructField("flag", BOOL)],
        )
        value = {"p": {"x": 0, "y": 0, "label": ""}, "flag": True}
        assert outer.from_bytes(outer.to_bytes(value)) == value


class TestUnion:
    U = UnionType(
        "maybe_double",
        INT,
        [UnionArm(0, VOID), UnionArm(1, DOUBLE)],
    )

    def test_void_arm(self):
        assert self.U.from_bytes(self.U.to_bytes((0, None))) == (0, None)

    def test_value_arm(self):
        assert self.U.from_bytes(self.U.to_bytes((1, 2.5))) == (1, 2.5)

    def test_unknown_discriminant_encode(self):
        with pytest.raises(XdrEncodeError):
            self.U.to_bytes((7, None))

    def test_unknown_discriminant_decode(self):
        with pytest.raises(XdrDecodeError):
            self.U.from_bytes(INT.to_bytes(7))

    def test_default_arm(self):
        u = UnionType("d", INT, [UnionArm(0, VOID)], default=INT)
        assert u.from_bytes(u.to_bytes((5, 99))) == (5, 99)

    def test_duplicate_case_rejected(self):
        with pytest.raises(ValueError):
            UnionType("dup", INT, [UnionArm(0, VOID), UnionArm(0, INT)])

    def test_non_tuple_value(self):
        with pytest.raises(XdrEncodeError):
            self.U.to_bytes(5)  # type: ignore[arg-type]


class TestTransparent:
    def test_adapter_roundtrip(self):
        inner = StructType("pair", [StructField("a", INT), StructField("b", INT)])
        t = TransparentType(
            inner,
            to_wire=lambda v: {"a": v[0], "b": v[1]},
            from_wire=lambda d: (d["a"], d["b"]),
        )
        assert t.from_bytes(t.to_bytes((3, 4))) == (3, 4)
